# Convenience targets for the OASSIS reproduction.

PYTHON ?= python3

.PHONY: install test lint deep-lint doclint typecheck bench bench-suite serve-bench serve-bench-full bench-faults bench-gateway bench-gateway-full gateway-smoke chaos shard-chaos chaos-all bench-chaos bench-chaos-full examples figures stats clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

# project-invariant linter (rule catalogue: docs/ANALYSIS.md); exits
# non-zero on any error-severity finding, so CI can gate on it
lint:
	PYTHONPATH=src $(PYTHON) -m repro.analysis src/

# the whole-program pass on top of the per-file linter: call-graph
# effect inference, static lock-order, wire taint — every finding
# carries a witness call chain (docs/ANALYSIS.md).  The cache file is
# hash-keyed over the analyzed tree, so unchanged reruns are instant
deep-lint:
	PYTHONPATH=src $(PYTHON) -m repro.analysis src/ --deep --cache .deep-analysis-cache.json

# doc cross-link checker: fails on dangling `docs/*.md` references
# anywhere in the repository's markdown (part of the CI lint job)
doclint:
	PYTHONPATH=src $(PYTHON) -m repro.analysis.doclint .

# mypy is configured in pyproject.toml (strict on repro.analysis,
# repro.service, repro.faults, repro.gateway, repro.api and
# repro.observability, lenient elsewhere); requires mypy on PATH
typecheck:
	$(PYTHON) -m mypy src/repro/analysis src/repro/service src/repro/faults src/repro/gateway src/repro/api src/repro/observability

# quick perf report: micro-benches + backend A/B equivalence (fails on any
# mining divergence), then schema/threshold validation of the JSON output
bench:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_report.py --quick --output BENCH_quick.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_report.py --validate BENCH_quick.json

bench-suite:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

# quick (<60s) serving benchmark: thread mode at 1/4/8 workers, the
# process-shard matrix at 1/2/4 shards, one kill-one-shard chaos run,
# serial MSP-identity everywhere; then schema validation of the output
serve-bench:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_service.py --quick --output BENCH_service_quick.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_service.py --validate BENCH_service_quick.json

# the full campaign (100k-member crowd in the shard matrix) behind the
# committed BENCH_service.json; the >=2.5x at-4-shards gate is enforced
# when the runner has >= 4 effective cores
serve-bench-full:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_service.py --output BENCH_service.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_service.py --validate BENCH_service.json

# fault-injection overhead ladder (disabled plan must cost <= 5%) and the
# kill-vs-uninterrupted MSP recovery identity, then schema validation
bench-faults:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_faults.py --output BENCH_faults.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_faults.py --validate BENCH_faults.json

# loopback-HTTP gateway load test (docs/GATEWAY.md): simulated-member
# campaigns over real sockets, gated on serial MSP identity plus the
# throughput floor and per-endpoint latency budgets
bench-gateway:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_gateway.py --quick --output BENCH_gateway_quick.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_gateway.py --validate BENCH_gateway_quick.json

# the committed BENCH_gateway.json: demo + travel, three seeds each
bench-gateway-full:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_gateway.py --output BENCH_gateway.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_gateway.py --validate BENCH_gateway.json

# CI smoke: start the gateway, replay a 1-seed campaign through it over
# loopback HTTP, assert MSP identity and a clean shutdown
gateway-smoke:
	PYTHONPATH=src $(PYTHON) -m repro gateway --domain demo --sessions 2 --crowd-size 4 --seed 0

# seeded chaos campaigns (docs/RELIABILITY.md): every durability
# invariant checked across three fixed seeds; a failing seed reproduces
chaos:
	PYTHONPATH=src $(PYTHON) -m repro chaos --seeds 0,1,2

# kill-one-shard -> WAL-restore -> identical-MSP campaign against the
# process-sharded fleet (docs/SHARDING.md), three fixed seeds
shard-chaos:
	PYTHONPATH=src $(PYTHON) -m repro chaos --shards 3 --seeds 0,1,2

# the whole-stack kill-anything campaign (docs/RELIABILITY.md): gateway
# restart from its journal, supervised shard auto-restart, coordinator
# rebuild from shard WALs, client disconnect/duplicate faults — all
# gated on serial MSP identity and exactly-once answers
chaos-all:
	PYTHONPATH=src $(PYTHON) -m repro chaos --total --seeds 0,1,2

# CI-size whole-stack chaos report with per-component MTTR
bench-chaos:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_chaos.py --quick --output BENCH_chaos_quick.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_chaos.py --validate BENCH_chaos_quick.json

# the committed BENCH_chaos.json: demo + travel, three seeds each
bench-chaos-full:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_chaos.py --output BENCH_chaos.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_chaos.py --validate BENCH_chaos.json

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/culinary_menu.py
	$(PYTHON) examples/self_treatment_survey.py
	$(PYTHON) examples/interactive_demo.py --auto --max-questions 20

figures:
	$(PYTHON) -m repro figures fig5
	$(PYTHON) -m repro figures fig4f
	$(PYTHON) -m repro figures multiplicities

stats:
	PYTHONPATH=src $(PYTHON) examples/quickstart.py --stats --stats-json stats_report.json
	$(PYTHON) -c "import json; r = json.load(open('stats_report.json')); \
	assert r['version'] == 1, r; \
	assert set(r) >= {'counters', 'derived', 'spans'}, sorted(r); \
	print('stats_report.json OK:', r['derived']['total_questions'], 'questions')"

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null || true
	rm -rf .pytest_cache .benchmarks src/repro.egg-info
