"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``parse`` — validate and pretty-print an OASSIS-QL query file (optionally
  against an ontology file);
* ``run`` — evaluate a query: either one of the built-in demo domains with
  a simulated crowd, or a custom ontology + query + personal-history file
  (single-user mining with Algorithm 1);
* ``domains`` — list the built-in demo domains;
* ``serve-sim`` — run the concurrent crowd-serving simulation: many query
  sessions, a shared crowd with injected timeouts and departures, N worker
  threads (see :mod:`repro.service`);
* ``chaos`` — run seeded fault-injection campaigns against the serving
  layer and check the durability invariants (see :mod:`repro.faults`);
* ``gateway`` — start the network-facing crowd gateway on loopback HTTP
  and replay a simulated-member campaign through it, checking the MSP
  sets against serial execution (see :mod:`repro.gateway` and
  ``docs/GATEWAY.md``);
* ``figures`` — regenerate one of the paper's figures and print its table;
* ``lint`` — run the project-invariant linter (:mod:`repro.analysis`).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .crowd.member import CrowdMember
from .crowd.personal_db import PersonalDatabase
from .datasets import culinary, health, travel
from .engine.config import EngineConfig
from .engine.engine import OassisEngine
from .oassisql.parser import parse_query
from .oassisql.pretty import format_query
from .oassisql.validator import validate
from .ontology import turtle

_DOMAINS = {
    "travel": travel,
    "culinary": culinary,
    "self-treatment": health,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_parse = sub.add_parser("parse", help="validate and pretty-print a query")
    p_parse.add_argument("query", help="path to an OASSIS-QL file, or '-' for stdin")
    p_parse.add_argument("--ontology", help="Turtle-ish ontology to validate against")

    p_run = sub.add_parser("run", help="evaluate a query")
    p_run.add_argument("--domain", choices=sorted(_DOMAINS), help="built-in domain")
    p_run.add_argument("--threshold", type=float, default=0.2)
    p_run.add_argument("--crowd-size", type=int, default=20)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--ontology", help="custom ontology file (with --query)")
    p_run.add_argument("--query", help="custom OASSIS-QL file")
    p_run.add_argument(
        "--history",
        help="personal history file: one transaction per line, facts dotted "
        "(single-user mining)",
    )
    p_run.add_argument("--json", action="store_true",
                       help="emit the result as JSON instead of text")
    p_run.add_argument("--stats", action="store_true",
                       help="trace the run and print the observability "
                       "summary table (questions, cache hit rate, inference "
                       "pruning, per-phase wall time)")
    p_run.add_argument("--trace", action="store_true",
                       help="trace the run and print the span tree "
                       "(per-phase wall time only)")
    p_run.add_argument("--stats-json", metavar="PATH",
                       help="trace the run and write the machine-readable "
                       "observability report to PATH ('-' for stdout)")

    sub.add_parser("domains", help="list built-in demo domains")

    p_serve = sub.add_parser(
        "serve-sim",
        help="simulate the concurrent crowd-serving layer (repro.service)",
    )
    p_serve.add_argument("--config", metavar="PATH",
                         help="JSON file of argument defaults, validated "
                         "against the gateway SimulationSpec schema "
                         "(explicit flags still win)")
    p_serve.add_argument("--domain", default="demo",
                         help="simulation domain: demo, travel, culinary, health")
    p_serve.add_argument("--sessions", type=int, default=8)
    p_serve.add_argument("--workers", type=int, default=4)
    p_serve.add_argument("--shards", type=int, default=0,
                         help="serve through N worker processes instead of "
                              "threads (fault knobs do not apply)")
    p_serve.add_argument("--crowd-size", type=int, default=6)
    p_serve.add_argument("--sample-size", type=int, default=3)
    p_serve.add_argument("--drop-every", type=int, default=5,
                         help="members ignore every n-th question (0 = never); "
                         "ignored questions time out and are retried")
    p_serve.add_argument("--departures", type=int, default=1,
                         help="how many members depart mid-run")
    p_serve.add_argument("--question-timeout", type=float, default=0.2,
                         help="seconds before a dispatched question is reaped")
    p_serve.add_argument("--max-runtime", type=float, default=120.0)
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--no-verify", action="store_true",
                         help="skip the serial MSP-identity check")
    p_serve.add_argument("--json", action="store_true",
                         help="emit the simulation report as JSON")
    p_serve.add_argument("--stats", action="store_true",
                         help="trace the run and print the observability "
                         "summary (including the service section)")

    p_chaos = sub.add_parser(
        "chaos",
        help="run seeded fault-injection campaigns (repro.faults)",
    )
    p_chaos.add_argument("--config", metavar="PATH",
                         help="JSON file of argument defaults, validated "
                         "against the gateway SimulationSpec schema "
                         "(explicit flags still win)")
    p_chaos.add_argument("--seeds", default="0,1,2",
                         help="comma-separated campaign seeds (default: 0,1,2)")
    p_chaos.add_argument("--domain", default="demo",
                         help="simulation domain: demo, travel, culinary, health")
    p_chaos.add_argument("--sessions", type=int, default=4)
    p_chaos.add_argument("--workers", type=int, default=3)
    p_chaos.add_argument("--crowd-size", type=int, default=6)
    p_chaos.add_argument("--sample-size", type=int, default=3)
    p_chaos.add_argument("--shards", type=int, default=0,
                         help="run the kill-one-shard campaign against a "
                              "process-sharded fleet of N workers instead "
                              "of the threaded runner")
    p_chaos.add_argument("--after-nodes", type=int, default=5,
                         help="with --shards: classify this many nodes "
                              "before the victim shard is killed")
    p_chaos.add_argument("--crashes", type=int, default=2,
                         help="worker-thread crashes to inject per run")
    p_chaos.add_argument("--state-dir", metavar="DIR",
                         help="back each session with a WAL journal and "
                         "checkpoints under DIR (per-seed subdirectories)")
    p_chaos.add_argument("--max-runtime", type=float, default=30.0)
    p_chaos.add_argument("--total", action="store_true",
                         help="run the whole-stack kill-anything campaign "
                              "(gateway, shard, coordinator, client) with "
                              "per-component MTTR instead of the "
                              "single-layer campaigns")
    p_chaos.add_argument("--json", action="store_true",
                         help="emit the campaign report as JSON")

    p_gateway = sub.add_parser(
        "gateway",
        help="serve the crowd gateway over loopback HTTP and replay a "
             "simulated-member campaign through it (repro.gateway)",
    )
    p_gateway.add_argument("--domain", default="demo",
                           help="dataset to activate: demo, travel, "
                                "culinary, health")
    p_gateway.add_argument("--host", default="127.0.0.1")
    p_gateway.add_argument("--port", type=int, default=0,
                           help="TCP port (0 = pick a free one)")
    p_gateway.add_argument("--sessions", type=int, default=2)
    p_gateway.add_argument("--crowd-size", type=int, default=4)
    p_gateway.add_argument("--sample-size", type=int, default=3)
    p_gateway.add_argument("--seed", type=int, default=0)
    p_gateway.add_argument("--wait", type=float, default=0.3,
                           help="member long-poll wait per /next request")
    p_gateway.add_argument("--max-runtime", type=float, default=60.0)
    p_gateway.add_argument("--admin-token", default=None,
                           help="require this bearer token on the admin "
                                "endpoints (default: open gateway)")
    p_gateway.add_argument("--no-verify", action="store_true",
                           help="skip the serial MSP-identity check")
    p_gateway.add_argument("--json", action="store_true",
                           help="emit the campaign report as JSON")
    p_gateway.add_argument("--stats", action="store_true",
                           help="trace the run and print the observability "
                                "summary (gateway counters + latency "
                                "histograms)")

    p_fig = sub.add_parser("figures", help="regenerate a paper figure")
    p_fig.add_argument(
        "which",
        choices=["fig4f", "fig5", "shape", "distribution", "multiplicities"],
    )
    p_fig.add_argument("--trials", type=int, default=3)

    p_lint = sub.add_parser(
        "lint",
        help="run the project-invariant linter (see docs/ANALYSIS.md)",
    )
    p_lint.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    p_lint.add_argument("--json", action="store_true",
                        help="emit the machine-readable report")
    p_lint.add_argument("--rules",
                        help="comma-separated rule ids to run (default: all)")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    p_lint.add_argument("--deep", action="store_true",
                        help="also run the whole-program rules "
                        "(call-graph effects, static lock-order, wire taint)")
    p_lint.add_argument("--cache", metavar="PATH",
                        help="hash-keyed cache file for --deep results")
    p_lint.add_argument("--explain", metavar="FUNC",
                        help="print inferred effects and witness chains "
                        "for FUNC (qualname or suffix) and exit")
    p_lint.add_argument("--baseline", metavar="PATH",
                        help="suppress findings recorded in this baseline "
                        "JSON; only new findings affect the exit code")
    p_lint.add_argument("--write-baseline", metavar="PATH",
                        help="record current findings as the accepted "
                        "baseline and exit")

    args = parser.parse_args(argv)
    if getattr(args, "config", None):
        # two-pass parse: the config file's fields become the command's
        # argument defaults, then the argv is re-parsed so explicit
        # flags still win over the file
        subparser = p_serve if args.command == "serve-sim" else p_chaos
        status = _apply_config(subparser, args.command, args.config)
        if status is not None:
            return status
        args = parser.parse_args(argv)
    if args.command == "parse":
        return _cmd_parse(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "domains":
        return _cmd_domains()
    if args.command == "serve-sim":
        return _cmd_serve_sim(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "gateway":
        return _cmd_gateway(args)
    if args.command == "figures":
        return _cmd_figures(args)
    if args.command == "lint":
        return _cmd_lint(args)
    parser.error("unknown command")
    return 2


def _read(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def _cmd_parse(args) -> int:
    query = parse_query(_read(args.query))
    problems = []
    if args.ontology:
        ontology = turtle.load(args.ontology)
        problems = validate(query, ontology)
    print(format_query(query))
    if problems:
        print()
        for problem in problems:
            print(f"problem: {problem}", file=sys.stderr)
        return 1
    return 0


def _cmd_domains() -> int:
    for name, module in sorted(_DOMAINS.items()):
        dataset = module.build_dataset()
        print(
            f"{name:16} {len(dataset.ontology)} ontology facts, "
            f"{len(dataset.patterns)} planted patterns"
        )
    return 0


def _cmd_run(args) -> int:
    if args.domain:
        runner = _run_domain
    elif args.ontology and args.query:
        runner = _run_custom
    else:
        print("run needs either --domain or both --ontology and --query",
              file=sys.stderr)
        return 2
    if not (args.stats or args.trace or args.stats_json):
        return runner(args)

    from .observability import render_report, render_spans, tracing

    with tracing() as tracer:
        status = runner(args)
    report = tracer.report()
    if args.stats:
        print()
        print(render_report(report))
    elif args.trace:
        print()
        print(render_spans(report))
    if args.stats_json:
        import json

        payload = json.dumps(report, indent=2, sort_keys=True)
        if args.stats_json == "-":
            print(payload)
        else:
            from .observability import atomic_write_json

            try:
                atomic_write_json(args.stats_json, report)
            except OSError as error:
                # don't lose the run's report over a bad path
                print(f"cannot write {args.stats_json}: {error}; "
                      "report follows on stdout", file=sys.stderr)
                print(payload)
                return 1
    return status


def _run_domain(args) -> int:
    module = _DOMAINS[args.domain]
    dataset = module.build_dataset()
    engine = OassisEngine(
        dataset.ontology, config=EngineConfig(max_values_per_var=2, max_more_facts=1)
    )
    query = engine.parse(dataset.query(args.threshold))
    crowd = dataset.build_crowd(size=args.crowd_size, seed=args.seed)
    result = engine.execute(
        query, crowd, sample_size=5, more_pool=dataset.more_pool
    )
    print(result.to_json() if args.json else result.render())
    return 0


def _run_custom(args) -> int:
    ontology = turtle.load(args.ontology)
    engine = OassisEngine(
        ontology, config=EngineConfig(max_values_per_var=2, max_more_facts=0)
    )
    query = engine.parse(_read(args.query))
    if not args.history:
        print("custom runs need --history (a personal transaction file)",
              file=sys.stderr)
        return 2
    lines = [l.strip() for l in _read(args.history).splitlines()
             if l.strip() and not l.startswith("#")]
    database = PersonalDatabase.parse(lines)
    member = CrowdMember("you", database, ontology.vocabulary)
    result = engine.execute_single_user(query, member)
    print(result.to_json() if args.json else result.render())
    return 0


#: which SimulationSpec fields each --config-aware command consumes;
#: the rest are ignored, so one file can drive both commands
_CONFIG_DESTS = {
    "serve-sim": frozenset({
        "domain", "sessions", "workers", "shards", "crowd_size",
        "sample_size", "drop_every", "departures", "question_timeout",
        "max_runtime", "seed", "verify",
    }),
    "chaos": frozenset({
        "domain", "sessions", "workers", "shards", "crowd_size",
        "sample_size", "max_runtime", "seeds", "crashes", "after_nodes",
        "state_dir",
    }),
}


def _apply_config(subparser, command: str, path: str) -> Optional[int]:
    """Load a ``--config`` JSON file into ``subparser``'s defaults.

    The file is validated against the gateway wire schema
    (:class:`repro.gateway.schema.SimulationSpec`), so a config that
    drives the CLI is also a valid gateway payload.  Returns an exit
    code on failure, None on success.
    """
    import json

    from .gateway.schema import SchemaError, SimulationSpec

    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as error:
        print(f"cannot read --config {path}: {error}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as error:
        print(f"--config {path} is not valid JSON: {error}", file=sys.stderr)
        return 2
    if isinstance(payload, dict):
        payload.setdefault("v", 1)
    try:
        spec = SimulationSpec.from_wire(payload)
    except SchemaError as error:
        print(f"--config {path} is invalid: {error}", file=sys.stderr)
        return 2
    overrides = {
        name: value
        for name, value in spec.overrides().items()
        if name in _CONFIG_DESTS[command]
    }
    # two fields need translating to their argparse destinations:
    # the boolean is stored inverted, and chaos seeds are a comma string
    if "verify" in overrides:
        overrides["no_verify"] = not overrides.pop("verify")
    if "seeds" in overrides:
        overrides["seeds"] = ",".join(str(s) for s in overrides["seeds"])
    subparser.set_defaults(**overrides)
    return None


def _cmd_serve_sim(args) -> int:
    from .observability import render_report, tracing
    from .service import run_simulation

    def simulate():
        if args.shards > 0:
            # process-sharded mode: the thread-pool fault knobs
            # (--drop-every, --departures, --question-timeout) do not
            # apply and are not forwarded
            return run_simulation(
                domain=args.domain,
                sessions=args.sessions,
                shards=args.shards,
                crowd_size=args.crowd_size,
                sample_size=args.sample_size,
                drop_every=0,
                departures=0,
                max_runtime=args.max_runtime,
                verify=not args.no_verify,
                seed=args.seed,
            )
        return run_simulation(
            domain=args.domain,
            sessions=args.sessions,
            workers=args.workers,
            crowd_size=args.crowd_size,
            sample_size=args.sample_size,
            drop_every=args.drop_every,
            departures=args.departures,
            question_timeout=args.question_timeout,
            max_runtime=args.max_runtime,
            verify=not args.no_verify,
            seed=args.seed,
        )

    if args.stats:
        with tracing() as tracer:
            report = simulate()
    else:
        tracer = None
        report = simulate()

    if args.json:
        import json

        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        if args.shards > 0:
            print(
                f"{args.sessions} session(s), {args.shards} shard process(es), "
                f"crowd of {report['crowd_size']}"
            )
        else:
            print(
                f"{args.sessions} session(s), {args.workers} worker(s), "
                f"crowd of {report['crowd_size']}"
            )
        for session_id, info in sorted(report["sessions"].items()):
            print(
                f"  {session_id:16} {info['state']:10} "
                f"{info['questions']:5} question(s)  "
                f"{info['valid_msps']} answer(s)"
            )
        print(
            f"{report['questions_answered']} answers in "
            f"{report['elapsed_seconds']:.2f}s "
            f"({report['questions_per_second']:.0f} questions/s)"
        )
        if "verified" in report:
            verdict = "identical" if report["verified"] else "DIVERGED"
            print(f"serial MSP check: {verdict}")
    if tracer is not None:
        print()
        print(render_report(tracer.report()))
    if report["timed_out"]:
        print("simulation hit --max-runtime before settling", file=sys.stderr)
        return 1
    if not report.get("verified", True):
        print("concurrent MSPs diverged from serial execution", file=sys.stderr)
        return 1
    return 0


def _cmd_chaos(args) -> int:
    from .faults import run_chaos_campaign

    try:
        seeds = [int(part) for part in args.seeds.split(",") if part.strip()]
    except ValueError:
        print(f"--seeds must be comma-separated integers, got {args.seeds!r}",
              file=sys.stderr)
        return 2
    if not seeds:
        print("--seeds named no seeds", file=sys.stderr)
        return 2
    if args.total:
        return _cmd_total_chaos(args, seeds)
    if args.shards > 0:
        return _cmd_shard_chaos(args, seeds)
    campaign = run_chaos_campaign(
        seeds,
        domain=args.domain,
        durable_dir=args.state_dir,
        sessions=args.sessions,
        workers=args.workers,
        crowd_size=args.crowd_size,
        sample_size=args.sample_size,
        crashes=args.crashes,
        max_runtime=args.max_runtime,
    )
    if args.json:
        import json

        print(json.dumps(campaign, indent=2, sort_keys=True))
    else:
        for report in campaign["reports"]:
            injected = sum(report["faults_injected"].values())
            verdict = "ok" if report["ok"] else "VIOLATIONS"
            print(
                f"seed {report['seed']}: {verdict}, "
                f"{report['completed_sessions']}/{report['sessions']} "
                f"sessions, {report['answers_recorded']} answers, "
                f"{injected} faults injected, "
                f"{report['elapsed_seconds']:.2f}s"
            )
            for violation in report["violations"]:
                print(f"  violation: {violation}", file=sys.stderr)
        verdict = "ok" if campaign["ok"] else "FAILED"
        print(
            f"campaign over seeds {campaign['seeds']} "
            f"({campaign['domain']}): {verdict}"
        )
    return 0 if campaign["ok"] else 1


def _cmd_total_chaos(args, seeds) -> int:
    from .faults import run_total_chaos_campaign

    campaign = run_total_chaos_campaign(
        seeds,
        domains=(args.domain,),
        max_runtime=args.max_runtime,
    )
    if args.json:
        import json

        print(json.dumps(campaign, indent=2, sort_keys=True))
    else:
        for report in campaign["runs"]:
            verdict = "ok" if report["ok"] else "VIOLATIONS"
            mttrs = " ".join(
                f"{name}={report['mttr_seconds'][name]}s"
                for name in ("gateway", "shard", "coordinator")
            )
            print(f"seed {report['seed']}: {verdict}, mttr {mttrs}")
            for violation in report["violations"]:
                print(f"  violation: {violation}", file=sys.stderr)
        verdict = "ok" if campaign["ok"] else "FAILED"
        print(
            f"total chaos campaign over seeds {campaign['seeds']} "
            f"({args.domain}): {verdict}; supervisor restart p95 "
            f"{campaign['supervisor_restart_p95_seconds']}s"
        )
    return 0 if campaign["ok"] else 1


def _cmd_shard_chaos(args, seeds) -> int:
    from .service.shard import run_shard_chaos_campaign

    campaign = run_shard_chaos_campaign(
        seeds,
        domain=args.domain,
        durable_dir=args.state_dir,
        shards=args.shards,
        sessions=args.sessions,
        crowd_size=args.crowd_size,
        sample_size=args.sample_size,
        after_nodes=args.after_nodes,
        max_runtime=args.max_runtime,
    )
    if args.json:
        import json

        print(json.dumps(campaign, indent=2, sort_keys=True))
    else:
        for report in campaign["reports"]:
            verdict = "ok" if report["ok"] else "VIOLATIONS"
            print(
                f"seed {report['seed']}: {verdict}, killed shard "
                f"{report['killed_shard']}/{report['shards']}, "
                f"{report['reasks']} reask(s), "
                f"{report['wal_replayed']} WAL answer(s) replayed, "
                f"{report['completed_sessions']}/{report['sessions']} "
                f"sessions, {report['elapsed_seconds']:.2f}s"
            )
            for violation in report["violations"]:
                print(f"  violation: {violation}", file=sys.stderr)
        verdict = "ok" if campaign["ok"] else "FAILED"
        print(
            f"shard chaos campaign over seeds {campaign['seeds']} "
            f"({campaign['domain']}): {verdict}"
        )
    return 0 if campaign["ok"] else 1


def _cmd_gateway(args) -> int:
    from .gateway import GatewayApp, replay_campaign, serve_in_thread
    from .observability import render_report, tracing

    def campaign():
        app = GatewayApp(admin_token=args.admin_token)
        with serve_in_thread(app, host=args.host, port=args.port) as handle:
            print(f"gateway listening on {handle.base_url}", file=sys.stderr)
            return replay_campaign(
                host=handle.host,
                port=handle.port,
                admin_token=args.admin_token,
                domain=args.domain,
                sessions=args.sessions,
                crowd_size=args.crowd_size,
                sample_size=args.sample_size,
                seed=args.seed,
                wait=args.wait,
                max_runtime=args.max_runtime,
                verify=not args.no_verify,
            )

    if args.stats:
        with tracing() as tracer:
            report = campaign()
    else:
        tracer = None
        report = campaign()

    if args.json:
        import json

        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(
            f"{args.sessions} session(s) over loopback HTTP, "
            f"crowd of {report['crowd_size']}"
        )
        for session_id, info in sorted(report["sessions"].items()):
            print(
                f"  {session_id:16} {info['state']:10} "
                f"{info['questions']:5} question(s)  "
                f"{len(info['msps'])} answer(s)"
            )
        print(
            f"{report['questions_answered']} answers in "
            f"{report['elapsed_seconds']:.2f}s "
            f"({report['questions_per_second']:.0f} questions/s)"
        )
        if "verified" in report:
            verdict = "identical" if report["verified"] else "DIVERGED"
            print(f"serial MSP check: {verdict}")
    if tracer is not None:
        print()
        print(render_report(tracer.report()))
    for error in report["errors"]:
        print(f"member error: {error}", file=sys.stderr)
    if report["timed_out"]:
        print("campaign hit --max-runtime before settling", file=sys.stderr)
        return 1
    if report["errors"] or not report.get("verified", True):
        return 1
    return 0


def _cmd_lint(args) -> int:
    from .analysis.lint import main as lint_main

    forwarded: List[str] = list(args.paths)
    if args.json:
        forwarded.append("--json")
    if args.rules:
        forwarded.extend(["--rules", args.rules])
    if args.list_rules:
        forwarded.append("--list-rules")
    if args.deep:
        forwarded.append("--deep")
    if args.cache:
        forwarded.extend(["--cache", args.cache])
    if args.explain:
        forwarded.extend(["--explain", args.explain])
    if args.baseline:
        forwarded.extend(["--baseline", args.baseline])
    if args.write_baseline:
        forwarded.extend(["--write-baseline", args.write_baseline])
    return lint_main(forwarded)


def _cmd_figures(args) -> int:
    if args.which == "fig4f":
        from .experiments import render_figure4f, run_figure4f

        print(render_figure4f(run_figure4f(trials=args.trials)))
    elif args.which == "fig5":
        from .experiments import render_figure5, run_figure5

        print(render_figure5(run_figure5(trials=args.trials)))
    elif args.which == "shape":
        from .experiments.shape import render_shape_sweep, run_shape_sweep

        print(render_shape_sweep(run_shape_sweep(trials=args.trials)))
    elif args.which == "distribution":
        from .experiments.distribution import (
            render_distribution_sweep,
            run_distribution_sweep,
        )

        print(render_distribution_sweep(run_distribution_sweep(trials=args.trials)))
    elif args.which == "multiplicities":
        from .experiments.multiplicities import (
            render_multiplicities,
            run_multiplicities_experiment,
        )

        print(render_multiplicities(run_multiplicities_experiment()))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
