"""OASSIS: Query Driven Crowd Mining — a full reproduction (SIGMOD 2014).

Public API highlights::

    from repro import OassisEngine, Ontology, parse_query

    ontology = repro.ontology.load("travel.ttl")
    engine = OassisEngine(ontology)
    result = engine.execute(QUERY_TEXT, members)
    print(result.render())

Subpackages:

* :mod:`repro.vocabulary` — terms and the semantic partial orders;
* :mod:`repro.ontology` — facts, fact-sets, the triple store, reasoning;
* :mod:`repro.sparql` — the SPARQL-subset engine used by WHERE clauses;
* :mod:`repro.oassisql` — the OASSIS-QL parser and AST;
* :mod:`repro.assignments` — the assignment lattice and lazy generator;
* :mod:`repro.crowd` — personal DBs, members, aggregation, caching;
* :mod:`repro.mining` — vertical / multi-user / baseline algorithms;
* :mod:`repro.engine` — the end-to-end evaluation pipeline;
* :mod:`repro.service` — concurrent crowd-serving sessions (batching,
  deadlines, retries, member departures);
* :mod:`repro.observability` — tracing, counters, timers (``--stats``);
* :mod:`repro.synth` — synthetic DAG / crowd generators (Section 6.4);
* :mod:`repro.datasets` — travel, culinary, self-treatment demo domains;
* :mod:`repro.experiments` — harnesses regenerating every paper figure.
"""

from .assignments import Assignment, ExplicitDAG, QueryAssignmentSpace
from .crowd import (
    CrowdCache,
    CrowdMember,
    CrowdSimulator,
    FixedSampleAggregator,
    PersonalDatabase,
    PlantedPattern,
    Transaction,
)
from .engine import (
    AnswerOutcome,
    EngineConfig,
    OassisEngine,
    QueryResult,
    QueueManager,
)
from .mining import (
    MultiUserMiner,
    horizontal_mine,
    naive_mine,
    vertical_mine,
)
from .oassisql import Query, parse_query
from .observability import Tracer, tracing
from .ontology import Fact, FactSet, Ontology
from .vocabulary import Element, Relation, Vocabulary, VocabularyBuilder

__version__ = "1.0.0"

__all__ = [
    "AnswerOutcome",
    "Assignment",
    "CrowdCache",
    "CrowdMember",
    "CrowdSimulator",
    "Element",
    "EngineConfig",
    "ExplicitDAG",
    "Fact",
    "FactSet",
    "FixedSampleAggregator",
    "MultiUserMiner",
    "OassisEngine",
    "Ontology",
    "PersonalDatabase",
    "PlantedPattern",
    "Query",
    "QueryAssignmentSpace",
    "QueryResult",
    "QueueManager",
    "Relation",
    "Tracer",
    "Transaction",
    "Vocabulary",
    "VocabularyBuilder",
    "__version__",
    "horizontal_mine",
    "naive_mine",
    "parse_query",
    "tracing",
    "vertical_mine",
]
