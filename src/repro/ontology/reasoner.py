"""Subsumption reasoning utilities over an ontology.

The mining algorithms repeatedly need taxonomy-aware queries that go beyond
raw triple lookup: "which elements are instances/subclasses (possibly
indirect) of X", "what is the set of most-specific common generalizations of
two terms", "enumerate the facts implied by a transaction".  These live here
so the SPARQL engine and the assignment generator stay small.
"""

from __future__ import annotations

from typing import FrozenSet, Set

from ..vocabulary.terms import Element, Term, as_element
from .facts import Fact, FactSet
from .graph import INSTANCE_OF, Ontology


class Reasoner:
    """Read-only semantic queries against an :class:`Ontology`."""

    def __init__(self, ontology: Ontology):
        self.ontology = ontology
        self.vocabulary = ontology.vocabulary
        # instances()/least_upper_bounds() are re-asked for the same terms
        # throughout lattice expansion; memoized with the ontology/order
        # version stamps as the invalidation key
        self._instances_cache: dict = {}
        self._instances_stamp = None
        self._lub_cache: dict = {}
        self._lub_stamp = None

    # ------------------------------------------------------------- taxonomy

    def subclasses(self, element, *, strict: bool = False) -> FrozenSet[Element]:
        """All (possibly indirect) specializations of ``element``.

        This is the evaluation of ``$w subClassOf* element`` when ``strict``
        is False, and ``subClassOf+`` when True.  It relies on the element
        order, which :meth:`Ontology.add` keeps in sync with the asserted
        ``subClassOf``/``instanceOf`` facts.
        """
        elem = as_element(element)
        descendants = self.vocabulary.descendants(elem)
        result = descendants if not strict else descendants - {elem}
        return frozenset(e for e in result if isinstance(e, Element))

    def superclasses(self, element, *, strict: bool = False) -> FrozenSet[Element]:
        """All (possibly indirect) generalizations of ``element``."""
        elem = as_element(element)
        ancestors = self.vocabulary.ancestors(elem)
        result = ancestors if not strict else ancestors - {elem}
        return frozenset(e for e in result if isinstance(e, Element))

    def instances(self, klass) -> FrozenSet[Element]:
        """Direct ``instanceOf`` assertions whose object is any subclass.

        ``instances(Restaurant)`` returns Maoz Veg. and Pine even when the
        ``instanceOf`` edge is asserted against a subclass of Restaurant.
        """
        k = as_element(klass)
        stamp = (self.ontology.version, self.vocabulary.element_order.version)
        if stamp != self._instances_stamp:
            self._instances_cache.clear()
            self._instances_stamp = stamp
        cached = self._instances_cache.get(k)
        if cached is not None:
            return cached
        rel = INSTANCE_OF
        if not self.vocabulary.has_relation(rel):
            return frozenset()
        instance_of = self.vocabulary.relation(rel)
        found: Set[Element] = set()
        for sub in self.subclasses(k):
            found.update(self.ontology.subjects(instance_of, sub))
        result = frozenset(found)
        self._instances_cache[k] = result
        return result

    def is_instance(self, candidate, klass) -> bool:
        return as_element(candidate) in self.instances(klass)

    # ----------------------------------------------------------- implication

    def implied_facts(self, transaction: FactSet) -> FrozenSet[Fact]:
        """All facts implied by ``transaction``: generalize each component.

        Example 2.6: a transaction containing ``Basketball doAt Central
        Park`` implies ``Sport doAt Central Park``.  The result can be large
        (product of ancestor sets) and is mainly used in tests and the
        itemset-mining reduction.
        """
        implied: Set[Fact] = set()
        for fact in transaction:
            subject_gen = self.vocabulary.ancestors(fact.subject)
            relation_gen = self.vocabulary.ancestors(fact.relation)
            object_gen = self.vocabulary.ancestors(fact.obj)
            for s in subject_gen:
                for r in relation_gen:
                    for o in object_gen:
                        implied.add(Fact(s, r, o))
        return frozenset(implied)

    def least_upper_bounds(self, a: Term, b: Term) -> FrozenSet[Term]:
        """Most-specific common generalizations of two terms (may be many).

        In a tree taxonomy this is the singleton least common ancestor; in a
        DAG there may be several incomparable ones.
        """
        stamp = (
            self.vocabulary.element_order.version,
            self.vocabulary.relation_order.version,
        )
        if stamp != self._lub_stamp:
            self._lub_cache.clear()
            self._lub_stamp = stamp
        key = (a, b)
        cached = self._lub_cache.get(key)
        if cached is not None:
            return cached
        common = self.vocabulary.ancestors(a) & self.vocabulary.ancestors(b)
        maximal = {
            t
            for t in common
            if not any(t != u and self.vocabulary.leq(t, u) for u in common)
        }
        result = frozenset(maximal)
        self._lub_cache[key] = result
        self._lub_cache[(b, a)] = result
        return result

    # ----------------------------------------------------------- consistency

    def check_taxonomy_acyclic(self) -> bool:
        """The element order is a DAG by construction; expose for sanity."""
        order = self.vocabulary.element_order
        seen_total = 0
        for root in order.roots():
            seen_total += len(order.descendants(root))
        # an acyclic order reaches every term from the roots at least once
        return seen_total >= len(order) or len(order) == 0
