"""A small Turtle-like serialization for ontologies.

The paper stores its ontology "in RDF format"; since the reproduction has no
rdflib, this module provides a human-editable text format that round-trips
:class:`~repro.ontology.graph.Ontology` instances.  The grammar is a Turtle
subset adapted to multi-word names:

* one statement per line, terminated by ``.`` (optional);
* ``<Subject Name> relation <Object Name> .`` — angle brackets delimit
  element names that may contain spaces; bare tokens work for single words;
* ``<Element> hasLabel "some label" .`` — label facts;
* ``# ...`` comments and blank lines are ignored;
* relation-order declarations: ``@relorder nearBy <= inside .`` records
  ``nearBy ≤R inside``;
* vocabulary declarations for terms with no asserted fact:
  ``@relation doAt .`` and ``@element <Boathouse> .`` (the paper's model
  allows transaction-only terms, Section 2).

``subClassOf``/``instanceOf`` statements update the element order exactly
as :meth:`Ontology.add` does.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..vocabulary.vocabulary import Vocabulary
from .facts import Fact
from .graph import HAS_LABEL, Ontology

_TOKEN_RE = re.compile(
    r"""
    <(?P<bracketed>[^<>]+)>      # <multi word name>
  | "(?P<string>[^"]*)"          # "string label"
  | (?P<bare>[^\s.]+)            # bare token (no spaces/periods)
    """,
    re.VERBOSE,
)


class TurtleSyntaxError(ValueError):
    """Raised on malformed input, with the offending line number."""

    def __init__(self, message: str, line_no: int):
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


def _tokenize(line: str, line_no: int) -> List[Tuple[str, str]]:
    """Split a statement line into (kind, text) tokens."""
    tokens: List[Tuple[str, str]] = []
    pos = 0
    stripped = line.rstrip()
    if stripped.endswith("."):
        stripped = stripped[:-1]
    while pos < len(stripped):
        if stripped[pos].isspace():
            pos += 1
            continue
        match = _TOKEN_RE.match(stripped, pos)
        if match is None:
            raise TurtleSyntaxError(f"cannot tokenize at column {pos}: {stripped!r}", line_no)
        if match.lastgroup == "bracketed":
            tokens.append(("name", match.group("bracketed").strip()))
        elif match.lastgroup == "string":
            tokens.append(("string", match.group("string")))
        else:
            tokens.append(("name", match.group("bare")))
        pos = match.end()
    return tokens


def loads(text: str, vocabulary: Optional[Vocabulary] = None) -> Ontology:
    """Parse Turtle-like ``text`` into a fresh :class:`Ontology`."""
    ontology = Ontology(vocabulary)
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("@relorder"):
            _parse_relorder(line, line_no, ontology)
            continue
        if line.startswith("@relation") or line.startswith("@element"):
            _parse_declaration(line, line_no, ontology)
            continue
        tokens = _tokenize(line, line_no)
        if len(tokens) != 3:
            raise TurtleSyntaxError(
                f"expected 3 terms per statement, got {len(tokens)}", line_no
            )
        (skind, subject), (rkind, relation), (okind, obj) = tokens
        if skind != "name" or rkind != "name":
            raise TurtleSyntaxError("subject and relation must be names", line_no)
        if relation == HAS_LABEL:
            if okind != "string":
                raise TurtleSyntaxError('hasLabel object must be a "string"', line_no)
            ontology.add_label(subject, obj)
        else:
            if okind != "name":
                raise TurtleSyntaxError(
                    f"string object only allowed with {HAS_LABEL}", line_no
                )
            ontology.add(Fact(subject, relation, obj))
    return ontology


def _parse_relorder(line: str, line_no: int, ontology: Ontology) -> None:
    body = line[len("@relorder"):].strip()
    if body.endswith("."):
        body = body[:-1].strip()
    parts = [p.strip() for p in body.split("<=")]
    if len(parts) != 2 or not all(parts):
        raise TurtleSyntaxError("@relorder expects 'general <= specific'", line_no)
    ontology.vocabulary.specialize_relation(parts[0], parts[1])


def _parse_declaration(line: str, line_no: int, ontology: Ontology) -> None:
    keyword, _, body = line.partition(" ")
    body = body.strip()
    if body.endswith("."):
        body = body[:-1].strip()
    if body.startswith("<") and body.endswith(">"):
        body = body[1:-1].strip()
    if not body:
        raise TurtleSyntaxError(f"{keyword} expects a term name", line_no)
    if keyword == "@relation":
        ontology.vocabulary.add_relation(body)
    else:
        ontology.vocabulary.add_element(body)


def load(path) -> Ontology:
    """Parse the file at ``path``."""
    with open(path, encoding="utf-8") as handle:
        return loads(handle.read())


def _render_name(name: str) -> str:
    return f"<{name}>" if (" " in name or "." in name) else name


def dumps(ontology: Ontology) -> str:
    """Serialize ``ontology`` (facts, labels, relation order) to text."""
    lines: List[str] = ["# OASSIS ontology"]
    for general, specific in sorted(
        ontology.vocabulary.relation_order.edges(), key=lambda e: (e[0].name, e[1].name)
    ):
        lines.append(f"@relorder {general.name} <= {specific.name} .")
    # declare vocabulary-only terms so they survive a round trip
    asserted_relations = {f.relation for f in ontology}
    for relation in sorted(ontology.vocabulary.relations):
        if relation not in asserted_relations and not any(
            True for _ in ontology.vocabulary.relation_order.children(relation)
        ) and not ontology.vocabulary.relation_order.parents(relation):
            lines.append(f"@relation {relation.name} .")
    asserted_elements = set()
    for fact in ontology:
        asserted_elements.add(fact.subject)
        asserted_elements.add(fact.obj)
    labelled = {
        element
        for element in ontology.vocabulary.elements
        if ontology.labels(element)
    }
    for element in sorted(ontology.vocabulary.elements):
        if element not in asserted_elements and element not in labelled:
            lines.append(f"@element {_render_name(element.name)} .")
    for fact in sorted(ontology):
        lines.append(
            f"{_render_name(fact.subject.name)} {fact.relation.name} "
            f"{_render_name(fact.obj.name)} ."
        )
    for element in sorted(ontology.vocabulary.elements):
        for label in sorted(ontology.labels(element)):
            lines.append(f'{_render_name(element.name)} {HAS_LABEL} "{label}" .')
    return "\n".join(lines) + "\n"


def dump(ontology: Ontology, path) -> None:
    """Serialize ``ontology`` to the file at ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(ontology))
