"""Facts and fact-sets with the semantic partial order (Defs. 2.2 and 2.5).

A fact is a triple ``<e1, r, e2>``; a fact-set is a set of facts.  The
partial order lifts the vocabulary orders componentwise:

* ``f ≤ f'`` iff every component of ``f`` is ≤ its counterpart in ``f'``;
* ``A ≤ B`` iff every fact of ``A`` has a ≥-specific witness in ``B``.

A transaction *implies* a fact-set ``A`` when ``A ≤ T``; that is exactly the
notion of support counting used throughout the paper (Example 2.7).
"""

from __future__ import annotations

from typing import AbstractSet, FrozenSet, Iterable, Iterator, Tuple, Union

from ..vocabulary.terms import (
    ANY_ELEMENT,
    ANY_RELATION_WILDCARD,
    Element,
    Relation,
    as_element,
    as_relation,
)
from ..vocabulary.vocabulary import Vocabulary


class Fact:
    """An RDF-style triple ``<subject, relation, obj>`` over the vocabulary."""

    __slots__ = ("subject", "relation", "obj", "_hash")

    def __init__(self, subject, relation, obj):
        self.subject: Element = as_element(subject)
        self.relation: Relation = as_relation(relation)
        self.obj: Element = as_element(obj)
        self._hash = hash((self.subject, self.relation, self.obj))

    def as_tuple(self) -> Tuple[Element, Relation, Element]:
        return (self.subject, self.relation, self.obj)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Fact) and self.as_tuple() == other.as_tuple()

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Fact") -> bool:
        # deterministic sorting only; semantic comparison is leq()
        if not isinstance(other, Fact):
            return NotImplemented
        return (self.subject.name, self.relation.name, self.obj.name) < (
            other.subject.name,
            other.relation.name,
            other.obj.name,
        )

    def __repr__(self) -> str:
        return f"Fact({self.subject.name!r}, {self.relation.name!r}, {self.obj.name!r})"

    def __str__(self) -> str:
        # the paper's RDF-ish rendering: "Biking doAt Central Park"
        return f"{self.subject} {self.relation} {self.obj}"

    def leq(self, other: "Fact", vocabulary: Vocabulary) -> bool:
        """Is ``self ≤ other`` under the vocabulary orders (Def. 2.5)?

        Wildcard components (:data:`~repro.vocabulary.terms.ANY_ELEMENT`,
        :data:`~repro.vocabulary.terms.ANY_RELATION_WILDCARD`, standing for
        the ``[]`` of OASSIS-QL) are more general than any counterpart.
        """
        subject_ok = self.subject == ANY_ELEMENT or vocabulary.leq(
            self.subject, other.subject
        )
        relation_ok = self.relation == ANY_RELATION_WILDCARD or vocabulary.leq(
            self.relation, other.relation
        )
        obj_ok = self.obj == ANY_ELEMENT or vocabulary.leq(self.obj, other.obj)
        return subject_ok and relation_ok and obj_ok


FactLike = Union[Fact, Tuple]


def as_fact(value: FactLike) -> Fact:
    """Coerce a ``Fact`` or a 3-tuple of term-likes to a :class:`Fact`."""
    if isinstance(value, Fact):
        return value
    if isinstance(value, tuple) and len(value) == 3:
        return Fact(*value)
    raise TypeError(f"cannot interpret {value!r} as a fact")


class FactSet:
    """An immutable set of facts with the lifted semantic order."""

    __slots__ = ("_facts", "_hash")

    def __init__(self, facts: Iterable[FactLike] = ()):
        self._facts: FrozenSet[Fact] = frozenset(as_fact(f) for f in facts)
        self._hash = hash(self._facts)

    @property
    def facts(self) -> FrozenSet[Fact]:
        return self._facts

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def __len__(self) -> int:
        return len(self._facts)

    def __contains__(self, fact: FactLike) -> bool:
        return as_fact(fact) in self._facts

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FactSet):
            return self._facts == other._facts
        if isinstance(other, (set, frozenset)):
            return self._facts == other
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __or__(self, other: "FactSet") -> "FactSet":
        return FactSet(self._facts | other._facts)

    def __repr__(self) -> str:
        inner = ". ".join(str(f) for f in sorted(self._facts))
        return f"FactSet({inner})"

    def leq(self, other: "FactSet", vocabulary: Vocabulary) -> bool:
        """``self ≤ other``: every fact here has a more-specific witness there."""
        return all(
            any(f.leq(g, vocabulary) for g in other._facts) for f in self._facts
        )

    def implies(self, fact_set: "FactSet", vocabulary: Vocabulary) -> bool:
        """Does this fact-set (viewed as a transaction) imply ``fact_set``?

        Implication is ``fact_set ≤ self`` (Def. 2.5's final paragraph).
        """
        return fact_set.leq(self, vocabulary)

    def implies_fact(self, fact: FactLike, vocabulary: Vocabulary) -> bool:
        """Does this fact-set imply the single ``fact``?"""
        target = as_fact(fact)
        return any(target.leq(g, vocabulary) for g in self._facts)


def fact_set(*facts: FactLike) -> FactSet:
    """Convenience constructor: ``fact_set(("Biking","doAt","Central Park"))``."""
    return FactSet(facts)


def parse_fact_set(text: str, relations: AbstractSet[str] = frozenset()) -> FactSet:
    """Parse the paper's dotted notation into a fact-set.

    ``"Biking doAt Central Park. Falafel eatAt Maoz Veg"`` — facts are
    separated by ``.``; within a fact one token is the relation and the
    tokens around it form (possibly multi-word) element names.  The relation
    token is located as follows: a token from ``relations`` if given;
    otherwise a lowerCamelCase token (``doAt``, ``eatAt``, ``subClassOf`` —
    the paper's convention); otherwise the single all-lowercase inner token.
    Ambiguity raises ``ValueError``.
    """
    def camel(token: str) -> bool:
        return token[:1].islower() and any(c.isupper() for c in token[1:])

    facts = []
    for chunk in text.split("."):
        chunk = chunk.strip()
        if not chunk:
            continue
        tokens = chunk.split()
        inner = range(1, len(tokens) - 1)
        candidates = [i for i in inner if tokens[i] in relations]
        if not candidates:
            candidates = [i for i in inner if camel(tokens[i])]
        if not candidates:
            candidates = [i for i in inner if tokens[i].islower()]
        if len(candidates) != 1:
            raise ValueError(
                f"cannot uniquely locate the relation token in {chunk!r}"
            )
        i = candidates[0]
        subject = " ".join(tokens[:i])
        relation = tokens[i]
        obj = " ".join(tokens[i + 1:])
        facts.append(Fact(subject, relation, obj))
    return FactSet(facts)
