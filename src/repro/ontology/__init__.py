"""Ontology layer: facts, fact-sets, the indexed triple store and reasoning."""

from .facts import Fact, FactSet, as_fact, fact_set, parse_fact_set
from .graph import (
    HAS_LABEL,
    INSTANCE_OF,
    SUBCLASS_OF,
    TAXONOMY_RELATIONS,
    Ontology,
)
from .reasoner import Reasoner
from .turtle import TurtleSyntaxError, dump, dumps, load, loads

__all__ = [
    "HAS_LABEL",
    "INSTANCE_OF",
    "SUBCLASS_OF",
    "TAXONOMY_RELATIONS",
    "Fact",
    "FactSet",
    "Ontology",
    "Reasoner",
    "TurtleSyntaxError",
    "as_fact",
    "dump",
    "dumps",
    "fact_set",
    "load",
    "loads",
    "parse_fact_set",
]
