"""The ontology: an indexed triple store of "universal truth" facts.

The ontology of Section 2 is just a fact-set with a distinguished role; in
practice the SPARQL-ish WHERE evaluation needs fast pattern lookup, so this
module provides a triple store with the classic three indexes (SPO, POS,
OSP), plus label facts and helpers that keep the vocabulary orders and the
taxonomy facts (``subClassOf`` / ``instanceOf``) consistent.

The store recognises the two taxonomy relations by name: inserting
``A subClassOf B`` or ``a instanceOf B`` also records ``B ≤E A`` in the
vocabulary's element order, exactly as in the paper's Example 2.3 where
those relations "coincide with the reverse of the partial order ≤E".
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Set

from ..vocabulary.terms import Element, Relation, as_element
from ..vocabulary.vocabulary import Vocabulary
from .facts import Fact, FactLike, FactSet, as_fact

#: Relations whose assertion also updates the element order.
SUBCLASS_OF = "subClassOf"
INSTANCE_OF = "instanceOf"
TAXONOMY_RELATIONS = frozenset({SUBCLASS_OF, INSTANCE_OF})

#: Relation used for string labels (``$x hasLabel "child-friendly"``).
HAS_LABEL = "hasLabel"


class Ontology:
    """A set of universal facts over a :class:`Vocabulary`, fully indexed."""

    def __init__(self, vocabulary: Optional[Vocabulary] = None):
        self.vocabulary = vocabulary if vocabulary is not None else Vocabulary()
        self._facts: Set[Fact] = set()
        # index maps: subject -> relation -> {objects} and the two rotations
        self._spo: Dict[Element, Dict[Relation, Set[Element]]] = defaultdict(
            lambda: defaultdict(set)
        )
        self._pos: Dict[Relation, Dict[Element, Set[Element]]] = defaultdict(
            lambda: defaultdict(set)
        )
        self._osp: Dict[Element, Dict[Element, Set[Relation]]] = defaultdict(
            lambda: defaultdict(set)
        )
        # element -> set of string labels, plus the reverse index the
        # engine's hasLabel patterns probe (label -> elements)
        self._labels: Dict[Element, Set[str]] = defaultdict(set)
        self._label_index: Dict[str, Set[Element]] = defaultdict(set)
        #: bumped on every fact/label insertion; caches key on it together
        #: with the vocabulary order versions (see docs/PERFORMANCE.md)
        self.version = 0

    # ------------------------------------------------------------- mutation

    def add(self, fact: FactLike) -> Fact:
        """Assert ``fact``; taxonomy facts also extend the element order."""
        f = as_fact(fact)
        if f in self._facts:
            return f
        self.vocabulary.add_element(f.subject.name)
        self.vocabulary.add_relation(f.relation.name)
        self.vocabulary.add_element(f.obj.name)
        self._facts.add(f)
        self.version += 1
        self._spo[f.subject][f.relation].add(f.obj)
        self._pos[f.relation][f.subject].add(f.obj)
        self._osp[f.obj][f.subject].add(f.relation)
        if f.relation.name in TAXONOMY_RELATIONS:
            # "Biking subClassOf Sport" means Sport ≤E Biking
            self.vocabulary.specialize_element(f.obj.name, f.subject.name)
        return f

    def add_all(self, facts: Iterable[FactLike]) -> None:
        for fact in facts:
            self.add(fact)

    def add_label(self, element, label: str) -> None:
        """Attach the string ``label`` to ``element`` (``hasLabel``)."""
        elem = as_element(element)
        self.vocabulary.add_element(elem.name)
        if label not in self._labels[elem]:
            self._labels[elem].add(label)
            self._label_index[label].add(elem)
            self.version += 1

    # --------------------------------------------------------------- access

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def __contains__(self, fact: FactLike) -> bool:
        return as_fact(fact) in self._facts

    def as_fact_set(self) -> FactSet:
        return FactSet(self._facts)

    def labels(self, element) -> FrozenSet[str]:
        """All string labels attached to ``element``."""
        return frozenset(self._labels.get(as_element(element), ()))

    def has_label(self, element, label: str) -> bool:
        return label in self._labels.get(as_element(element), ())

    def elements_with_label(self, label: str) -> FrozenSet[Element]:
        """Elements carrying ``label``, from the maintained reverse index."""
        return frozenset(self._label_index.get(label, ()))

    # -------------------------------------------------------------- matching

    def match(
        self,
        subject: Optional[Element] = None,
        relation: Optional[Relation] = None,
        obj: Optional[Element] = None,
    ) -> Iterator[Fact]:
        """All asserted facts matching the (possibly wildcard) pattern.

        ``None`` in a position means "any".  Selects the cheapest index for
        the bound positions.
        """
        if subject is not None and relation is not None and obj is not None:
            f = Fact(subject, relation, obj)
            if f in self._facts:
                yield f
            return
        if subject is not None and relation is not None:
            for o in self._spo.get(subject, {}).get(relation, ()):
                yield Fact(subject, relation, o)
            return
        if relation is not None and obj is not None:
            for s, objs in self._pos.get(relation, {}).items():
                if obj in objs:
                    yield Fact(s, relation, obj)
            return
        if subject is not None and obj is not None:
            for r in self._osp.get(obj, {}).get(subject, ()):
                yield Fact(subject, r, obj)
            return
        if subject is not None:
            for r, objs in self._spo.get(subject, {}).items():
                for o in objs:
                    yield Fact(subject, r, o)
            return
        if relation is not None:
            for s, objs in self._pos.get(relation, {}).items():
                for o in objs:
                    yield Fact(s, relation, o)
            return
        if obj is not None:
            for s, rels in self._osp.get(obj, {}).items():
                for r in rels:
                    yield Fact(s, r, obj)
            return
        yield from self._facts

    def objects(self, subject: Element, relation: Relation) -> FrozenSet[Element]:
        """All ``o`` with ``<subject, relation, o>`` asserted."""
        return frozenset(self._spo.get(subject, {}).get(relation, ()))

    def subjects(self, relation: Relation, obj: Element) -> FrozenSet[Element]:
        """All ``s`` with ``<s, relation, obj>`` asserted."""
        return frozenset(
            s for s, objs in self._pos.get(relation, {}).items() if obj in objs
        )

    def holds(self, fact: FactLike) -> bool:
        """Is ``fact`` semantically implied by the ontology (``{f} ≤ O``)?

        Stronger than ``in``: uses the fact-set order, so e.g.
        ``<Central Park, nearBy, NYC>`` holds if ``<Central Park, inside,
        NYC>`` is asserted and ``nearBy ≤R inside``.
        """
        f = as_fact(fact)
        if f in self._facts:
            return True
        return any(f.leq(g, self.vocabulary) for g in self._facts)

    def implies(self, fact_set: FactSet) -> bool:
        """Is the whole ``fact_set ≤`` the ontology's fact-set?"""
        return all(self.holds(f) for f in fact_set)

    def copy(self) -> "Ontology":
        dup = Ontology(self.vocabulary.copy())
        for f in self._facts:
            dup.add(f)
        for elem, labels in self._labels.items():
            for label in labels:
                dup.add_label(elem, label)
        return dup

    def __repr__(self) -> str:
        return f"Ontology({len(self._facts)} facts, {self.vocabulary!r})"
