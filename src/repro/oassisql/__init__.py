"""OASSIS-QL: the crowd-mining query language of Section 3."""

from .ast import (
    MetaFact,
    Multiplicity,
    Query,
    SatisfyingClause,
    SatTerm,
    SelectFormat,
)
from .parser import parse_query
from .pretty import format_query
from .validator import ValidationError, ensure_valid, validate

__all__ = [
    "MetaFact",
    "Multiplicity",
    "Query",
    "SatTerm",
    "SatisfyingClause",
    "SelectFormat",
    "ValidationError",
    "ensure_valid",
    "format_query",
    "parse_query",
    "validate",
]
