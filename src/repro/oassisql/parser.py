"""Parser for OASSIS-QL.

Accepts the surface syntax of Figure 2 (keywords are case-insensitive;
braces around the WHERE/SATISFYING bodies are optional, as in the paper)::

    SELECT FACT-SETS
    WHERE
      $w subClassOf* Attraction .
      $x instanceOf $w .
      ...
    SATISFYING
      $y+ doAt $x .
      [] eatAt $z .
      MORE
    WITH SUPPORT = 0.4

``SELECT VARIABLES`` and the ``ALL`` modifier are supported, as is an empty
WHERE clause (``WHERE { }`` or ``WHERE SATISFYING ...``) for the pure
frequent-itemset reduction of Section 4.1.
"""

from __future__ import annotations

from typing import List, Optional

from ..sparql.ast import BGP, Blank, Concrete, PathMod, RelationPattern, Var
from ..sparql.lexer import ParseError, TokenStream, tokenize
from ..sparql.parser import parse_bgp_tokens
from .ast import (
    MetaFact,
    Multiplicity,
    Query,
    SatisfyingClause,
    SatTerm,
    SelectFormat,
)

_WHERE_STOP = frozenset({"SATISFYING"})
_SAT_STOP = frozenset({"MORE", "WITH"})

_MULT_BY_TOKEN = {
    "PLUS": Multiplicity.AT_LEAST_ONE,
    "STAR": Multiplicity.ANY,
    "QMARK": Multiplicity.OPTIONAL,
}


def parse_query(text: str) -> Query:
    """Parse ``text`` into a :class:`~repro.oassisql.ast.Query`.

    Raises :class:`repro.sparql.lexer.ParseError` on malformed input.
    """
    stream = TokenStream(tokenize(text))
    stream.expect_keyword("SELECT")
    select_format = _parse_select_format(stream)
    select_all = False
    if stream.at_keyword("ALL"):
        stream.next()
        select_all = True

    stream.expect_keyword("WHERE")
    where = _parse_where_body(stream)

    stream.expect_keyword("SATISFYING")
    meta_facts, more = _parse_satisfying_body(stream)

    stream.expect_keyword("WITH")
    stream.expect_keyword("SUPPORT")
    _parse_support_operator(stream)
    number = stream.expect("NUMBER")
    threshold = float(number.text)
    stream.expect("EOF")

    satisfying = SatisfyingClause(meta_facts, more, threshold)
    return Query(select_format, select_all, where, satisfying)


def _parse_select_format(stream: TokenStream) -> SelectFormat:
    token = stream.peek()
    if stream.at_keyword("FACT-SETS", "FACTSETS"):
        stream.next()
        return SelectFormat.FACT_SETS
    if stream.at_keyword("VARIABLES"):
        stream.next()
        return SelectFormat.VARIABLES
    raise ParseError("expected FACT-SETS or VARIABLES after SELECT", token)


def _parse_where_body(stream: TokenStream) -> Optional[BGP]:
    braced = stream.eat("LBRACE")
    if braced and stream.eat("RBRACE"):
        return None
    if not braced and stream.at_keyword("SATISFYING"):
        return None
    bgp = parse_bgp_tokens(stream, stop_keywords=_WHERE_STOP)
    if braced:
        stream.expect("RBRACE")
    return bgp


def _parse_satisfying_body(stream: TokenStream):
    braced = stream.eat("LBRACE")
    meta_facts: List[MetaFact] = []
    more = False
    while True:
        token = stream.peek()
        if stream.at_keyword("MORE"):
            stream.next()
            more = True
            stream.eat("DOT")
            continue
        if token.kind == "RBRACE" or stream.at_keyword("WITH") or token.kind == "EOF":
            break
        meta_facts.append(_parse_meta_fact(stream))
        if not stream.eat("DOT"):
            token = stream.peek()
            terminating = (
                token.kind in ("RBRACE", "EOF")
                or stream.at_keyword("WITH")
                or stream.at_keyword("MORE")
            )
            if not terminating:
                raise ParseError("expected '.' between meta-facts", token)
    if braced:
        stream.expect("RBRACE")
    if not meta_facts:
        raise ParseError("SATISFYING requires at least one meta-fact", stream.peek())
    return meta_facts, more


def _parse_meta_fact(stream: TokenStream) -> MetaFact:
    subject = _parse_sat_term(stream)
    relation = _parse_sat_relation(stream)
    obj = _parse_sat_term(stream)
    return MetaFact(subject, relation, obj)


def _parse_sat_term(stream: TokenStream) -> SatTerm:
    token = stream.peek()
    if token.kind == "VAR":
        stream.next()
        multiplicity = Multiplicity.EXACTLY_ONE
        nxt = stream.peek()
        if nxt.kind in _MULT_BY_TOKEN:
            stream.next()
            multiplicity = _MULT_BY_TOKEN[nxt.kind]
        return SatTerm(Var(token.text), multiplicity)
    if token.kind == "NAME":
        stream.next()
        return SatTerm(Concrete(token.text))
    if token.kind == "LBRACKET_PAIR":
        stream.next()
        return SatTerm(Blank())
    raise ParseError("expected a variable, name or [] in meta-fact", token)


def _parse_sat_relation(stream: TokenStream) -> RelationPattern:
    token = stream.peek()
    if token.kind == "VAR":
        stream.next()
        return RelationPattern(Var(token.text))
    if token.kind == "LBRACKET_PAIR":
        stream.next()
        return RelationPattern(Blank())
    if token.kind != "NAME":
        raise ParseError("expected a relation in meta-fact", token)
    stream.next()
    return RelationPattern(Concrete(token.text), PathMod.NONE)


def _parse_support_operator(stream: TokenStream) -> None:
    token = stream.peek()
    if token.kind in ("EQ", "GE", "GT"):
        stream.next()
        return
    raise ParseError("expected '=', '>=' or '>' after WITH SUPPORT", token)
