"""Pretty-printing of OASSIS-QL queries (round-trips through the parser)."""

from __future__ import annotations

from typing import List

from ..sparql.ast import BGP
from .ast import Query


def format_query(query: Query, indent: str = "  ") -> str:
    """Render ``query`` in the paper's layout (Figure 2)."""
    lines: List[str] = []
    select = f"SELECT {query.select_format.value}"
    if query.select_all:
        select += " ALL"
    lines.append(select)
    lines.append("WHERE")
    if query.where is None:
        lines.append(f"{indent}{{ }}")
    else:
        lines.extend(_format_bgp(query.where, indent))
    lines.append("SATISFYING")
    for meta_fact in query.satisfying.meta_facts:
        lines.append(f"{indent}{meta_fact} .")
    if query.satisfying.more:
        lines.append(f"{indent}MORE")
    lines.append(f"WITH SUPPORT = {query.satisfying.threshold:g}")
    return "\n".join(lines)


def _format_bgp(bgp: BGP, indent: str) -> List[str]:
    return [f"{indent}{pattern} ." for pattern in bgp]
