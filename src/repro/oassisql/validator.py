"""Semantic validation of parsed OASSIS-QL queries.

The parser only enforces syntax; this module checks the constraints that
make a query *evaluable* against a given ontology:

* every concrete term mentioned in the query exists in the vocabulary;
* SATISFYING variables are either bound by the WHERE clause or explicitly
  free (allowed — they then range over the whole vocabulary, as in the
  frequent-itemset reduction);
* variables in relation position are not also used in element position;
* the support threshold is in (0, 1] (re-checked; the AST enforces it too).

Problems are collected and reported together.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..ontology.graph import HAS_LABEL, Ontology
from ..sparql.ast import BGP, Concrete, Var
from .ast import Query


class ValidationError(ValueError):
    """Raised when a query fails validation; carries all problems."""

    def __init__(self, problems: List[str]):
        super().__init__("; ".join(problems))
        self.problems = list(problems)


def validate(query: Query, ontology: Optional[Ontology] = None) -> List[str]:
    """Validate ``query``; returns the list of problems (empty if valid).

    When ``ontology`` is given, concrete names are checked against its
    vocabulary.
    """
    problems: List[str] = []
    _check_variable_kinds(query, problems)
    if ontology is not None:
        _check_known_terms(query, ontology, problems)
    return problems


def ensure_valid(query: Query, ontology: Optional[Ontology] = None) -> None:
    """Raise :class:`ValidationError` if ``query`` has any problem."""
    problems = validate(query, ontology)
    if problems:
        raise ValidationError(problems)


def _check_variable_kinds(query: Query, problems: List[str]) -> None:
    element_vars: Set[str] = set()
    relation_vars: Set[str] = set()

    def scan_bgp(bgp: Optional[BGP]) -> None:
        if bgp is None:
            return
        for pattern in bgp:
            for node in (pattern.subject, pattern.obj):
                if isinstance(node, Var):
                    element_vars.add(node.name)
            if isinstance(pattern.relation.term, Var):
                relation_vars.add(pattern.relation.term.name)

    scan_bgp(query.where)
    for meta_fact in query.satisfying.meta_facts:
        for sat_term in (meta_fact.subject, meta_fact.obj):
            if isinstance(sat_term.term, Var):
                element_vars.add(sat_term.term.name)
        if isinstance(meta_fact.relation.term, Var):
            relation_vars.add(meta_fact.relation.term.name)

    for name in sorted(element_vars & relation_vars):
        problems.append(
            f"variable ${name} is used both in element and relation position"
        )


def _check_known_terms(query: Query, ontology: Ontology, problems: List[str]) -> None:
    vocabulary = ontology.vocabulary

    def check_element(name: str, where: str) -> None:
        if not vocabulary.has_element(name):
            problems.append(f"unknown element {name!r} in {where}")

    def check_relation(name: str, where: str) -> None:
        if name == HAS_LABEL:
            return
        if not vocabulary.has_relation(name):
            problems.append(f"unknown relation {name!r} in {where}")

    if query.where is not None:
        for pattern in query.where:
            if isinstance(pattern.subject, Concrete):
                check_element(pattern.subject.name, "WHERE")
            if isinstance(pattern.obj, Concrete):
                check_element(pattern.obj.name, "WHERE")
            if isinstance(pattern.relation.term, Concrete):
                check_relation(pattern.relation.term.name, "WHERE")
    for meta_fact in query.satisfying.meta_facts:
        for sat_term in (meta_fact.subject, meta_fact.obj):
            if isinstance(sat_term.term, Concrete):
                check_element(sat_term.term.name, "SATISFYING")
        if isinstance(meta_fact.relation.term, Concrete):
            check_relation(meta_fact.relation.term.name, "SATISFYING")
