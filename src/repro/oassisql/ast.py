"""AST for OASSIS-QL queries (Section 3 of the paper).

A query has four parts::

    SELECT (FACT-SETS | VARIABLES) [ALL]
    WHERE       <basic graph pattern over the ontology>
    SATISFYING  <meta-fact-set with multiplicities> [MORE]
    WITH SUPPORT = <threshold>

The WHERE clause reuses the SPARQL AST (:class:`repro.sparql.ast.BGP`); the
SATISFYING clause is a list of :class:`MetaFact` whose variable occurrences
carry :class:`Multiplicity` annotations, plus an optional MORE flag (sugar
for any number of unrestricted extra facts).
"""

from __future__ import annotations

import enum
from typing import List, Optional, Tuple, Union

from ..sparql.ast import BGP, Blank, Concrete, RelationPattern, StringLiteral, Var


class SelectFormat(enum.Enum):
    """Answer format requested by the SELECT statement."""

    FACT_SETS = "FACT-SETS"
    VARIABLES = "VARIABLES"


class Multiplicity(enum.Enum):
    """How many instantiations of a variable a meta-fact asks for.

    The paper's notations: default is exactly one; ``+`` at least one;
    ``*`` any number (including zero); ``?`` optional (zero or one).
    """

    EXACTLY_ONE = ""
    AT_LEAST_ONE = "+"
    ANY = "*"
    OPTIONAL = "?"

    @property
    def minimum(self) -> int:
        """Smallest admissible number of values."""
        return 1 if self in (Multiplicity.EXACTLY_ONE, Multiplicity.AT_LEAST_ONE) else 0

    @property
    def maximum(self) -> Optional[int]:
        """Largest admissible number of values (None = unbounded)."""
        if self is Multiplicity.EXACTLY_ONE:
            return 1
        if self is Multiplicity.OPTIONAL:
            return 1
        return None

    def admits(self, count: int) -> bool:
        """Does a value-set of size ``count`` satisfy this multiplicity?"""
        if count < self.minimum:
            return False
        return self.maximum is None or count <= self.maximum

    def __str__(self) -> str:
        return self.value


class SatTerm:
    """One position of a meta-fact: a pattern term plus a multiplicity."""

    __slots__ = ("term", "multiplicity")

    def __init__(
        self,
        term: Union[Var, Concrete, Blank, StringLiteral],
        multiplicity: Multiplicity = Multiplicity.EXACTLY_ONE,
    ):
        if multiplicity is not Multiplicity.EXACTLY_ONE and not isinstance(term, Var):
            raise ValueError("multiplicity annotations require a variable")
        self.term = term
        self.multiplicity = multiplicity

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SatTerm)
            and self.term == other.term
            and self.multiplicity == other.multiplicity
        )

    def __hash__(self) -> int:
        return hash((self.term, self.multiplicity))

    def __repr__(self) -> str:
        return f"SatTerm({self.term!r}, {self.multiplicity!r})"

    def __str__(self) -> str:
        return f"{self.term}{self.multiplicity}"


class MetaFact:
    """One ``subject relation object`` pattern of the SATISFYING clause."""

    __slots__ = ("subject", "relation", "obj")

    def __init__(self, subject: SatTerm, relation: RelationPattern, obj: SatTerm):
        self.subject = subject
        self.relation = relation
        self.obj = obj

    def variables(self) -> Tuple[Var, ...]:
        found: List[Var] = []
        for part in (self.subject.term, self.relation.term, self.obj.term):
            if isinstance(part, Var):
                found.append(part)
        return tuple(found)

    def multiplicity_of(self, var: Var) -> Multiplicity:
        """Multiplicity annotation of ``var`` in this meta-fact."""
        for sat_term in (self.subject, self.obj):
            if sat_term.term == var:
                return sat_term.multiplicity
        if self.relation.term == var:
            return Multiplicity.EXACTLY_ONE
        raise KeyError(f"{var!r} does not occur in {self!r}")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, MetaFact)
            and self.subject == other.subject
            and self.relation == other.relation
            and self.obj == other.obj
        )

    def __hash__(self) -> int:
        return hash((self.subject, self.relation, self.obj))

    def __repr__(self) -> str:
        return f"MetaFact({self.subject!r}, {self.relation!r}, {self.obj!r})"

    def __str__(self) -> str:
        return f"{self.subject} {self.relation} {self.obj}"


class SatisfyingClause:
    """The SATISFYING statement: meta-facts, MORE flag, support threshold."""

    __slots__ = ("meta_facts", "more", "threshold")

    def __init__(self, meta_facts: List[MetaFact], more: bool, threshold: float):
        if not meta_facts:
            raise ValueError("SATISFYING requires at least one meta-fact")
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"support threshold must be in (0, 1], got {threshold}")
        self.meta_facts = list(meta_facts)
        self.more = more
        self.threshold = threshold

    def variables(self) -> Tuple[Var, ...]:
        """Variables in first-occurrence order, without duplicates."""
        seen = {}
        for meta_fact in self.meta_facts:
            for var in meta_fact.variables():
                seen.setdefault(var.name, var)
        return tuple(seen.values())

    def multiplicity_of(self, var: Var) -> Multiplicity:
        """The multiplicity of ``var`` (first annotated occurrence wins)."""
        annotated = [
            sat_term.multiplicity
            for meta_fact in self.meta_facts
            for sat_term in (meta_fact.subject, meta_fact.obj)
            if sat_term.term == var and sat_term.multiplicity is not Multiplicity.EXACTLY_ONE
        ]
        if annotated:
            return annotated[0]
        return Multiplicity.EXACTLY_ONE

    def __repr__(self) -> str:
        return (
            f"SatisfyingClause({self.meta_facts!r}, more={self.more}, "
            f"threshold={self.threshold})"
        )


class Query:
    """A complete OASSIS-QL query."""

    __slots__ = ("select_format", "select_all", "where", "satisfying")

    def __init__(
        self,
        select_format: SelectFormat,
        select_all: bool,
        where: Optional[BGP],
        satisfying: SatisfyingClause,
    ):
        self.select_format = select_format
        self.select_all = select_all
        self.where = where  # None = empty WHERE (pure itemset mining)
        self.satisfying = satisfying

    @property
    def threshold(self) -> float:
        return self.satisfying.threshold

    def where_variables(self) -> Tuple[Var, ...]:
        return self.where.variables() if self.where is not None else ()

    def satisfying_variables(self) -> Tuple[Var, ...]:
        return self.satisfying.variables()

    def free_satisfying_variables(self) -> Tuple[Var, ...]:
        """SATISFYING variables not constrained by the WHERE clause."""
        bound = {v.name for v in self.where_variables()}
        return tuple(v for v in self.satisfying_variables() if v.name not in bound)

    def __repr__(self) -> str:
        return (
            f"Query({self.select_format}, all={self.select_all}, "
            f"where={self.where!r}, satisfying={self.satisfying!r})"
        )
