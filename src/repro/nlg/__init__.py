"""Natural-language question templating for the crowdsourcing UI."""

from .templates import DEFAULT_TEMPLATES, QuestionTemplates, render_assignment

__all__ = ["DEFAULT_TEMPLATES", "QuestionTemplates", "render_assignment"]
