"""Natural-language question generation (Section 6.2).

Questions are produced from domain-specific templates keyed by relation
name; ontology elements are plugged into the template slots, exactly as in
the paper's example where the assignment φ17 renders as "How often do you
engage in ball games in Central Park?".  Unknown relations fall back to a
generic "{subject} {relation} {object}" phrasing.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..assignments.assignment import Assignment
from ..ontology.facts import Fact, FactSet
from ..vocabulary.terms import ANY_ELEMENT, ANY_RELATION_WILDCARD


class QuestionTemplates:
    """Registry of per-relation verb-phrase templates.

    A template is a format string with ``{subject}`` and ``{object}``
    placeholders, e.g. ``"do {subject} at {object}"`` for ``doAt``.
    """

    def __init__(self, templates: Optional[Dict[str, str]] = None):
        self._templates: Dict[str, str] = dict(templates) if templates else {}

    def register(self, relation: str, template: str) -> None:
        if "{subject}" not in template or "{object}" not in template:
            raise ValueError("template needs {subject} and {object} placeholders")
        self._templates[relation] = template

    def phrase(self, fact: Fact) -> str:
        """The verb phrase for one fact."""
        subject = "anything" if fact.subject == ANY_ELEMENT else fact.subject.name.lower()
        obj = "anywhere" if fact.obj == ANY_ELEMENT else fact.obj.name
        template = self._templates.get(fact.relation.name)
        if template is None:
            if fact.relation == ANY_RELATION_WILDCARD:
                return f"do anything involving {subject} and {obj}"
            return f"{subject} {fact.relation.name} {obj}"
        return template.format(subject=subject, object=obj)

    def concrete_question(self, fact_set: FactSet) -> str:
        """Render "How often do you X and also Y?" for a fact-set."""
        phrases = [self.phrase(f) for f in sorted(fact_set)]
        if not phrases:
            return "How often does this happen?"
        joined = " and also ".join(phrases)
        return f"How often do you {joined}?"

    def specialization_question(self, fact_set: FactSet, focus: str) -> str:
        """Render "What type of ⟨focus⟩ do you ...? How often?"."""
        phrases = [self.phrase(f) for f in sorted(fact_set)]
        joined = " and also ".join(phrases) if phrases else "do that"
        return (
            f"What type of {focus.lower()} do you mean when you {joined}? "
            "How often do you do that?"
        )


#: Templates for the travel / culinary / self-treatment demo domains.
DEFAULT_TEMPLATES = QuestionTemplates(
    {
        "doAt": "do {subject} at {object}",
        "eatAt": "eat {subject} at {object}",
        "drinkWith": "drink {subject} with {object}",
        "takeFor": "take {subject} for {object}",
        "visit": "visit {object} for {subject}",
    }
)


def render_assignment(assignment: Assignment) -> str:
    """A compact human-readable rendering of an assignment."""
    parts: List[str] = []
    for name, values in sorted(assignment.values.items()):
        if name.startswith("__"):
            continue
        rendered = ", ".join(sorted(v.name for v in values))
        parts.append(f"${name} = {rendered}")
    for fact in sorted(assignment.more):
        parts.append(f"(more) {fact}")
    return "; ".join(parts) if parts else "(empty assignment)"
