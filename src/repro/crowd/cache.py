"""CrowdCache: the answer store of Section 6.1/6.3.

The cache records every (assignment, member, support) triple collected from
the crowd.  Its headline use is the paper's threshold replay: answers
gathered while executing a query at threshold 0.2 are *independent of the
threshold*, so the same query can be re-evaluated at 0.3/0.4/0.5 without
asking the crowd again — the mining algorithm consults the cache first and
only "asks" when the cache misses.  The Section 6.3 statistics count, per
threshold, only the answers the algorithm actually used.

The paper backs this store with MySQL; we keep it in memory with optional
JSON persistence (the durability engine is irrelevant to the algorithms).

Thread-safety: mutations and snapshots take an internal lock, so one cache
may be written from several service worker threads (see
:mod:`repro.service`) or shared between a live session and a snapshot
reader.  The arrival-order answer lists double as provenance — they record
which member said what, in which order it was collected.
"""

from __future__ import annotations

import json
from collections import defaultdict
from typing import Dict, Hashable, Iterator, List, Optional, Tuple

from ..analysis.lockcheck import named_lock
from ..observability import count as _obs_count


class CrowdCache:
    """In-memory store of crowd answers keyed by assignment."""

    def __init__(self) -> None:
        # assignment -> list of (member_id, support), in arrival order
        self._answers: Dict[Hashable, List[Tuple[str, float]]] = defaultdict(list)
        self._lock = named_lock("crowd.cache")
        self.hits = 0
        self.misses = 0

    def record(self, assignment: Hashable, member_id: str, support: float) -> None:
        """Store one collected answer."""
        with self._lock:
            self._answers[assignment].append((member_id, support))
        _obs_count("cache.answers.recorded")

    def snapshot(self) -> "CrowdCache":
        """A point-in-time copy (session snapshot/resume).

        The copy is independent: answers recorded into either cache after
        the snapshot do not leak into the other.  Hit/miss statistics
        start from zero.
        """
        copy = CrowdCache()
        with self._lock:
            for assignment, answers in self._answers.items():
                copy._answers[assignment] = list(answers)
        return copy

    def lookup(self, assignment: Hashable, member_id: str) -> Optional[float]:
        """The cached answer of ``member_id`` for ``assignment``, if any."""
        for member, support in self._answers.get(assignment, ()):
            if member == member_id:
                self.hits += 1
                _obs_count("cache.hits")
                return support
        self.misses += 1
        _obs_count("cache.misses")
        return None

    def answers_for(self, assignment: Hashable) -> List[Tuple[str, float]]:
        """All cached answers for ``assignment`` in arrival order."""
        return list(self._answers.get(assignment, ()))

    def assignments(self) -> Iterator[Hashable]:
        return iter(self._answers)

    def __len__(self) -> int:
        return len(self._answers)

    def total_answers(self) -> int:
        return sum(len(answers) for answers in self._answers.values())

    def clear_statistics(self) -> None:
        self.hits = 0
        self.misses = 0

    # ---------------------------------------------------------- persistence

    def to_json(self, key_fn=repr) -> str:
        """Serialize to JSON; ``key_fn`` renders assignment keys as strings.

        Round-tripping through JSON loses the original assignment objects
        (keys become strings); this is intended for audit logs and offline
        analysis, not as the primary store.
        """
        payload = {
            key_fn(assignment): [[member, support] for member, support in answers]
            for assignment, answers in self._answers.items()
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CrowdCache":
        """Load a cache whose keys are the serialized strings."""
        cache = cls()
        payload = json.loads(text)
        for key, answers in payload.items():
            for member, support in answers:
                cache.record(key, member, float(support))
        return cache
