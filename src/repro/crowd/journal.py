"""Write-ahead-logged crowd answers: no acknowledged answer is ever lost.

The in-memory :class:`~repro.crowd.cache.CrowdCache` loses everything on
a process crash — every answer the crowd was paid for.  This module adds
the durability layer:

* **append-only JSONL journal** — :class:`DurableCrowdCache` appends one
  self-describing record per answer *before* applying it in memory, and
  flushes the line to the OS before :meth:`~DurableCrowdCache.record`
  returns.  An answer is acknowledged only once it is journaled, so a
  crash can lose at most an answer that was never acknowledged.
* **replay on open** — :func:`replay_journal` reads a journal back,
  skipping a torn final line (the partial write of the crash itself)
  and counting corrupt lines instead of failing the whole recovery.
* **idempotent application** — records are keyed by
  ``(assignment key, member, question kind)``; duplicate deliveries
  (service retries, replay of a compacted+uncompacted pair, a crashed
  writer that reopened) apply exactly once.
* **atomic snapshot compaction** — :meth:`~DurableCrowdCache.compact`
  rewrites the deduplicated journal via tmp-file + ``os.replace``; a
  crash mid-compaction leaves the old journal intact.

The record format (one JSON object per line)::

    {"v": 1, "k": "<assignment key>", "m": "<member>", "s": 0.5, "q": "concrete"}

Assignment keys are the stable ``repr`` of
:class:`~repro.assignments.assignment.Assignment` (sorted variables and
values — deterministic across processes).  Mapping keys back to live
``Assignment`` objects on recovery is the session-restore protocol of
:mod:`repro.service.recovery`; see ``docs/RELIABILITY.md``.

The file-format mechanics (torn-tail healing, tolerant line replay,
atomic rewrite) live in :class:`AppendLog` / :func:`replay_log`, which
know nothing about crowd answers — the gateway's session WAL
(:mod:`repro.gateway.journal`) reuses them for a completely different
record vocabulary.  Observability stays with the *callers*: ``AppendLog``
emits no counters of its own, so each journal family (``recovery.wal.*``,
``gateway.journal.*``) counts under its own registered names.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    IO,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..observability import count as _obs_count
from .cache import CrowdCache

#: journal record schema version (bump on breaking changes)
RECORD_VERSION = 1


# --------------------------------------------------------- generic machinery


def _heal_torn_tail(path: Path) -> None:
    """Terminate a torn final line before appending resumes.

    A crash mid-write can leave the log without a trailing newline.
    Appending straight after would glue the next record onto the torn
    line, turning an *acknowledged* record into one more corrupt line on
    the next replay.  Writing the missing newline confines the damage to
    the torn (never-acknowledged) line itself.
    """
    if not path.exists():
        return
    with path.open("rb+") as handle:
        handle.seek(0, os.SEEK_END)
        if handle.tell() == 0:
            return
        handle.seek(-1, os.SEEK_END)
        if handle.read(1) != b"\n":
            handle.write(b"\n")


def replay_log(path: "os.PathLike[str] | str") -> Tuple[List[Dict[str, Any]], int]:
    """Read a JSONL log back; returns ``(payloads, corrupt_lines_skipped)``.

    A torn or garbled line (the typical crash artifact) is skipped and
    counted, never fatal — exactly the tolerance :func:`replay_journal`
    applies, made reusable for any record vocabulary.  Lines that decode
    to something other than a JSON object count as corrupt too.
    """
    payloads: List[Dict[str, Any]] = []
    corrupt = 0
    log = Path(path)
    if not log.exists():
        return payloads, corrupt
    with log.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except (ValueError, UnicodeDecodeError):
                corrupt += 1
                continue
            if not isinstance(payload, dict):
                corrupt += 1
                continue
            payloads.append(payload)
    return payloads, corrupt


class AppendLog:
    """An append-only JSONL file with WAL discipline.

    The mechanical core shared by :class:`DurableCrowdCache` and the
    gateway journal: every :meth:`append` is flushed (optionally fsynced)
    before it returns, a torn final line is healed on open, and
    :meth:`rewrite` swaps in a compacted snapshot atomically (tmp file +
    ``os.replace`` — readers see the old log or the new one, never a
    truncated hybrid).

    Not thread-safe on its own: callers serialize access under their own
    lock (the cache lock here, the journal lock in the gateway).
    """

    def __init__(
        self, path: "os.PathLike[str] | str", *, fsync: bool = False
    ) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        _heal_torn_tail(self.path)
        self._handle: Optional[IO[str]] = self.path.open("a", encoding="utf-8")

    @property
    def closed(self) -> bool:
        return self._handle is None

    def append_line(self, line: str) -> None:
        """Append one pre-serialized record line, flush, optionally fsync."""
        if self._handle is None:
            raise RuntimeError(f"log {self.path} is closed")
        self._handle.write(line + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def append(self, payload: Mapping[str, Any]) -> None:
        """Append one record as a sorted-key JSON line."""
        self.append_line(json.dumps(payload, sort_keys=True))

    def rewrite(self, lines: Iterable[str]) -> int:
        """Atomically replace the log's contents; returns the line count.

        The append handle is reopened on the new file, so a live writer
        keeps appending after the swap.  A crash mid-rewrite leaves the
        old log intact (the tmp file is simply orphaned).
        """
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        written = 0
        with tmp.open("w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(line + "\n")
                written += 1
            handle.flush()
            os.fsync(handle.fileno())
        if self._handle is not None:
            self._handle.close()
        os.replace(tmp, self.path)
        self._handle = self.path.open("a", encoding="utf-8")
        return written

    def close(self) -> None:
        """Flush and close the handle (idempotent)."""
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "AppendLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"AppendLog({str(self.path)!r})"


class JournalRecord:
    """One journaled answer: ``(key, member, support, question kind)``."""

    __slots__ = ("key", "member", "support", "kind")

    def __init__(
        self, key: str, member: str, support: float, kind: str = "concrete"
    ) -> None:
        self.key = key
        self.member = member
        self.support = support
        self.kind = kind

    @property
    def identity(self) -> Tuple[str, str, str]:
        """The idempotence key: ``(assignment key, member, kind)``."""
        return (self.key, self.member, self.kind)

    def as_line(self) -> str:
        return json.dumps(
            {
                "v": RECORD_VERSION,
                "k": self.key,
                "m": self.member,
                "s": self.support,
                "q": self.kind,
            },
            sort_keys=True,
        )

    def __repr__(self) -> str:
        return f"JournalRecord({self.key!r}, {self.member!r}, {self.support})"


def replay_journal(path: "os.PathLike[str] | str") -> Tuple[List[JournalRecord], int]:
    """Read a journal back; returns ``(records, corrupt_lines_skipped)``.

    Records are returned in arrival order with duplicates (same
    idempotence key) dropped — replay is idempotent by construction.  A
    torn or garbled line (the typical crash artifact) is skipped and
    counted, never fatal: losing one unacknowledged answer beats losing
    the whole journal.
    """
    records: List[JournalRecord] = []
    seen: Set[Tuple[str, str, str]] = set()
    corrupt = 0
    journal = Path(path)
    if not journal.exists():
        return records, corrupt
    with journal.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                record = JournalRecord(
                    key=str(payload["k"]),
                    member=str(payload["m"]),
                    support=float(payload["s"]),
                    kind=str(payload.get("q", "concrete")),
                )
            except (ValueError, KeyError, TypeError):
                corrupt += 1
                _obs_count("recovery.wal.corrupt_skipped")
                continue
            if record.identity in seen:
                _obs_count("recovery.wal.duplicates_skipped")
                continue
            seen.add(record.identity)
            records.append(record)
            _obs_count("recovery.wal.replayed")
    return records, corrupt


class DurableCrowdCache(CrowdCache):
    """A :class:`~repro.crowd.cache.CrowdCache` backed by a WAL journal.

    A drop-in cache whose :meth:`record` journals before applying; the
    whole read surface (lookup, snapshot, statistics) is inherited
    unchanged.  Two ways to open one:

    * ``DurableCrowdCache(path)`` on a fresh or existing journal —
      existing records are replayed into memory keyed by their *string*
      assignment keys (audit/inspection mode: journal keys, not live
      ``Assignment`` objects);
    * ``DurableCrowdCache(path, preload=resolved)`` — the recovery path:
      ``preload`` maps *live* assignments to their answer lists (produced
      by :func:`repro.service.recovery.resolve_journal`), existing
      journal identities are remembered for idempotence, and new answers
      keep appending to the same journal.

    The override never calls ``super().record()`` while holding the
    cache lock — the base lock is a plain (non-reentrant) ``Lock``.
    """

    def __init__(
        self,
        journal_path: "os.PathLike[str] | str",
        *,
        fsync: bool = False,
        key_fn: Callable[[Hashable], str] = repr,
        preload: Optional[Mapping[Hashable, Sequence[Tuple[str, float]]]] = None,
    ) -> None:
        super().__init__()
        self.journal_path = Path(journal_path)
        self.fsync = fsync
        self.key_fn = key_fn
        self._seen: Set[Tuple[str, str, str]] = set()
        records, self.corrupt_lines = replay_journal(self.journal_path)
        for record in records:
            self._seen.add(record.identity)
        if preload is not None:
            for assignment, answers in preload.items():
                for member_id, support in answers:
                    self._answers[assignment].append((member_id, support))
        else:
            for record in records:
                self._answers[record.key].append((record.member, record.support))
        self._log = AppendLog(self.journal_path, fsync=fsync)

    def record(self, assignment: Hashable, member_id: str, support: float) -> None:
        """Journal, flush, then apply — the write-ahead discipline.

        Idempotent on ``(assignment key, member, kind)``: re-recording a
        journaled answer is a no-op (counted, not an error), so duplicate
        deliveries and resumed sessions never double-apply.
        """
        record = JournalRecord(self.key_fn(assignment), member_id, support)
        with self._lock:
            if record.identity in self._seen:
                _obs_count("recovery.wal.duplicates_skipped")
                return
            self._log.append_line(record.as_line())
            self._seen.add(record.identity)
            self._answers[assignment].append((member_id, support))
        _obs_count("cache.answers.recorded")
        _obs_count("recovery.wal.appends")

    # ------------------------------------------------------------- durability

    def compact(self) -> int:
        """Atomically rewrite the journal as a deduplicated snapshot.

        The snapshot is written to a sibling tmp file and swapped in with
        ``os.replace`` — readers either see the old journal or the new
        one, never a truncated hybrid.  Returns the record count.
        """
        with self._lock:
            records = [
                JournalRecord(self.key_fn(assignment), member, support)
                for assignment, answers in self._answers.items()
                for member, support in answers
            ]
            self._log.rewrite(record.as_line() for record in records)
            self._seen = {record.identity for record in records}
        _obs_count("recovery.wal.compactions")
        return len(records)

    def close(self) -> None:
        """Flush and close the journal handle (idempotent)."""
        with self._lock:
            self._log.close()

    def __enter__(self) -> "DurableCrowdCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"DurableCrowdCache({str(self.journal_path)!r}, "
            f"answers={self.total_answers()})"
        )
