"""Simulated crowd members.

A :class:`CrowdMember` owns a (virtual) personal database and answers the
two question types.  Behaviour knobs reproduce the phenomena the paper's
experiments vary:

* ``noise`` — zero-mean Gaussian perturbation of the true support, modeling
  imperfect recall [Bradburn et al.];
* ``quantize`` — snap answers to the UI's five-point frequency scale;
* ``specialization_ratio`` — how often the member accepts answering an
  open-ended specialization question rather than a concrete one (the paper
  observed 12% in the wild and sweeps 0–100% synthetically, Fig. 4f);
* ``pruning_ratio`` — how often the member volunteers a user-guided pruning
  click on an irrelevant value (observed 13%; swept 0/25/50%);
* ``irrelevant_values`` — terms the member considers never-relevant, the
  source of pruning clicks and "none of these" answers.

A :class:`SpammerMember` answers uniformly at random; it exists to exercise
the consistency-based filtering of :mod:`repro.crowd.selection`.
"""

from __future__ import annotations

import random
from typing import FrozenSet, Iterable, Optional

from ..assignments.assignment import Assignment
from ..ontology.facts import FactSet
from ..vocabulary.terms import Term
from ..vocabulary.vocabulary import Vocabulary
from .personal_db import PersonalDatabase
from .questions import (
    Answer,
    ConcreteQuestion,
    NoneOfTheseAnswer,
    SpecializationAnswer,
    SpecializationQuestion,
    SupportAnswer,
    quantize_support,
)


class CrowdMember:
    """A cooperative, possibly noisy crowd member."""

    def __init__(
        self,
        member_id: str,
        database: PersonalDatabase,
        vocabulary: Vocabulary,
        noise: float = 0.0,
        quantize: bool = False,
        specialization_ratio: float = 0.0,
        pruning_ratio: float = 0.0,
        irrelevant_values: Iterable[Term] = (),
        rng: Optional[random.Random] = None,
        max_questions: Optional[int] = None,
        more_tip_ratio: float = 0.0,
    ):
        self.member_id = member_id
        self.database = database
        self.vocabulary = vocabulary
        self.noise = noise
        self.quantize = quantize
        self.specialization_ratio = specialization_ratio
        self.pruning_ratio = pruning_ratio
        self.irrelevant_values: FrozenSet[Term] = frozenset(irrelevant_values)
        self.rng = rng if rng is not None else random.Random(0)
        self.max_questions = max_questions
        self.more_tip_ratio = more_tip_ratio
        self.questions_answered = 0

    # ------------------------------------------------------------- answering

    def true_support(self, fact_set: FactSet) -> float:
        """The member's exact support for ``fact_set`` (no noise)."""
        return self.database.support(fact_set, self.vocabulary)

    def _reported_support(self, fact_set: FactSet) -> float:
        value = self.true_support(fact_set)
        if self.noise > 0.0:
            value += self.rng.gauss(0.0, self.noise)
            value = min(1.0, max(0.0, value))
        if self.quantize:
            value = quantize_support(value)
        return value

    def willing_to_answer(self) -> bool:
        """Members may quit after ``max_questions`` (Section 4.2, change 1)."""
        return self.max_questions is None or self.questions_answered < self.max_questions

    def wants_specialization(self) -> bool:
        """Does the member opt into an open-ended question right now?"""
        return self.rng.random() < self.specialization_ratio

    def prunable_value(self, assignment: Assignment) -> Optional[Term]:
        """A value in ``assignment`` the member would prune, if any.

        Fires with probability ``pruning_ratio`` when the assignment touches
        one of the member's irrelevant values.
        """
        if not self.irrelevant_values or self.rng.random() >= self.pruning_ratio:
            return None
        for values in assignment.values.values():
            for value in values:
                for irrelevant in self.irrelevant_values:
                    if self.vocabulary.leq(irrelevant, value):
                        return irrelevant
        return None

    def answer_concrete(self, question: ConcreteQuestion) -> SupportAnswer:
        """Answer a concrete frequency question."""
        self.questions_answered += 1
        return SupportAnswer(self._reported_support(question.fact_set))

    def answer_specialization(
        self,
        question: SpecializationQuestion,
        instantiate,
    ) -> Answer:
        """Answer an open specialization question.

        ``instantiate`` maps a candidate assignment to its fact-set.  The
        member picks the candidate with the highest personal support, if any
        candidate is personally frequent; otherwise answers "none of these"
        (zeroing every candidate at once).
        """
        self.questions_answered += 1
        best: Optional[Assignment] = None
        best_support = 0.0
        for candidate in question.candidates:
            support = self.true_support(instantiate(candidate))
            if support > best_support:
                best, best_support = candidate, support
        if best is None:
            return NoneOfTheseAnswer(question.candidates)
        reported = best_support
        if self.quantize:
            reported = quantize_support(reported)
        return SpecializationAnswer(best, reported)

    def suggest_more_fact(self, fact_set: FactSet, force: bool = False):
        """A MORE tip: a fact frequently co-occurring with ``fact_set``.

        Models the UI's "more" button (Section 6.2): with probability
        ``more_tip_ratio`` the member volunteers the most common extra fact
        from their transactions that support ``fact_set``, excluding facts
        the fact-set already implies.  Returns None when the member does not
        volunteer, has no supporting transactions, or nothing new co-occurs.
        """
        if not force and self.rng.random() >= self.more_tip_ratio:
            return None
        supporting = self.database.supporting_transactions(fact_set, self.vocabulary)
        if not supporting:
            return None
        counts: dict = {}
        for transaction in supporting:
            for fact in transaction.facts:
                # skip facts comparable to the pattern: a generalization adds
                # nothing and a specialization (e.g. naming the dish behind a
                # wildcard) is refinement, not extra advice
                comparable = any(
                    fact.leq(g, self.vocabulary) or g.leq(fact, self.vocabulary)
                    for g in fact_set
                )
                if comparable:
                    continue
                counts[fact] = counts.get(fact, 0) + 1
        if not counts:
            return None
        best = max(sorted(counts, key=str), key=lambda f: counts[f])
        # only volunteer tips that genuinely co-occur often
        if counts[best] < max(1, len(supporting) // 2):
            return None
        return best

    def __repr__(self) -> str:
        return f"CrowdMember({self.member_id!r}, |D|={len(self.database)})"


class OracleMember(CrowdMember):
    """A member whose support comes from a planted function, not a DB.

    The synthetic experiments of Section 6.4 plant (in)significance directly
    on DAG nodes; this member answers from that ground truth.  ``support_fn``
    maps an assignment (or any node object) to its support value.
    """

    def __init__(
        self,
        member_id: str,
        support_fn,
        vocabulary: Optional[Vocabulary] = None,
        noise: float = 0.0,
        rng: Optional[random.Random] = None,
        **kwargs,
    ):
        super().__init__(
            member_id,
            PersonalDatabase(),
            vocabulary if vocabulary is not None else Vocabulary(),
            noise=noise,
            rng=rng,
            **kwargs,
        )
        self._support_fn = support_fn

    def true_support(self, fact_set) -> float:  # type: ignore[override]
        return self._support_fn(fact_set)


class SpammerMember(CrowdMember):
    """Answers uniformly at random, ignoring its (empty) history."""

    def __init__(
        self,
        member_id: str,
        vocabulary: Vocabulary,
        rng: Optional[random.Random] = None,
    ):
        super().__init__(member_id, PersonalDatabase(), vocabulary, rng=rng)

    def true_support(self, fact_set: FactSet) -> float:  # type: ignore[override]
        return self.rng.random()
