"""Black-box answer aggregators (Section 4.2).

The multi-user algorithm delegates two decisions to a pluggable black box:
(i) have enough answers been gathered for an assignment, and (ii) is the
assignment overall significant?  The paper's crowd experiments use the
simplest instance — five answers, average against the threshold — which is
:class:`FixedSampleAggregator`.  Alternative boxes (majority vote,
trust-weighted average) are provided as the paper suggests.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from ..observability import count as _obs_count


class Verdict(enum.Enum):
    """The aggregator's decision about an assignment."""

    SIGNIFICANT = "significant"
    INSIGNIFICANT = "insignificant"
    UNDECIDED = "undecided"


class Aggregator:
    """Base class: collects per-assignment answers and renders verdicts."""

    def __init__(self, threshold: float):
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self.threshold = threshold
        # assignment -> list of (member_id, support)
        self._answers: Dict[Hashable, List[Tuple[str, float]]] = defaultdict(list)

    def add_answer(self, assignment: Hashable, member_id: str, support: float) -> None:
        """Record one member's answer for ``assignment``."""
        self._answers[assignment].append((member_id, support))
        _obs_count("aggregator.answers")

    def answers(self, assignment: Hashable) -> List[Tuple[str, float]]:
        return list(self._answers.get(assignment, ()))

    def answer_count(self, assignment: Hashable) -> int:
        return len(self._answers.get(assignment, ()))

    def total_answers(self) -> int:
        return sum(len(answers) for answers in self._answers.values())

    def has_answered(self, assignment: Hashable, member_id: str) -> bool:
        return any(m == member_id for m, _ in self._answers.get(assignment, ()))

    def verdict(self, assignment: Hashable) -> Verdict:
        raise NotImplementedError

    def average_support(self, assignment: Hashable) -> Optional[float]:
        answers = self._answers.get(assignment)
        if not answers:
            return None
        return sum(s for _, s in answers) / len(answers)


class FixedSampleAggregator(Aggregator):
    """The paper's black box: ``sample_size`` answers, then average.

    Undecided until ``sample_size`` answers have been collected; then
    significant iff the average support meets the threshold.
    """

    def __init__(self, threshold: float, sample_size: int = 5):
        super().__init__(threshold)
        if sample_size < 1:
            raise ValueError("sample_size must be positive")
        self.sample_size = sample_size

    def verdict(self, assignment: Hashable) -> Verdict:
        answers = self._answers.get(assignment, ())
        if len(answers) < self.sample_size:
            return Verdict.UNDECIDED
        average = sum(s for _, s in answers) / len(answers)
        return Verdict.SIGNIFICANT if average >= self.threshold else Verdict.INSIGNIFICANT


class MajorityAggregator(Aggregator):
    """Significant iff a majority of ``sample_size`` answers individually pass."""

    def __init__(self, threshold: float, sample_size: int = 5):
        super().__init__(threshold)
        if sample_size < 1:
            raise ValueError("sample_size must be positive")
        self.sample_size = sample_size

    def verdict(self, assignment: Hashable) -> Verdict:
        answers = self._answers.get(assignment, ())
        if len(answers) < self.sample_size:
            return Verdict.UNDECIDED
        passing = sum(1 for _, s in answers if s >= self.threshold)
        return (
            Verdict.SIGNIFICANT
            if passing * 2 > len(answers)
            else Verdict.INSIGNIFICANT
        )


class TrustWeightedAggregator(Aggregator):
    """Average weighted by per-member trust scores (default trust 1.0)."""

    def __init__(
        self,
        threshold: float,
        sample_size: int = 5,
        trust: Optional[Mapping[str, float]] = None,
    ):
        super().__init__(threshold)
        if sample_size < 1:
            raise ValueError("sample_size must be positive")
        self.sample_size = sample_size
        self.trust: Dict[str, float] = dict(trust) if trust else {}

    def set_trust(self, member_id: str, trust: float) -> None:
        self.trust[member_id] = trust

    def verdict(self, assignment: Hashable) -> Verdict:
        answers = self._answers.get(assignment, ())
        if len(answers) < self.sample_size:
            return Verdict.UNDECIDED
        total_weight = 0.0
        weighted_sum = 0.0
        for member_id, support in answers:
            weight = self.trust.get(member_id, 1.0)
            total_weight += weight
            weighted_sum += weight * support
        if total_weight <= 0.0:
            return Verdict.UNDECIDED
        average = weighted_sum / total_weight
        return Verdict.SIGNIFICANT if average >= self.threshold else Verdict.INSIGNIFICANT
