"""Adaptive support-backend selection (the per-query cost model).

Support counting has two implementations with opposite scaling:

* the **reference scan** walks every transaction and runs the semantic
  ``leq`` cascade — cost per question is roughly *transactions × facts per
  transaction × query facts*, independent of the taxonomy;
* the **TID-bitset index** (:mod:`repro.crowd.tid_index`) pays a per-novel-
  query-fact *witness build* — component bitset unions bounded by the
  taxonomy closure size — after which repeated facts cost a few bitwise
  ANDs.  Cost per question is dominated by the novel-fact rate times the
  closure width, plus a one-off index compile per database version.

Neither wins everywhere: a two-transaction member DB is scanned faster
than a single witness union over a thousand-term taxonomy, while a
hundred-transaction history amortizes the index within a handful of
questions.  :func:`choose_backend` measures both regimes with shape
features that are all O(1) or O(|D|) to read — database size, taxonomy
width/depth from the compiled closure bitsets, and the candidate fan-out
the assignment generator reports for the active query — and picks the
cheaper backend *per (query, member database)*.

The decision is observable: every fresh choice bumps
``backend.choose.<backend>``, reuse of a cached decision bumps
``backend.decisions.cached``, and a process-wide override (see
:func:`repro.crowd.personal_db.set_support_backend`) bumps
``backend.overridden``.  ``docs/TUNING.md`` explains how to read them.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

from ..vocabulary.vocabulary import Vocabulary

#: A member database smaller than this many implication checks per question
#: is cheaper to scan than to index: below the threshold even one novel
#: witness union (∝ average closure size) costs more than the whole scan.
#: Calibrated with ``benchmarks/bench_report.py``'s micro suite — see
#: docs/PERFORMANCE.md for the calibration table.
SCAN_WORK_FACTOR = 4.0


class BackendFeatures(NamedTuple):
    """The cost-model inputs, all cheap to read (O(1) or one O(|D|) pass)."""

    #: number of transactions in the member database
    transactions: int
    #: total facts across all transactions
    total_facts: int
    #: element-taxonomy shape from the compiled closure bitsets
    taxonomy_terms: int
    taxonomy_height: int
    #: average reflexive descendant-closure size (the witness-union bound)
    avg_closure: float
    #: candidate fan-out reported by the assignment generator (successors
    #: per frontier node), or 0 when no query workload hint is available
    fan_out: float


class BackendDecision(NamedTuple):
    """A backend choice plus the evidence it was made on."""

    backend: str  # "tid" | "reference"
    features: BackendFeatures
    #: the two cost estimates the rule compared (scan, tid), for --stats-json
    scan_cost: float
    tid_cost: float


def collect_features(
    database, vocabulary: Vocabulary, fan_out: Optional[float] = None
) -> BackendFeatures:
    """Read the cost-model features for one member database."""
    transactions = len(database)
    total_facts = sum(len(t.facts) for t in database)
    terms, height, avg_closure = vocabulary.element_order.closure_stats()
    return BackendFeatures(
        transactions=transactions,
        total_facts=total_facts,
        taxonomy_terms=terms,
        taxonomy_height=height,
        avg_closure=avg_closure,
        fan_out=float(fan_out) if fan_out else 0.0,
    )


def choose_backend(
    database, vocabulary: Vocabulary, fan_out: Optional[float] = None
) -> BackendDecision:
    """Pick the cheaper support backend for ``(database, vocabulary)``.

    The model compares per-question cost estimates:

    * ``scan_cost`` — the reference scan's implication checks: every
      transaction tests every query fact against its facts (query size
      cancels out of the comparison, so it is left out of both sides);
    * ``tid_cost`` — the index's witness build for a novel fact, one
      closure-bounded union.  High candidate fan-out *lowers* the
      effective cost because sibling candidates share component terms and
      hit the per-fact witness memo, so the novel-fact rate drops.

    A small database under a wide taxonomy therefore scans; everything
    else indexes.
    """
    features = collect_features(database, vocabulary, fan_out)
    scan_cost = float(features.total_facts)
    # memo reuse discount: each unit of fan-out shares witness masks
    # across sibling candidates (diminishing, never below 25%)
    reuse = max(0.25, 1.0 / (1.0 + features.fan_out / 8.0))
    tid_cost = features.avg_closure * reuse
    backend = "reference" if scan_cost * SCAN_WORK_FACTOR < tid_cost else "tid"
    return BackendDecision(
        backend=backend,
        features=features,
        scan_cost=scan_cost,
        tid_cost=tid_cost,
    )
