"""Vertical TID-bitset support counting for personal databases.

Taxonomy-aware support (Section 2) is exactly itemset support under the
interned partial order — which is what vertical transaction-id (TID) list
mining was built for.  This module compiles one member's transaction
history into an inverted index:

* every *distinct* transaction fact (keyed by its interned subject /
  relation / object ids) maps to a **transaction bitmask** — bit ``i`` set
  iff transaction ``i`` contains that fact;
* per component position, every distinct term maps to a **fact-id bitset**
  over the distinct facts using it in that position.

``support(A)`` then runs without touching a single transaction object:

1. for each query fact ``f ∈ A``, the *witness facts* are the distinct
   facts whose subject/relation/object all specialize ``f``'s — three
   fact-id bitset unions (over the closure of each component) followed by
   two bitwise ANDs;
2. the witness facts' transaction masks are OR-ed into ``f``'s *witness
   mask* (the TIDs with a witness for ``f``), memoized per query fact;
3. ``A``'s supporting transactions are the AND of its facts' witness
   masks, and the hit count is one ``int.bit_count()``.

This replaces the reference ``O(|D|·|A|·|T|)`` per-transaction ``leq``
cascade with work proportional to the number of *distinct* facts touched,
and repeated structurally-similar questions (the normal crowd-mining
workload) hit the per-fact memo directly.

The index is version-stamped on the database and both vocabulary orders
and rebuilt lazily on the first query after any of them changes, so
``PersonalDatabase.add()`` invalidates correctly (see
``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..observability import count as _obs_count, span as _obs_span
from ..ontology.facts import Fact, FactSet
from ..vocabulary.terms import ANY_ELEMENT, ANY_RELATION_WILDCARD, Term
from ..vocabulary.vocabulary import Vocabulary


class TidIndex:
    """The inverted fact → transaction-bitmask index of one database.

    Built against a specific :class:`Vocabulary`; keyed on the database
    version and both order versions, rebuilding lazily when stale.
    """

    def __init__(self, database, vocabulary: Vocabulary):
        self._db = database
        self.vocabulary = vocabulary
        self._built_stamp: Optional[Tuple[int, int, int]] = None
        # distinct transaction facts, interned to local fact ids
        self._fact_ids: Dict[Fact, int] = {}
        self._fact_masks: List[int] = []
        # component position -> term -> fact-id bitset
        self._by_subject: Dict[Term, int] = {}
        self._by_relation: Dict[Term, int] = {}
        self._by_object: Dict[Term, int] = {}
        self._all_facts_mask = 0
        self._all_tx_mask = 0
        # query fact -> witness transaction mask (step 2 above)
        self._witness_cache: Dict[Fact, int] = {}

    # ---------------------------------------------------------- build / sync

    def _stamp(self) -> Tuple[int, int, int]:
        return (
            self._db.data_version,
            self.vocabulary.element_order.version,
            self.vocabulary.relation_order.version,
        )

    def _ensure_current(self) -> None:
        if self._built_stamp != self._stamp():
            self._rebuild()

    def _rebuild(self) -> None:
        with _obs_span("backend.compile"):
            self._do_rebuild()

    def _do_rebuild(self) -> None:
        self._fact_ids.clear()
        self._by_subject.clear()
        self._by_relation.clear()
        self._by_object.clear()
        self._witness_cache.clear()
        fact_masks: List[int] = []
        fact_ids = self._fact_ids
        for position, transaction in enumerate(self._db):
            tx_bit = 1 << position
            for fact in transaction.facts:
                fid = fact_ids.get(fact)
                if fid is None:
                    fid = len(fact_masks)
                    fact_ids[fact] = fid
                    fact_masks.append(0)
                    fact_bit = 1 << fid
                    self._by_subject[fact.subject] = (
                        self._by_subject.get(fact.subject, 0) | fact_bit
                    )
                    self._by_relation[fact.relation] = (
                        self._by_relation.get(fact.relation, 0) | fact_bit
                    )
                    self._by_object[fact.obj] = (
                        self._by_object.get(fact.obj, 0) | fact_bit
                    )
                fact_masks[fid] |= tx_bit
        self._fact_masks = fact_masks
        self._all_facts_mask = (1 << len(fact_masks)) - 1
        self._all_tx_mask = (1 << len(self._db)) - 1
        self._built_stamp = self._stamp()
        _obs_count("tid_index.rebuilds")

    # -------------------------------------------------------------- queries

    def _component_facts(self, term: Term, index: Dict[Term, int], wildcard: Term) -> int:
        """Fact-id bitset of distinct facts whose component specializes ``term``."""
        if term == wildcard:
            return self._all_facts_mask
        direct = index.get(term, 0)
        descendants = self.vocabulary.descendants(term)
        if len(descendants) == 1:
            # only the term itself (e.g. vocabulary terms outside the order)
            return direct
        bits = 0
        # iterate whichever side is smaller: the closure or the index keys
        if len(descendants) < len(index):
            for specialization in descendants:
                entry = index.get(specialization)
                if entry:
                    bits |= entry
        else:
            for key, entry in index.items():
                if key in descendants:
                    bits |= entry
        return bits

    def witness_mask(self, fact: Fact) -> int:
        """Transaction bitmask of the transactions containing a witness
        ``g ≥ fact`` (memoized per distinct query fact)."""
        cached = self._witness_cache.get(fact)
        if cached is not None:
            _obs_count("tid_index.witness.hits")
            return cached
        _obs_count("tid_index.witness.misses")
        candidates = self._component_facts(
            fact.subject, self._by_subject, ANY_ELEMENT
        )
        if candidates:
            candidates &= self._component_facts(
                fact.relation, self._by_relation, ANY_RELATION_WILDCARD
            )
        if candidates:
            candidates &= self._component_facts(
                fact.obj, self._by_object, ANY_ELEMENT
            )
        mask = 0
        fact_masks = self._fact_masks
        while candidates:
            low = candidates & -candidates
            mask |= fact_masks[low.bit_length() - 1]
            candidates ^= low
        self._witness_cache[fact] = mask
        return mask

    def supporting_mask(self, fact_set: FactSet) -> int:
        """Transaction bitmask of the transactions implying ``fact_set``."""
        self._ensure_current()
        _obs_count("tid_index.support.queries")
        mask = self._all_tx_mask
        for fact in fact_set:
            mask &= self.witness_mask(fact)
            if not mask:
                break
        return mask

    def hits(self, fact_set: FactSet) -> int:
        """``|{T ∈ D : fact_set ≤ T}|`` — one popcount over the AND."""
        return self.supporting_mask(fact_set).bit_count()
