"""Personal databases: the virtual transaction DBs of Section 2.

A crowd member's history is a bag of *transactions*, each a fact-set
describing one occasion.  The database is "virtual" — the real system never
sees it and can only probe it through questions — but the simulation needs a
concrete object to answer from, and the tests need Table 3's ``D_u1`` and
``D_u2`` to reproduce Example 2.7's support values exactly.

Support counting is the hottest loop of every simulated experiment (one
call per question per member).  Two implementations exist — the vertical
TID-bitset index (:mod:`repro.crowd.tid_index`) and the retained
per-transaction scan (:meth:`PersonalDatabase.support_reference`, also the
ground truth for the equivalence suite) — and by default the process runs
**adaptive**: each database picks the cheaper backend per query workload
through the cost model of :mod:`repro.crowd.backend`.
:func:`set_support_backend` still forces one backend process-wide for A/B
benchmarks (``"tid"`` / ``"reference"``) or restores ``"adaptive"``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..observability import count as _obs_count
from ..ontology.facts import FactLike, FactSet, parse_fact_set
from ..vocabulary.vocabulary import Vocabulary
from .backend import BackendDecision, choose_backend
from .tid_index import TidIndex

#: Cap on memoized hit counts per database.  Long multi-query sessions ask
#: about unboundedly many distinct fact-sets; beyond the cap the oldest
#: entries are evicted FIFO (the TID index keeps even cold queries cheap).
HITS_CACHE_MAX = 8192

#: Active support backend: "adaptive" (per-database cost model, the
#: default), "tid" (force the bitset index) or "reference" (force the scan).
_BACKEND = "adaptive"


def set_support_backend(name: str) -> str:
    """Select the process-wide support backend; returns the previous one.

    ``"adaptive"`` (the default) lets each database pick scan vs TID index
    through :func:`repro.crowd.backend.choose_backend`; ``"tid"`` and
    ``"reference"`` force one path everywhere — used by
    ``benchmarks/bench_report.py`` to verify all paths produce
    byte-identical mining results, and available to operators as an
    explicit override (see docs/TUNING.md).
    """
    global _BACKEND
    if name not in ("adaptive", "tid", "reference"):
        raise ValueError(f"unknown support backend {name!r}")
    previous = _BACKEND
    _BACKEND = name
    return previous


def support_backend() -> str:
    """The currently selected process-wide backend mode."""
    return _BACKEND


class Transaction:
    """One occasion in a personal history: an id plus a fact-set."""

    __slots__ = ("transaction_id", "facts")

    def __init__(self, transaction_id: str, facts: Union[FactSet, Iterable[FactLike]]):
        self.transaction_id = transaction_id
        self.facts = facts if isinstance(facts, FactSet) else FactSet(facts)

    def implies(self, fact_set: FactSet, vocabulary: Vocabulary) -> bool:
        """Does this transaction imply ``fact_set`` (``fact_set ≤ T``)?"""
        return self.facts.implies(fact_set, vocabulary)

    def __repr__(self) -> str:
        return f"Transaction({self.transaction_id!r}, {self.facts!r})"


class PersonalDatabase:
    """The (virtual) transaction database ``D_u`` of one crowd member."""

    def __init__(self, transactions: Iterable[Transaction] = ()):
        self._transactions: List[Transaction] = list(transactions)
        #: bumped on every mutation; the TID index and hit memo key on it
        self.data_version = 0
        # members are asked about many structurally-identical fact-sets
        # (cache replay, multiple traversal paths); memoize hit counts,
        # bounded by HITS_CACHE_MAX (FIFO eviction)
        self._hits_cache: dict = {}
        self._index: Optional[TidIndex] = None
        # candidate fan-out hint for the adaptive backend, pushed by the
        # engine from the assignment generator (None = no active workload)
        self.fan_out_hint: Optional[float] = None
        # memoized adaptive decision, keyed on everything it depends on
        self._decision: Optional[BackendDecision] = None
        self._decision_key: Optional[Tuple] = None

    @classmethod
    def from_fact_sets(
        cls, fact_sets: Sequence[Union[FactSet, Iterable[FactLike]]], prefix: str = "T"
    ) -> "PersonalDatabase":
        """Build from raw fact-sets, auto-numbering transaction ids."""
        return cls(
            Transaction(f"{prefix}{i}", fs) for i, fs in enumerate(fact_sets, start=1)
        )

    @classmethod
    def parse(cls, texts: Sequence[str], prefix: str = "T") -> "PersonalDatabase":
        """Build from the paper's dotted notation, one string per transaction."""
        return cls.from_fact_sets([parse_fact_set(t) for t in texts], prefix=prefix)

    def add(self, transaction: Transaction) -> None:
        self._transactions.append(transaction)
        self.data_version += 1
        self._hits_cache.clear()

    def __len__(self) -> int:
        return len(self._transactions)

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self._transactions)

    # -------------------------------------------------------------- support

    def tid_index(self, vocabulary: Vocabulary) -> TidIndex:
        """The (lazily rebuilt) TID-bitset index against ``vocabulary``."""
        index = self._index
        if index is None or index.vocabulary is not vocabulary:
            index = TidIndex(self, vocabulary)
            self._index = index
            self._hits_cache.clear()
        return index

    def support(self, fact_set: FactSet, vocabulary: Vocabulary) -> float:
        """``supp_u(A) = |{T : A ≤ T}| / |D_u|`` (Section 2).

        An empty database yields support 0; the empty fact-set has support 1
        (implied by every transaction).
        """
        if not self._transactions:
            return 0.0
        return self._hits(fact_set, vocabulary) / len(self._transactions)

    def support_reference(self, fact_set: FactSet, vocabulary: Vocabulary) -> float:
        """Unoptimized support via the per-transaction ``leq`` scan.

        Ground truth for ``tests/test_bitset_equivalence.py`` and the
        ``make bench`` reference path; no memoization, no index.
        """
        if not self._transactions:
            return 0.0
        return self._hits_reference(fact_set, vocabulary) / len(self._transactions)

    def set_workload_hint(self, fan_out: Optional[float]) -> None:
        """Declare the active query's candidate fan-out (engine-pushed).

        Changing the hint invalidates the memoized backend decision; the
        next support call re-runs the cost model against the new workload
        shape.
        """
        self.fan_out_hint = fan_out

    def active_backend(self, vocabulary: Vocabulary) -> str:
        """The backend this database will use: the override, or the
        adaptive cost-model decision (memoized per shape)."""
        if _BACKEND != "adaptive":
            _obs_count("backend.overridden")
            return _BACKEND
        key = (
            self.data_version,
            vocabulary.element_order.version,
            vocabulary.relation_order.version,
            self.fan_out_hint,
        )
        if self._decision is not None and self._decision_key == key:
            _obs_count("backend.decisions.cached")
            return self._decision.backend
        decision = choose_backend(self, vocabulary, fan_out=self.fan_out_hint)
        self._decision = decision
        self._decision_key = key
        if decision.backend == "tid":
            _obs_count("backend.choose.tid")
        else:
            _obs_count("backend.choose.reference")
        return decision.backend

    def backend_decision(self, vocabulary: Vocabulary) -> BackendDecision:
        """The full cost-model decision (features + cost estimates)."""
        self.active_backend(vocabulary)
        if self._decision is None:  # override active; evaluate for reporting
            self._decision = choose_backend(
                self, vocabulary, fan_out=self.fan_out_hint
            )
        return self._decision

    def _hits(self, fact_set: FactSet, vocabulary: Vocabulary) -> int:
        if self.active_backend(vocabulary) == "reference":
            _obs_count("support.count.reference")
            return self._hits_reference(fact_set, vocabulary)
        _obs_count("support.count.tid")
        cache = self._hits_cache
        key = (
            fact_set,
            self.data_version,
            vocabulary.element_order.version,
            vocabulary.relation_order.version,
        )
        cached = cache.get(key)
        if cached is not None:
            return cached
        hits = self.tid_index(vocabulary).hits(fact_set)
        if len(cache) >= HITS_CACHE_MAX:
            cache.pop(next(iter(cache)))
        cache[key] = hits
        return hits

    def _hits_reference(self, fact_set: FactSet, vocabulary: Vocabulary) -> int:
        return sum(1 for t in self._transactions if t.implies(fact_set, vocabulary))

    def support_fraction(self, fact_set: FactSet, vocabulary: Vocabulary) -> Fraction:
        """Exact rational support, for tests that assert paper values."""
        if not self._transactions:
            return Fraction(0)
        return Fraction(self._hits(fact_set, vocabulary), len(self._transactions))

    def supporting_transactions(
        self, fact_set: FactSet, vocabulary: Vocabulary
    ) -> List[Transaction]:
        """The transactions that imply ``fact_set``."""
        if self.active_backend(vocabulary) == "reference":
            return [t for t in self._transactions if t.implies(fact_set, vocabulary)]
        mask = self.tid_index(vocabulary).supporting_mask(fact_set)
        out: List[Transaction] = []
        transactions = self._transactions
        while mask:
            low = mask & -mask
            out.append(transactions[low.bit_length() - 1])
            mask ^= low
        return out

    def __repr__(self) -> str:
        return f"PersonalDatabase({len(self._transactions)} transactions)"
