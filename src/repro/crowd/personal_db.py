"""Personal databases: the virtual transaction DBs of Section 2.

A crowd member's history is a bag of *transactions*, each a fact-set
describing one occasion.  The database is "virtual" — the real system never
sees it and can only probe it through questions — but the simulation needs a
concrete object to answer from, and the tests need Table 3's ``D_u1`` and
``D_u2`` to reproduce Example 2.7's support values exactly.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Iterator, List, Sequence, Union

from ..ontology.facts import FactLike, FactSet, parse_fact_set
from ..vocabulary.vocabulary import Vocabulary


class Transaction:
    """One occasion in a personal history: an id plus a fact-set."""

    __slots__ = ("transaction_id", "facts")

    def __init__(self, transaction_id: str, facts: Union[FactSet, Iterable[FactLike]]):
        self.transaction_id = transaction_id
        self.facts = facts if isinstance(facts, FactSet) else FactSet(facts)

    def implies(self, fact_set: FactSet, vocabulary: Vocabulary) -> bool:
        """Does this transaction imply ``fact_set`` (``fact_set ≤ T``)?"""
        return self.facts.implies(fact_set, vocabulary)

    def __repr__(self) -> str:
        return f"Transaction({self.transaction_id!r}, {self.facts!r})"


class PersonalDatabase:
    """The (virtual) transaction database ``D_u`` of one crowd member."""

    def __init__(self, transactions: Iterable[Transaction] = ()):
        self._transactions: List[Transaction] = list(transactions)
        # members are asked about many structurally-identical fact-sets
        # (cache replay, multiple traversal paths); memoize hit counts
        self._hits_cache: dict = {}

    @classmethod
    def from_fact_sets(
        cls, fact_sets: Sequence[Union[FactSet, Iterable[FactLike]]], prefix: str = "T"
    ) -> "PersonalDatabase":
        """Build from raw fact-sets, auto-numbering transaction ids."""
        return cls(
            Transaction(f"{prefix}{i}", fs) for i, fs in enumerate(fact_sets, start=1)
        )

    @classmethod
    def parse(cls, texts: Sequence[str], prefix: str = "T") -> "PersonalDatabase":
        """Build from the paper's dotted notation, one string per transaction."""
        return cls.from_fact_sets([parse_fact_set(t) for t in texts], prefix=prefix)

    def add(self, transaction: Transaction) -> None:
        self._transactions.append(transaction)
        self._hits_cache.clear()

    def __len__(self) -> int:
        return len(self._transactions)

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self._transactions)

    def support(self, fact_set: FactSet, vocabulary: Vocabulary) -> float:
        """``supp_u(A) = |{T : A ≤ T}| / |D_u|`` (Section 2).

        An empty database yields support 0; the empty fact-set has support 1
        (implied by every transaction).
        """
        if not self._transactions:
            return 0.0
        return self._hits(fact_set, vocabulary) / len(self._transactions)

    def _hits(self, fact_set: FactSet, vocabulary: Vocabulary) -> int:
        cached = self._hits_cache.get(fact_set)
        if cached is not None:
            return cached
        hits = sum(
            1 for t in self._transactions if t.implies(fact_set, vocabulary)
        )
        self._hits_cache[fact_set] = hits
        return hits

    def support_fraction(self, fact_set: FactSet, vocabulary: Vocabulary) -> Fraction:
        """Exact rational support, for tests that assert paper values."""
        if not self._transactions:
            return Fraction(0)
        return Fraction(self._hits(fact_set, vocabulary), len(self._transactions))

    def supporting_transactions(
        self, fact_set: FactSet, vocabulary: Vocabulary
    ) -> List[Transaction]:
        """The transactions that imply ``fact_set``."""
        return [t for t in self._transactions if t.implies(fact_set, vocabulary)]

    def __repr__(self) -> str:
        return f"PersonalDatabase({len(self._transactions)} transactions)"
