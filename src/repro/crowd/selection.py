"""Crowd member selection: consistency checks and spammer filtering.

Section 4.2 proposes exploiting support monotonicity to vet members: for a
cooperative member, whenever ``φ ≤ φ'`` the reported support of ``φ`` must
be at least that of ``φ'`` (a habit cannot be rarer than its
specialization).  Spammers answering at random violate this constantly.

:func:`consistency_violation_ratio` measures a member's violation rate over
the comparable pairs among their answers (with a tolerance for honest
noise), and :func:`filter_members` flags members exceeding a cutoff.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Sequence, Set, Tuple


def consistency_violation_ratio(
    answers: Sequence[Tuple[Hashable, float]],
    leq,
    tolerance: float = 0.05,
) -> float:
    """Fraction of comparable answer pairs violating support monotonicity.

    ``answers`` is a member's (assignment, support) history; ``leq(a, b)``
    is the assignment order.  Returns 0.0 when no pair is comparable.
    """
    if tolerance < 0.0:
        raise ValueError("tolerance must be non-negative")
    comparable = 0
    violations = 0
    for i, (a, support_a) in enumerate(answers):
        for b, support_b in answers[i + 1:]:
            if a == b:
                continue
            if leq(a, b):
                comparable += 1
                if support_a + tolerance < support_b:
                    violations += 1
            elif leq(b, a):
                comparable += 1
                if support_b + tolerance < support_a:
                    violations += 1
    if comparable == 0:
        return 0.0
    return violations / comparable


def filter_members(
    answers_by_member: Mapping[str, Sequence[Tuple[Hashable, float]]],
    leq,
    tolerance: float = 0.05,
    max_violation_ratio: float = 0.3,
) -> Set[str]:
    """Member ids whose violation ratio exceeds ``max_violation_ratio``."""
    flagged: Set[str] = set()
    for member_id, answers in answers_by_member.items():
        ratio = consistency_violation_ratio(answers, leq, tolerance=tolerance)
        if ratio > max_violation_ratio:
            flagged.add(member_id)
    return flagged


def trust_scores(
    answers_by_member: Mapping[str, Sequence[Tuple[Hashable, float]]],
    leq,
    tolerance: float = 0.05,
) -> Dict[str, float]:
    """Per-member trust = 1 - violation ratio (for TrustWeightedAggregator)."""
    return {
        member_id: 1.0 - consistency_violation_ratio(answers, leq, tolerance=tolerance)
        for member_id, answers in answers_by_member.items()
    }
