"""Crowd population simulation.

The real OASSIS deployment recruited 248 members via social networks; this
module builds populations whose *answer statistics* reproduce the paper's:
personal databases are generated so that planted patterns reach a target
average support across the crowd, with per-member variation, plus noise
facts that make transactions realistically cluttered.

The ground truth is a list of :class:`PlantedPattern` objects.  Because a
pattern's generalizations are automatically at least as frequent
(Observation 4.4 holds on real transaction data by construction), planting
only the intended MSPs yields a consistent significance landscape.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence

from ..ontology.facts import Fact, FactSet
from ..vocabulary.vocabulary import Vocabulary
from .member import CrowdMember
from .personal_db import PersonalDatabase, Transaction


class PlantedPattern:
    """A ground-truth pattern with its intended average support."""

    def __init__(self, fact_set: FactSet, mean_support: float, spread: float = 0.1):
        if not 0.0 <= mean_support <= 1.0:
            raise ValueError(f"mean_support must be in [0, 1], got {mean_support}")
        if spread < 0.0:
            raise ValueError("spread must be non-negative")
        self.fact_set = fact_set
        self.mean_support = mean_support
        self.spread = spread

    def member_probability(self, rng: random.Random) -> float:
        """This member's personal inclusion probability for the pattern."""
        value = rng.gauss(self.mean_support, self.spread)
        return min(1.0, max(0.0, value))

    def __repr__(self) -> str:
        return f"PlantedPattern({self.fact_set!r}, mean={self.mean_support})"


class CrowdSimulator:
    """Builds crowd populations from planted ground truth."""

    def __init__(
        self,
        vocabulary: Vocabulary,
        patterns: Sequence[PlantedPattern],
        noise_facts: Sequence[Fact] = (),
        seed: int = 0,
    ):
        self.vocabulary = vocabulary
        self.patterns = list(patterns)
        self.noise_facts = list(noise_facts)
        self.seed = seed

    def build_database(
        self,
        rng: random.Random,
        transactions: int = 30,
        noise_facts_per_transaction: int = 1,
    ) -> PersonalDatabase:
        """One member's personal database."""
        probabilities = [p.member_probability(rng) for p in self.patterns]
        database = PersonalDatabase()
        for index in range(transactions):
            facts: set = set()
            for pattern, probability in zip(self.patterns, probabilities):
                if rng.random() < probability:
                    facts.update(pattern.fact_set)
            for _ in range(noise_facts_per_transaction):
                if self.noise_facts:
                    facts.add(rng.choice(self.noise_facts))
            database.add(Transaction(f"T{index + 1}", FactSet(facts)))
        return database

    def build_population(
        self,
        size: int,
        transactions: int = 30,
        noise_facts_per_transaction: int = 1,
        noise: float = 0.0,
        quantize: bool = False,
        specialization_ratio: float = 0.0,
        pruning_ratio: float = 0.0,
        irrelevant_values: Iterable = (),
        max_questions: Optional[int] = None,
        more_tip_ratio: float = 0.0,
    ) -> List[CrowdMember]:
        """A population of ``size`` members with independent databases."""
        members: List[CrowdMember] = []
        irrelevant = tuple(irrelevant_values)
        for index in range(size):
            rng = random.Random(f"{self.seed}:{index}")
            database = self.build_database(
                rng,
                transactions=transactions,
                noise_facts_per_transaction=noise_facts_per_transaction,
            )
            members.append(
                CrowdMember(
                    member_id=f"u{index + 1}",
                    database=database,
                    vocabulary=self.vocabulary,
                    noise=noise,
                    quantize=quantize,
                    specialization_ratio=specialization_ratio,
                    pruning_ratio=pruning_ratio,
                    irrelevant_values=irrelevant,
                    rng=random.Random(f"{self.seed}:{index}:behaviour"),
                    max_questions=max_questions,
                    more_tip_ratio=more_tip_ratio,
                )
            )
        return members

    def expected_support(self, fact_set: FactSet) -> float:
        """Analytic average support of ``fact_set`` under the ground truth.

        Patterns are planted independently, so the expected support of a
        fact-set implied by a single pattern is that pattern's mean; for
        fact-sets implied only by combinations this underestimates (it
        ignores co-occurrence through unions), which mirrors reality: the
        crowd's measured support is what the algorithms must rely on.
        """
        best = 0.0
        for pattern in self.patterns:
            if pattern.fact_set.implies(fact_set, self.vocabulary):
                best = max(best, pattern.mean_support)
        return best
