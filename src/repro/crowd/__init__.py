"""Crowd substrate: personal DBs, questions, members, aggregation, caching."""

from .backend import BackendDecision, BackendFeatures, choose_backend
from .aggregator import (
    Aggregator,
    FixedSampleAggregator,
    MajorityAggregator,
    TrustWeightedAggregator,
    Verdict,
)
from .cache import CrowdCache
from .journal import (
    AppendLog,
    DurableCrowdCache,
    JournalRecord,
    replay_journal,
    replay_log,
)
from .member import CrowdMember, OracleMember, SpammerMember
from .personal_db import (
    PersonalDatabase,
    Transaction,
    set_support_backend,
    support_backend,
)
from .questions import (
    FREQUENCY_SCALE,
    Answer,
    ConcreteQuestion,
    NoneOfTheseAnswer,
    PruneAnswer,
    Question,
    QuestionKind,
    SpecializationAnswer,
    SpecializationQuestion,
    SupportAnswer,
    frequency_to_support,
    quantize_support,
    support_to_frequency,
)
from .selection import consistency_violation_ratio, filter_members, trust_scores
from .simulation import CrowdSimulator, PlantedPattern

__all__ = [
    "FREQUENCY_SCALE",
    "Aggregator",
    "Answer",
    "BackendDecision",
    "BackendFeatures",
    "ConcreteQuestion",
    "CrowdCache",
    "CrowdMember",
    "CrowdSimulator",
    "DurableCrowdCache",
    "FixedSampleAggregator",
    "AppendLog",
    "JournalRecord",
    "MajorityAggregator",
    "NoneOfTheseAnswer",
    "OracleMember",
    "PersonalDatabase",
    "PlantedPattern",
    "PruneAnswer",
    "Question",
    "QuestionKind",
    "SpammerMember",
    "SpecializationAnswer",
    "SpecializationQuestion",
    "SupportAnswer",
    "Transaction",
    "TrustWeightedAggregator",
    "Verdict",
    "choose_backend",
    "consistency_violation_ratio",
    "filter_members",
    "frequency_to_support",
    "quantize_support",
    "replay_journal",
    "replay_log",
    "set_support_backend",
    "support_backend",
    "support_to_frequency",
    "trust_scores",
]
