"""Questions posed to the crowd and the answers they produce.

Two question types (Section 2):

* :class:`ConcreteQuestion` — "How often do you ⟨fact-set⟩?"  Answered with
  a support value, in the UI via the five-point frequency scale.
* :class:`SpecializationQuestion` — "What type of X do you ...?"  Answered
  with a more specific assignment (chosen from offered candidates) and its
  support, or "none of these" (which classifies *all* offered candidates as
  support 0 at once — the Section 6.2 optimization).

A third interaction, :class:`PruneAnswer`, models the user-guided pruning
click: the member declares a value irrelevant, zeroing every assignment that
involves it or a specialization of it.
"""

from __future__ import annotations

import enum
from typing import Sequence, Tuple

from ..assignments.assignment import Assignment
from ..ontology.facts import FactSet
from ..vocabulary.terms import Term

#: The UI's five-point frequency scale (Section 6.2): answer label ->
#: interpreted support value.
FREQUENCY_SCALE: Tuple[Tuple[str, float], ...] = (
    ("never", 0.0),
    ("rarely", 0.25),
    ("sometimes", 0.5),
    ("often", 0.75),
    ("very often", 1.0),
)


def frequency_to_support(label: str) -> float:
    """Interpret a frequency label as a support value."""
    for name, value in FREQUENCY_SCALE:
        if name == label:
            return value
    raise ValueError(f"unknown frequency label {label!r}")


def support_to_frequency(support: float) -> str:
    """Quantize a support value to the nearest frequency label."""
    if not 0.0 <= support <= 1.0:
        raise ValueError(f"support must be in [0, 1], got {support}")
    best_label, best_distance = FREQUENCY_SCALE[0][0], abs(support)
    for name, value in FREQUENCY_SCALE:
        distance = abs(support - value)
        if distance < best_distance:
            best_label, best_distance = name, distance
    return best_label


def quantize_support(support: float) -> float:
    """Snap ``support`` to the five-point scale (what the UI records)."""
    return frequency_to_support(support_to_frequency(support))


class QuestionKind(enum.Enum):
    CONCRETE = "concrete"
    SPECIALIZATION = "specialization"


class Question:
    """Base class: a question about one assignment's fact-set."""

    kind: QuestionKind

    def __init__(self, assignment: Assignment, fact_set: FactSet):
        self.assignment = assignment
        self.fact_set = fact_set

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.assignment!r})"


class ConcreteQuestion(Question):
    """Retrieve the member's support for the fact-set."""

    kind = QuestionKind.CONCRETE


class SpecializationQuestion(Question):
    """Ask the member to pick (and rate) a more specific assignment.

    ``candidates`` are the successor assignments the system can offer (the
    UI's auto-completion suggestions).
    """

    kind = QuestionKind.SPECIALIZATION

    def __init__(
        self,
        assignment: Assignment,
        fact_set: FactSet,
        candidates: Sequence[Assignment],
    ):
        super().__init__(assignment, fact_set)
        self.candidates = list(candidates)


class Answer:
    """Base class for crowd answers."""


class SupportAnswer(Answer):
    """A plain support value for the asked assignment."""

    def __init__(self, support: float):
        if not 0.0 <= support <= 1.0:
            raise ValueError(f"support must be in [0, 1], got {support}")
        self.support = support

    def __repr__(self) -> str:
        return f"SupportAnswer({self.support})"


class SpecializationAnswer(Answer):
    """The member chose a more specific assignment and rated it."""

    def __init__(self, chosen: Assignment, support: float):
        if not 0.0 <= support <= 1.0:
            raise ValueError(f"support must be in [0, 1], got {support}")
        self.chosen = chosen
        self.support = support

    def __repr__(self) -> str:
        return f"SpecializationAnswer({self.chosen!r}, {self.support})"


class NoneOfTheseAnswer(Answer):
    """No offered specialization is relevant: all candidates get support 0."""

    def __init__(self, candidates: Sequence[Assignment]):
        self.candidates = list(candidates)

    def __repr__(self) -> str:
        return f"NoneOfTheseAnswer({len(self.candidates)} candidates)"


class PruneAnswer(Answer):
    """User-guided pruning: ``value`` (and its specializations) is irrelevant."""

    def __init__(self, value: Term):
        self.value = value

    def __repr__(self) -> str:
        return f"PruneAnswer({self.value!r})"
