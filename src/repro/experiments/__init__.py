"""Experiment harnesses regenerating every table and figure of the paper."""

from . import ablations, distribution, figure4, figure4f, figure5, multiplicities, shape
from .figure4 import DomainRun, run_domain
from .figure4f import render_figure4f, run_figure4f
from .figure5 import render_figure5, run_figure5
from .reporting import format_table

__all__ = [
    "DomainRun",
    "ablations",
    "distribution",
    "figure4",
    "figure4f",
    "figure5",
    "format_table",
    "multiplicities",
    "render_figure4f",
    "render_figure5",
    "run_domain",
    "run_figure4f",
    "run_figure5",
    "shape",
]
