"""Figure 4a–4e: crowd statistics and pace of data collection.

For each domain (travel / culinary / self-treatment):

* run the multi-user algorithm over a simulated crowd at threshold 0.2,
  recording every answer in a :class:`CrowdCache`;
* replay the cached answers at thresholds 0.3 / 0.4 / 0.5, counting only
  the answers the algorithm uses at each threshold (Section 6.3);
* report #MSPs, #valid MSPs, #questions and baseline% per threshold
  (Figures 4a–4c), where the baseline algorithm asks ``sample_size``
  questions for every valid assignment the run generated;
* extract the pace-of-collection series (questions vs. % classified /
  % MSPs discovered) from the threshold-0.2 trace (Figures 4d–4e).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..assignments.generator import QueryAssignmentSpace
from ..crowd.aggregator import FixedSampleAggregator
from ..crowd.cache import CrowdCache
from ..datasets.base import DomainDataset
from ..engine.adapters import MemberUser
from ..engine.config import EngineConfig
from ..engine.engine import OassisEngine
from ..mining.multiuser import MultiUserMiner
from ..mining.trace import MiningTrace
from .reporting import format_table


class ThresholdRow:
    """One bar group of Figures 4a–4c."""

    def __init__(
        self,
        threshold: float,
        msps: int,
        valid_msps: int,
        questions: int,
        baseline_questions: int,
    ):
        self.threshold = threshold
        self.msps = msps
        self.valid_msps = valid_msps
        self.questions = questions
        self.baseline_questions = baseline_questions

    @property
    def baseline_percent(self) -> float:
        if self.baseline_questions == 0:
            return 0.0
        return 100.0 * self.questions / self.baseline_questions

    def as_tuple(self) -> Tuple[float, int, int, int, float]:
        return (
            self.threshold,
            self.msps,
            self.valid_msps,
            self.questions,
            self.baseline_percent,
        )


class DomainRun:
    """The full Figure 4 data for one domain."""

    def __init__(
        self,
        name: str,
        rows: Sequence[ThresholdRow],
        trace: MiningTrace,
        total_msps: int,
        total_valid_msps: int,
        total_classified_valid: int,
        answer_stats: Dict[str, int],
    ):
        self.name = name
        self.rows = list(rows)
        self.trace = trace
        self.total_msps = total_msps
        self.total_valid_msps = total_valid_msps
        self.total_classified_valid = total_classified_valid
        self.answer_stats = dict(answer_stats)

    def crowd_stats_table(self) -> str:
        headers = ["threshold", "#MSPs", "#valid", "#questions", "baseline%"]
        rows = [
            (r.threshold, r.msps, r.valid_msps, r.questions, f"{r.baseline_percent:.1f}%")
            for r in self.rows
        ]
        return format_table(headers, rows, title=f"Crowd statistics — {self.name}")

    def pace_series(
        self, fractions: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0)
    ) -> Dict[str, List[Tuple[float, Optional[int]]]]:
        """Questions needed to reach each fraction of the three series."""
        series: Dict[str, List[Tuple[float, Optional[int]]]] = {
            "classified assignments": [],
            "valid MSPs": [],
            "all MSPs": [],
        }
        for fraction in fractions:
            series["classified assignments"].append(
                (fraction, self._questions_to(fraction, "classified_valid",
                                              self.total_classified_valid))
            )
            series["valid MSPs"].append(
                (fraction, self._questions_to(fraction, "valid_msps_found",
                                              self.total_valid_msps))
            )
            series["all MSPs"].append(
                (fraction, self._questions_to(fraction, "msps_found", self.total_msps))
            )
        return series

    def _questions_to(self, fraction: float, field: str, total: int) -> Optional[int]:
        if total == 0:
            return 0
        needed = fraction * total
        for point in self.trace.points:
            if getattr(point, field) >= needed:
                return point.questions
        return None

    def pace_table(self, fractions: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0)) -> str:
        series = self.pace_series(fractions)
        headers = ["% discovered"] + [f"{f:.0%}" for f in fractions]
        rows = []
        for label, points in series.items():
            rows.append(
                [label] + ["-" if q is None else str(q) for _, q in points]
            )
        return format_table(headers, rows, title=f"Pace of data collection — {self.name}")


def run_domain(
    dataset: DomainDataset,
    thresholds: Sequence[float] = (0.2, 0.3, 0.4, 0.5),
    crowd_size: int = 25,
    sample_size: int = 5,
    seed: int = 0,
    max_values_per_var: int = 2,
    max_more_facts: int = 1,
    transactions: int = 40,
) -> DomainRun:
    """Execute the Figure 4 protocol for one domain."""
    base_threshold = min(thresholds)
    engine = OassisEngine(
        dataset.ontology,
        config=EngineConfig(
            max_values_per_var=max_values_per_var,
            max_more_facts=max_more_facts,
        ),
    )
    query = engine.parse(dataset.query(base_threshold))
    # MORE extensions enter via crowd proposals (the "more" button), not a
    # pre-enumerated pool — enumerating the pool at every node would multiply
    # the question load the way the paper's UI does not
    space = engine.build_space(query)
    crowd = dataset.build_crowd(
        size=crowd_size, seed=seed, transactions=transactions
    )
    cache = CrowdCache()
    aggregator = FixedSampleAggregator(base_threshold, sample_size=sample_size)
    users = [MemberUser(member, space) for member in crowd]
    valid_base = space.valid_base_assignments()
    miner = MultiUserMiner(
        space,
        users,
        aggregator,
        cache=cache,
        valid_nodes=valid_base,
    )
    base_result = miner.run()

    rows: List[ThresholdRow] = []
    member_ids = [m.member_id for m in crowd]
    for threshold in sorted(thresholds):
        if threshold == base_threshold:
            result = base_result
            run_space = space
        else:
            _, result = engine.replay(
                query,
                member_ids,
                cache,
                threshold=threshold,
                sample_size=sample_size,
                space=space,
            )
            run_space = space
        baseline = sample_size * _generated_valid_count(run_space)
        rows.append(
            ThresholdRow(
                threshold,
                len(result.msps),
                len(result.valid_msps),
                result.questions,
                baseline,
            )
        )

    answer_stats = base_result.stats.as_dict()
    classified_valid_total = (
        base_result.trace.points[-1].classified_valid if base_result.trace.points else 0
    )
    return DomainRun(
        dataset.name,
        rows,
        base_result.trace,
        total_msps=len(base_result.msps),
        total_valid_msps=len(base_result.valid_msps),
        total_classified_valid=classified_valid_total,
        answer_stats=answer_stats,
    )


def _generated_valid_count(space: QueryAssignmentSpace) -> int:
    """Valid assignments among the nodes the run generated.

    The paper feeds the baseline only the assignments-with-multiplicities
    the real algorithm generated, "for fairness"; we count validity over
    the base (multiplicity-1) assignments plus every node materialized by
    the lazy generator during the run.
    """
    generated = set(space.valid_base_assignments())
    generated.update(space._succ_cache)
    for successors in space._succ_cache.values():
        generated.update(successors)
    return sum(1 for node in generated if space.is_valid(node))
