"""Section 6.4 (text): effect of the DAG's width and depth.

The paper varied the synthetic DAG's width between 500 and 2000 and its
depth between 4 and 7 and observed "no significant effect on the observed
trends".  This harness reruns the vertical/horizontal comparison across
those shapes so the claim can be checked: the vertical-vs-horizontal
ordering at the early milestones should hold for every shape.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..synth.dag_gen import generate_dag
from ..synth.msp_placement import place_msps
from .figure5 import run_single_trial
from .reporting import average_ignoring_none, format_table

ShapeKey = Tuple[int, int]  # (width, depth)


def run_shape_sweep(
    widths: Sequence[int] = (500, 1000, 2000),
    depths: Sequence[int] = (4, 7),
    msp_fraction: float = 0.02,
    trials: int = 3,
    seed: int = 0,
    milestone: float = 0.5,
    algorithms: Sequence[str] = ("vertical", "horizontal"),
) -> Dict[ShapeKey, Dict[str, Optional[float]]]:
    """Avg questions to reach ``milestone`` of valid MSPs, per shape/alg."""
    results: Dict[ShapeKey, Dict[str, Optional[float]]] = {}
    for width in widths:
        for depth in depths:
            collected: Dict[str, List[Optional[int]]] = {a: [] for a in algorithms}
            for trial in range(trials):
                dag = generate_dag(width=width, depth=depth, seed=seed + trial)
                msp_count = max(1, round(msp_fraction * len(dag)))
                planted = place_msps(
                    dag, msp_count, policy="uniform", valid_only=True, seed=seed + trial
                )
                for algorithm in algorithms:
                    milestones = run_single_trial(
                        dag,
                        planted,
                        algorithm,
                        seed=seed + trial,
                        milestones=(milestone,),
                    )
                    collected[algorithm].append(milestones[milestone])
            results[(width, depth)] = {
                a: average_ignoring_none(collected[a]) for a in algorithms
            }
    return results


def render_shape_sweep(results: Dict[ShapeKey, Dict[str, Optional[float]]]) -> str:
    algorithms = sorted(next(iter(results.values())).keys())
    headers = ["width", "depth"] + list(algorithms)
    rows = []
    for (width, depth), per_algorithm in sorted(results.items()):
        row: List[object] = [width, depth]
        for algorithm in algorithms:
            value = per_algorithm[algorithm]
            row.append("-" if value is None else f"{value:.0f}")
        rows.append(row)
    return format_table(
        headers,
        rows,
        title="DAG shape sweep — questions to reach 50% of valid MSPs",
    )
