"""Section 6.4 (text): MSPs with multiplicities and lazy generation.

Two claims to reproduce:

1. the number of questions depends on the number of MSPs, not on whether
   they carry multiplicities (value-set sizes 1–4);
2. lazy assignment generation materializes under ~1% of the nodes an eager
   algorithm would create for the same maximal multiplicity.

The experiment runs on a synthetic *query* space (a two-taxonomy ontology
and a ``$x+ servedWith $y`` query), because multiplicities only exist
there, not in the abstract integer DAGs of Figure 5.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from ..assignments.assignment import Assignment
from ..assignments.generator import QueryAssignmentSpace
from ..mining.vertical import vertical_mine
from ..oassisql.parser import parse_query
from ..ontology.facts import Fact
from ..ontology.graph import Ontology
from ..vocabulary.terms import Element
from .reporting import format_table

QUERY_TEMPLATE = """
SELECT FACT-SETS
WHERE
  $x subClassOf* Food .
  $y subClassOf* Drink
SATISFYING
  $x+ servedWith $y
WITH SUPPORT = {threshold}
"""


def build_synthetic_ontology(foods: int = 16, drinks: int = 8) -> Ontology:
    """A flat two-taxonomy ontology: F1..Fn under Food, D1..Dm under Drink."""
    ontology = Ontology()
    ontology.add(Fact("Food", "subClassOf", "Consumable"))
    ontology.add(Fact("Drink", "subClassOf", "Consumable"))
    for index in range(1, foods + 1):
        ontology.add(Fact(f"F{index}", "subClassOf", "Food"))
    for index in range(1, drinks + 1):
        ontology.add(Fact(f"D{index}", "subClassOf", "Drink"))
    ontology.vocabulary.add_relation("servedWith")
    return ontology


def build_space(
    ontology: Ontology, threshold: float = 0.5, max_values: int = 4
) -> QueryAssignmentSpace:
    query = parse_query(QUERY_TEMPLATE.format(threshold=threshold))
    return QueryAssignmentSpace(
        ontology, query, max_values_per_var=max_values, max_more_facts=0
    )


def plant_targets(
    space: QueryAssignmentSpace,
    count: int,
    max_set_size: int,
    foods: int,
    drinks: int,
    seed: int = 0,
) -> List[Assignment]:
    """Random pairwise-incomparable target MSPs with bounded value sets."""
    rng = random.Random(seed)
    vocabulary = space.vocabulary
    targets: List[Assignment] = []
    attempts = 0
    while len(targets) < count and attempts < 200 * count:
        attempts += 1
        size = rng.randint(1, max_set_size)
        food_set = {
            Element(f"F{rng.randint(1, foods)}") for _ in range(size)
        }
        drink = Element(f"D{rng.randint(1, drinks)}")
        candidate = Assignment.make(
            vocabulary, {"x": food_set, "y": {drink}}
        )
        comparable = any(
            candidate.leq(t, vocabulary) or t.leq(candidate, vocabulary)
            for t in targets
        )
        if not comparable:
            targets.append(candidate)
    return targets


def count_generated_nodes(space: QueryAssignmentSpace) -> int:
    """Nodes the lazy generator actually materialized during a run."""
    generated = set(space.roots())
    generated.update(space._succ_cache)
    for successors in space._succ_cache.values():
        generated.update(successors)
    return len(generated)


def count_eager_nodes(foods: int, drinks: int, max_set_size: int) -> int:
    """Nodes an eager generator would create up to the same multiplicity.

    With a flat food taxonomy the candidate x-values are ``Food`` or any
    non-empty set of up to ``max_set_size`` leaves (all antichains), and the
    y-values are ``Drink`` or a leaf: counting, not materializing.
    """
    x_options = 1  # {Food}
    for k in range(1, max_set_size + 1):
        x_options += _choose(foods, k)
    y_options = drinks + 1  # each leaf, or {Drink}
    return x_options * y_options


def _choose(n: int, k: int) -> int:
    if k > n:
        return 0
    result = 1
    for i in range(k):
        result = result * (n - i) // (i + 1)
    return result


def run_multiplicities_experiment(
    msp_counts: Sequence[int] = (4, 8),
    max_set_sizes: Sequence[int] = (1, 2, 4),
    foods: int = 16,
    drinks: int = 8,
    threshold: float = 0.5,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Grid over (#MSPs, max multiplicity size): questions + lazy ratio."""
    rows: List[Dict[str, object]] = []
    ontology = build_synthetic_ontology(foods, drinks)
    for count in msp_counts:
        for max_size in max_set_sizes:
            space = build_space(ontology, threshold, max_values=max(max_set_sizes))
            targets = plant_targets(space, count, max_size, foods, drinks, seed=seed)

            def support(node: Assignment) -> float:
                return (
                    1.0
                    if any(node.leq(t, space.vocabulary) for t in targets)
                    else 0.0
                )

            result = vertical_mine(space, support, threshold, target_msps=targets)
            lazy = count_generated_nodes(space)
            eager = count_eager_nodes(foods, drinks, max(max_set_sizes))
            rows.append(
                {
                    "msps": count,
                    "max_set_size": max_size,
                    "questions": result.questions,
                    "lazy_nodes": lazy,
                    "eager_nodes": eager,
                    "lazy_percent": 100.0 * lazy / eager,
                    "found_msps": len(result.msps),
                }
            )
    return rows


def render_multiplicities(rows: List[Dict[str, object]]) -> str:
    headers = [
        "#MSPs",
        "max |set|",
        "questions",
        "lazy nodes",
        "eager nodes",
        "lazy %",
    ]
    table_rows = [
        (
            r["msps"],
            r["max_set_size"],
            r["questions"],
            r["lazy_nodes"],
            r["eager_nodes"],
            f"{r['lazy_percent']:.2f}%",
        )
        for r in rows
    ]
    return format_table(
        headers, table_rows, title="Multiplicities — lazy vs eager generation"
    )
