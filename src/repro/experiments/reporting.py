"""Plain-text reporting helpers for the experiment harnesses.

The benchmarks print the same rows/series the paper's figures chart, as
aligned text tables; EXPERIMENTS.md records the paper-vs-measured
comparison produced from these.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: Optional[str] = None
) -> str:
    """Render an aligned text table."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def percentage_milestones(
    fractions: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0)
) -> List[float]:
    """The default X-axis milestones of the pace plots."""
    return list(fractions)


def average_ignoring_none(values: Sequence[Optional[float]]) -> Optional[float]:
    """Mean of the non-None entries; None if all entries are None."""
    present = [v for v in values if v is not None]
    if not present:
        return None
    return sum(present) / len(present)
