"""Section 6.4 (text): effect of the MSP placement distribution.

The paper tried uniform, nearby-biased (pairwise DAG distance ≤ 4) and
far-biased (≥ 6) MSP placements, both over the whole DAG and over valid
assignments only, and found no change in the trends.  This harness sweeps
the same six combinations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..synth.dag_gen import generate_dag
from ..synth.msp_placement import place_msps
from .figure5 import run_single_trial
from .reporting import average_ignoring_none, format_table

POLICIES = ("uniform", "nearby", "far")


def run_distribution_sweep(
    width: int = 500,
    depth: int = 7,
    msp_fraction: float = 0.02,
    trials: int = 3,
    seed: int = 0,
    milestone: float = 0.5,
    algorithms: Sequence[str] = ("vertical", "horizontal"),
) -> Dict[Tuple[str, bool], Dict[str, Optional[float]]]:
    """``{(policy, valid_only): {algorithm: avg questions}}``."""
    results: Dict[Tuple[str, bool], Dict[str, Optional[float]]] = {}
    for policy in POLICIES:
        for valid_only in (True, False):
            collected: Dict[str, List[Optional[int]]] = {a: [] for a in algorithms}
            for trial in range(trials):
                dag = generate_dag(width=width, depth=depth, seed=seed + trial)
                msp_count = max(1, round(msp_fraction * len(dag)))
                planted = place_msps(
                    dag,
                    msp_count,
                    policy=policy,
                    valid_only=valid_only,
                    seed=seed + trial,
                )
                for algorithm in algorithms:
                    milestones = run_single_trial(
                        dag,
                        planted,
                        algorithm,
                        seed=seed + trial,
                        milestones=(milestone,),
                    )
                    collected[algorithm].append(milestones[milestone])
            results[(policy, valid_only)] = {
                a: average_ignoring_none(collected[a]) for a in algorithms
            }
    return results


def render_distribution_sweep(
    results: Dict[Tuple[str, bool], Dict[str, Optional[float]]]
) -> str:
    algorithms = sorted(next(iter(results.values())).keys())
    headers = ["placement", "valid only"] + list(algorithms)
    rows = []
    for (policy, valid_only), per_algorithm in sorted(results.items()):
        row: List[object] = [policy, "yes" if valid_only else "no"]
        for algorithm in algorithms:
            value = per_algorithm[algorithm]
            row.append("-" if value is None else f"{value:.0f}")
        rows.append(row)
    return format_table(
        headers,
        rows,
        title="MSP distribution sweep — questions to reach 50% of valid MSPs",
    )
