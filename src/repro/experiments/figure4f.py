"""Figure 4f: effect of answer types (synthetic, single user).

Vertical-algorithm runs on the synthetic DAG with varying ratios of
specialization answers (0 / 10 / 50 / 100 %) and of user-guided pruning
clicks (25 / 50 %), measuring questions to discover X% of the valid MSPs.
Specialization answers are simulated by handing the algorithm a significant
successor of the current assignment (the paper's protocol); pruning clicks
classify a ground-truth-insignificant successor subtree for free.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..mining.vertical import vertical_mine
from ..synth.dag_gen import generate_dag
from ..synth.msp_placement import PlantedSignificance, place_msps
from .reporting import average_ignoring_none, format_table

#: The paper's six configurations, as (label, specialization, pruning).
CONFIGURATIONS = (
    ("100% closed", 0.0, 0.0),
    ("10% special.", 0.1, 0.0),
    ("50% special.", 0.5, 0.0),
    ("100% special.", 1.0, 0.0),
    ("25% pruning", 0.0, 0.25),
    ("50% pruning", 0.0, 0.5),
)


def _specialization_oracle(planted: PlantedSignificance):
    """Pick a ground-truth-significant candidate (the member's choice)."""

    def oracle(node: int, candidates: Sequence[int]) -> Optional[int]:
        for candidate in candidates:
            if planted.is_significant(candidate):
                return candidate
        return None

    return oracle


def _prune_oracle(planted: PlantedSignificance, dag, rng: random.Random):
    """One irrelevant (insignificant) successor per click, chosen at random."""

    def oracle(node: int) -> Sequence[int]:
        insignificant = [
            s for s in dag.successors(node) if not planted.is_significant(s)
        ]
        if not insignificant:
            return ()
        return (rng.choice(insignificant),)

    return oracle


def run_figure4f(
    width: int = 500,
    depth: int = 7,
    msp_fraction: float = 0.02,
    trials: int = 6,
    seed: int = 0,
    milestones: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
    configurations=CONFIGURATIONS,
) -> Dict[str, Dict[float, Optional[float]]]:
    """Returns ``{configuration label: {milestone: avg questions}}``."""
    collected: Dict[str, Dict[float, List[Optional[int]]]] = {
        label: {m: [] for m in milestones} for label, _, _ in configurations
    }
    for trial in range(trials):
        dag = generate_dag(width=width, depth=depth, seed=seed + trial)
        msp_count = max(1, round(msp_fraction * len(dag)))
        planted = place_msps(
            dag, msp_count, policy="uniform", valid_only=True, seed=seed + trial
        )
        targets = planted.valid_msps()
        for label, specialization, pruning in configurations:
            rng = random.Random((seed + trial) * 1000 + hash(label) % 1000)
            result = vertical_mine(
                dag,
                planted.support,
                0.5,
                specialization_oracle=_specialization_oracle(planted),
                specialization_ratio=specialization,
                prune_oracle=_prune_oracle(planted, dag, rng),
                pruning_ratio=pruning,
                rng=rng,
                target_msps=targets,
            )
            for m in milestones:
                collected[label][m].append(
                    result.trace.questions_to_reach_targets(m, len(targets))
                )
    return {
        label: {m: average_ignoring_none(values[m]) for m in values}
        for label, values in collected.items()
    }


def render_figure4f(results: Dict[str, Dict[float, Optional[float]]]) -> str:
    milestones = sorted(next(iter(results.values())).keys())
    headers = ["configuration"] + [f"{m:.0%}" for m in milestones]
    rows = []
    for label, values in results.items():
        rows.append(
            [label]
            + ["-" if values[m] is None else f"{values[m]:.0f}" for m in milestones]
        )
    return format_table(
        headers, rows, title="Figure 4f — effect of answer types (questions)"
    )
