"""Figure 5: vertical vs. horizontal vs. naive, varying the % of MSPs.

For each MSP density (2% / 5% / 10% of the nodes), each algorithm runs on a
synthetic DAG (width 500, depth 7 by default) with planted valid MSPs, and
we record the number of questions needed to discover X% of the valid MSPs.
Results are averaged over ``trials`` runs with different seeds, matching
the paper's 6-trial averaging.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..assignments.lattice import ExplicitDAG
from ..mining.horizontal import horizontal_mine
from ..mining.naive import naive_mine
from ..mining.vertical import vertical_mine
from ..synth.dag_gen import generate_dag
from ..synth.msp_placement import PlantedSignificance, place_msps
from .reporting import average_ignoring_none, format_table

ALGORITHMS = ("vertical", "horizontal", "naive")


def run_single_trial(
    dag: ExplicitDAG[int],
    planted: PlantedSignificance,
    algorithm: str,
    threshold: float = 0.5,
    seed: int = 0,
    milestones: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
) -> Dict[float, Optional[int]]:
    """Questions needed to discover each milestone fraction of valid MSPs."""
    targets = planted.valid_msps()
    valid_nodes = dag.valid_nodes()
    rng = random.Random(seed)
    if algorithm == "vertical":
        result = vertical_mine(
            dag, planted.support, threshold, rng=rng,
            valid_nodes=valid_nodes, target_msps=targets,
        )
    elif algorithm == "horizontal":
        result = horizontal_mine(
            dag, planted.support, threshold,
            valid_nodes=valid_nodes, target_msps=targets,
        )
    elif algorithm == "naive":
        result = naive_mine(
            dag, planted.support, threshold, rng=rng,
            valid_nodes=valid_nodes, target_msps=targets,
        )
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    return {
        fraction: result.trace.questions_to_reach_targets(fraction, len(targets))
        for fraction in milestones
    }


def run_figure5(
    msp_fractions: Sequence[float] = (0.02, 0.05, 0.10),
    width: int = 500,
    depth: int = 7,
    trials: int = 6,
    seed: int = 0,
    milestones: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
    algorithms: Sequence[str] = ALGORITHMS,
) -> Dict[float, Dict[str, Dict[float, Optional[float]]]]:
    """The full Figure 5 sweep.

    Returns ``{msp_fraction: {algorithm: {milestone: avg questions}}}``.
    """
    results: Dict[float, Dict[str, Dict[float, Optional[float]]]] = {}
    for fraction in msp_fractions:
        collected: Dict[str, Dict[float, List[Optional[int]]]] = {
            a: {m: [] for m in milestones} for a in algorithms
        }
        for trial in range(trials):
            dag = generate_dag(width=width, depth=depth, seed=seed + trial)
            msp_count = max(1, round(fraction * len(dag)))
            planted = place_msps(
                dag, msp_count, policy="uniform", valid_only=True, seed=seed + trial
            )
            for algorithm in algorithms:
                milestones_hit = run_single_trial(
                    dag, planted, algorithm, seed=seed + trial, milestones=milestones
                )
                for m, questions in milestones_hit.items():
                    collected[algorithm][m].append(questions)
        results[fraction] = {
            algorithm: {
                m: average_ignoring_none(collected[algorithm][m]) for m in milestones
            }
            for algorithm in algorithms
        }
    return results


def render_figure5(
    results: Dict[float, Dict[str, Dict[float, Optional[float]]]]
) -> str:
    """Paper-style text rendering: one sub-table per MSP density."""
    blocks: List[str] = []
    for fraction in sorted(results):
        per_algorithm = results[fraction]
        milestones = sorted(next(iter(per_algorithm.values())).keys())
        headers = ["% valid MSPs discovered"] + [f"{m:.0%}" for m in milestones]
        rows = []
        for algorithm in per_algorithm:
            row = [algorithm]
            for m in milestones:
                value = per_algorithm[algorithm][m]
                row.append("-" if value is None else f"{value:.0f}")
            rows.append(row)
        blocks.append(
            format_table(
                headers, rows, title=f"Figure 5 — {fraction:.0%} total MSPs (questions)"
            )
        )
    return "\n\n".join(blocks)
