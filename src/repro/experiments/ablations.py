"""Ablation experiments for the design choices called out in DESIGN.md.

* :func:`run_expansion_ablation` — Algorithm 1 line 1 expands the valid
  assignments with every generalization before traversal.  The ablation
  compares traversal over the expanded space against traversal restricted
  to the valid nodes only (questions to complete, questions per MSP).
* :func:`run_cache_ablation` — threshold replay from the CrowdCache vs.
  re-running the crowd from scratch at each threshold (Section 6.3's
  caching optimization).
* :func:`run_decided_generals_ablation` — the Section 4.2 refinement of
  re-asking users about already-decided general assignments, on vs. off.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..assignments.lattice import ExplicitDAG
from ..crowd.aggregator import FixedSampleAggregator
from ..crowd.cache import CrowdCache
from ..datasets.base import DomainDataset
from ..engine.adapters import MemberUser
from ..engine.config import EngineConfig
from ..engine.engine import OassisEngine
from ..mining.multiuser import MultiUserMiner
from ..mining.vertical import vertical_mine
from ..synth.dag_gen import generate_dag
from ..synth.msp_placement import place_msps
from .reporting import format_table


def induced_valid_subdag(dag: ExplicitDAG[int]) -> ExplicitDAG[int]:
    """The sub-DAG induced on the valid nodes.

    Edges connect valid node ``a`` to valid node ``b`` when ``b`` is
    reachable from ``a`` through invalid nodes only — the traversal a
    no-expansion algorithm would see.
    """
    valid = set(dag.valid_nodes())
    sub: ExplicitDAG[int] = ExplicitDAG()
    for node in valid:
        sub.add_node(node)
    for node in valid:
        # BFS through invalid nodes to the nearest valid descendants
        frontier = list(dag.successors(node))
        seen = set(frontier)
        while frontier:
            current = frontier.pop()
            if current in valid:
                sub.add_edge(node, current)
                continue
            for successor in dag.successors(current):
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
    sub.set_valid(valid)
    return sub


def run_expansion_ablation(
    width: int = 500,
    depth: int = 7,
    msp_fraction: float = 0.02,
    trials: int = 3,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Vertical mining on the expanded space vs. the valid-only space."""
    rows: List[Dict[str, object]] = []
    for trial in range(trials):
        dag = generate_dag(width=width, depth=depth, seed=seed + trial)
        msp_count = max(1, round(msp_fraction * len(dag)))
        planted = place_msps(
            dag, msp_count, policy="uniform", valid_only=True, seed=seed + trial
        )
        expanded = vertical_mine(dag, planted.support, 0.5)
        valid_only_dag = induced_valid_subdag(dag)
        restricted = vertical_mine(valid_only_dag, planted.support, 0.5)
        rows.append(
            {
                "trial": trial,
                "expanded_questions": expanded.questions,
                "valid_only_questions": restricted.questions,
                "expanded_valid_msps": len(expanded.valid_msps),
                "valid_only_msps": len(restricted.valid_msps),
            }
        )
    return rows


def render_expansion_ablation(rows: List[Dict[str, object]]) -> str:
    headers = [
        "trial",
        "expanded questions",
        "valid-only questions",
        "expanded valid MSPs",
        "valid-only MSPs",
    ]
    table = [
        (
            r["trial"],
            r["expanded_questions"],
            r["valid_only_questions"],
            r["expanded_valid_msps"],
            r["valid_only_msps"],
        )
        for r in rows
    ]
    return format_table(headers, table, title="Ablation — expansion to generalizations")


def run_cache_ablation(
    dataset: DomainDataset,
    thresholds: Sequence[float] = (0.2, 0.3, 0.4, 0.5),
    crowd_size: int = 20,
    sample_size: int = 5,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Crowd questions per threshold: cached replay vs. fresh execution."""
    base_threshold = min(thresholds)
    engine = OassisEngine(
        dataset.ontology, config=EngineConfig(max_values_per_var=2, max_more_facts=1)
    )
    query = engine.parse(dataset.query(base_threshold))
    cache = CrowdCache()

    crowd = dataset.build_crowd(size=crowd_size, seed=seed)
    space = engine.build_space(query, more_pool=dataset.more_pool)
    aggregator = FixedSampleAggregator(base_threshold, sample_size=sample_size)
    users = [MemberUser(member, space) for member in crowd]
    base = MultiUserMiner(space, users, aggregator, cache=cache).run()

    rows: List[Dict[str, object]] = [
        {
            "threshold": base_threshold,
            "cached_questions": base.questions,
            "fresh_questions": base.questions,
        }
    ]
    member_ids = [m.member_id for m in crowd]
    for threshold in sorted(thresholds):
        if threshold == base_threshold:
            continue
        _, replayed = engine.replay(
            query, member_ids, cache, threshold=threshold, sample_size=sample_size
        )
        fresh_crowd = dataset.build_crowd(size=crowd_size, seed=seed)
        fresh = engine.execute(
            engine.parse(dataset.query(threshold)),
            fresh_crowd,
            sample_size=sample_size,
            more_pool=dataset.more_pool,
        )
        rows.append(
            {
                "threshold": threshold,
                "cached_questions": replayed.questions,
                "fresh_questions": fresh.questions,
            }
        )
    return rows


def render_cache_ablation(rows: List[Dict[str, object]], name: str) -> str:
    headers = ["threshold", "cached replay (answers used)", "fresh crowd questions"]
    table = [
        (r["threshold"], r["cached_questions"], r["fresh_questions"]) for r in rows
    ]
    return format_table(
        headers, table, title=f"Ablation — answer caching across thresholds ({name})"
    )


def run_decided_generals_ablation(
    dataset: DomainDataset,
    crowd_size: int = 20,
    sample_size: int = 5,
    seed: int = 0,
    threshold: float = 0.2,
) -> Dict[str, int]:
    """Total questions with and without re-asking decided generals."""
    engine = OassisEngine(
        dataset.ontology, config=EngineConfig(max_values_per_var=2, max_more_facts=1)
    )
    query = engine.parse(dataset.query(threshold))
    counts: Dict[str, int] = {}
    for label, flag in (("skip decided", False), ("re-ask decided", True)):
        space = engine.build_space(query, more_pool=dataset.more_pool)
        crowd = dataset.build_crowd(size=crowd_size, seed=seed)
        aggregator = FixedSampleAggregator(threshold, sample_size=sample_size)
        users = [MemberUser(member, space) for member in crowd]
        miner = MultiUserMiner(
            space, users, aggregator, ask_decided_generals=flag,
            max_total_questions=50000,
        )
        counts[label] = miner.run().questions
    return counts
