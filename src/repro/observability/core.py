"""Tracer, spans and counters — the instrumentation core.

A :class:`Tracer` owns two kinds of state:

* **counters** — a flat ``name -> int`` map.  Names follow the dotted
  scheme documented in ``docs/OBSERVABILITY.md`` (``crowd.questions``,
  ``cache.hits``, ``mining.inferred.insignificant``, ...).
* **spans** — a tree of named timed sections.  Spans with the same name
  under the same parent are aggregated (invocation count + total
  monotonic wall time), so instrumenting a hot loop does not grow the
  tree per iteration.

Activation is *context-local*: a tracer becomes visible to library code
by being installed in a :mod:`contextvars` context variable, so two
threads (or two asyncio tasks) can trace independently and library
modules never need a tracer handle threaded through their signatures.
When no tracer is installed every module-level helper is a guarded
no-op: ``count()`` is a single dictionary-free function call and
``span()`` returns a shared null context manager, which keeps the
instrumented hot paths within measurement noise of uninstrumented code.
"""

from __future__ import annotations

import threading
import time
from contextlib import AbstractContextManager, contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


class SpanNode:
    """One named node of the span tree (aggregated over invocations)."""

    __slots__ = ("name", "count", "total_seconds", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_seconds = 0.0
        # child name -> SpanNode, in first-seen order (dicts preserve it)
        self.children: Dict[str, "SpanNode"] = {}

    def child(self, name: str) -> "SpanNode":
        node = self.children.get(name)
        if node is None:
            node = SpanNode(name)
            self.children[name] = node
        return node

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (seconds rounded to the microsecond)."""
        return {
            "name": self.name,
            "count": self.count,
            "total_s": round(self.total_seconds, 6),
            "children": [c.as_dict() for c in self.children.values()],
        }

    def __repr__(self) -> str:
        return (
            f"SpanNode({self.name!r}, count={self.count}, "
            f"total_s={self.total_seconds:.6f})"
        )


#: log-spaced histogram bucket upper bounds (seconds): five per decade
#: from 10µs to ~63s, which bounds the relative quantile error at the
#: bucket ratio (~1.58x) while keeping every histogram a fixed 36 ints
_HISTOGRAM_BOUNDS: Tuple[float, ...] = tuple(
    round(1e-5 * 10 ** (exponent / 5), 10) for exponent in range(36)
)


class Histogram:
    """A fixed-bucket latency histogram (seconds).

    Log-spaced buckets keep memory constant no matter how many requests a
    gateway serves; quantiles are interpolated inside the winning bucket
    and clamped to the observed min/max, so p50/p95/p99 are exact at the
    extremes and within one bucket ratio everywhere else.  Mutation is
    guarded by the owning :class:`Tracer`'s lock.
    """

    __slots__ = ("count", "total_seconds", "min_seconds", "max_seconds", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total_seconds = 0.0
        self.min_seconds = float("inf")
        self.max_seconds = 0.0
        self.buckets = [0] * (len(_HISTOGRAM_BOUNDS) + 1)

    def observe(self, seconds: float) -> None:
        value = max(0.0, seconds)
        self.count += 1
        self.total_seconds += value
        if value < self.min_seconds:
            self.min_seconds = value
        if value > self.max_seconds:
            self.max_seconds = value
        for index, bound in enumerate(_HISTOGRAM_BOUNDS):
            if value <= bound:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    def quantile(self, q: float) -> float:
        """The latency at quantile ``q`` in [0, 1] (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        rank = q * self.count
        seen = 0.0
        for index, in_bucket in enumerate(self.buckets):
            seen += in_bucket
            if seen >= rank and in_bucket:
                upper = (
                    _HISTOGRAM_BOUNDS[index]
                    if index < len(_HISTOGRAM_BOUNDS)
                    else self.max_seconds
                )
                lower = _HISTOGRAM_BOUNDS[index - 1] if index > 0 else 0.0
                # interpolate within the bucket, clamp to observed range
                fraction = 1.0 - (seen - rank) / in_bucket
                estimate = lower + (upper - lower) * fraction
                return min(self.max_seconds, max(self.min_seconds, estimate))
        return self.max_seconds

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable summary (seconds rounded to the microsecond)."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "total_s": round(self.total_seconds, 6),
            "mean_s": round(self.total_seconds / self.count, 6),
            "min_s": round(self.min_seconds, 6),
            "max_s": round(self.max_seconds, 6),
            "p50_s": round(self.quantile(0.50), 6),
            "p95_s": round(self.quantile(0.95), 6),
            "p99_s": round(self.quantile(0.99), 6),
        }

    def __repr__(self) -> str:
        return f"Histogram(count={self.count}, total_s={self.total_seconds:.6f})"


class Tracer:
    """Collects counters and nested timed spans for one traced run.

    ``clock`` is injectable for deterministic tests; it must be a
    monotonic zero-argument callable returning seconds (the default is
    :func:`time.perf_counter`).

    One tracer may be shared by several threads (the service layer's
    worker pool installs the session tracer in every worker): counter
    increments and span-tree mutations are guarded by an internal lock,
    and the open-span stack is *per thread*, so spans recorded from a
    worker thread nest under that thread's own open spans (rooted at the
    shared tree root) rather than corrupting another thread's stack.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self.counters: Dict[str, int] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.root = SpanNode("<root>")
        self._lock = threading.Lock()
        self._local = threading.local()

    @property
    def _stack(self) -> List[SpanNode]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = [self.root]
        return stack

    # ------------------------------------------------------------- counters

    def count(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the counter ``name`` (created at 0)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def value(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self.counters.get(name, 0)

    # ----------------------------------------------------------- histograms

    def observe(self, name: str, seconds: float) -> None:
        """Record one latency sample into the histogram ``name``."""
        with self._lock:
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = Histogram()
            histogram.observe(seconds)

    def histogram(self, name: str) -> Optional[Histogram]:
        """The histogram ``name``, or None when nothing was observed."""
        return self.histograms.get(name)

    # ---------------------------------------------------------------- spans

    @contextmanager
    def span(self, name: str) -> Iterator[SpanNode]:
        """A timed section nested under the currently open span."""
        stack = self._stack
        with self._lock:
            node = stack[-1].child(name)
            node.count += 1
        stack.append(node)
        start = self._clock()
        try:
            yield node
        finally:
            elapsed = self._clock() - start
            with self._lock:
                node.total_seconds += elapsed
            stack.pop()

    def span_names(self) -> List[str]:
        """Dotted paths of every recorded span, depth-first."""
        names: List[str] = []

        def walk(node: SpanNode, prefix: str) -> None:
            for child in node.children.values():
                path = f"{prefix}{child.name}" if not prefix else f"{prefix}/{child.name}"
                names.append(path)
                walk(child, path)

        walk(self.root, "")
        return names

    def find_span(self, name: str) -> Optional[SpanNode]:
        """The first span named ``name``, depth-first; None if absent."""
        stack = list(self.root.children.values())
        while stack:
            node = stack.pop(0)
            if node.name == name:
                return node
            stack.extend(node.children.values())
        return None

    # --------------------------------------------------------------- report

    def report(self) -> Dict[str, Any]:
        """The machine-readable report (see ``docs/OBSERVABILITY.md``)."""
        from .report import build_report

        return build_report(self)

    def render(self) -> str:
        """The human-readable summary table."""
        from .report import render_report

        return render_report(self.report())


# ----------------------------------------------------------------- registry

_ACTIVE: ContextVar[Optional[Tracer]] = ContextVar("repro_tracer", default=None)


class _NullSpan(AbstractContextManager[None]):
    """The shared no-op context manager returned by disabled ``span()``."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def get_tracer() -> Optional[Tracer]:
    """The tracer active in this context, or None when tracing is off.

    Hot paths fetch this once per operation and guard every recording
    call with ``if tracer is not None`` so the disabled mode costs one
    context-variable read per operation, not per event.
    """
    return _ACTIVE.get()


def enabled() -> bool:
    """Is a tracer active in this context?"""
    return _ACTIVE.get() is not None


def enable(tracer: Optional[Tracer] = None) -> Tracer:
    """Install ``tracer`` (or a fresh one) in the current context."""
    if tracer is None:
        tracer = Tracer()
    _ACTIVE.set(tracer)
    return tracer


def disable() -> Optional[Tracer]:
    """Deactivate tracing in this context; returns the removed tracer."""
    tracer = _ACTIVE.get()
    _ACTIVE.set(None)
    return tracer


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Scope-local activation::

        with tracing() as tracer:
            result = engine.execute(query, crowd)
        print(tracer.render())
    """
    if tracer is None:
        tracer = Tracer()
    token = _ACTIVE.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)


def span(name: str) -> AbstractContextManager[Optional[SpanNode]]:
    """A span on the active tracer, or a shared no-op when disabled."""
    tracer = _ACTIVE.get()
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name)


def count(name: str, amount: int = 1) -> None:
    """Increment a counter on the active tracer; no-op when disabled."""
    tracer = _ACTIVE.get()
    if tracer is not None:
        tracer.count(name, amount)


def observe(name: str, seconds: float) -> None:
    """Record a latency sample on the active tracer; no-op when disabled."""
    tracer = _ACTIVE.get()
    if tracer is not None:
        tracer.observe(name, seconds)
