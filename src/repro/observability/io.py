"""Atomic artifact writes: a torn benchmark is worse than no benchmark.

Every JSON artifact the project emits (``BENCH_*.json``,
``stats_report.json``, session checkpoints) goes through
:func:`atomic_write_json`: the payload is serialized to a sibling tmp
file and swapped into place with ``os.replace``, which is atomic on
POSIX and Windows.  A reader therefore sees either the previous
artifact or the complete new one — never a truncated JSON document from
an interrupted run.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Union

__all__ = ["atomic_write_json", "atomic_write_text"]


def atomic_write_text(path: Union[str, "os.PathLike[str]"], text: str) -> Path:
    """Write ``text`` to ``path`` atomically (tmp file + ``os.replace``)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(target.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)
    return target


def atomic_write_json(
    path: Union[str, "os.PathLike[str]"],
    payload: Any,
    *,
    indent: int = 2,
    sort_keys: bool = True,
) -> Path:
    """Serialize ``payload`` and write it atomically; returns the path."""
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys) + "\n"
    return atomic_write_text(path, text)
