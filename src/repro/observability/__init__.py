"""Structured tracing, counters and timers for the OASSIS pipeline.

A dependency-free instrumentation subsystem in the spirit of the
question-count / budget accounting that crowd-query systems treat as a
first-class concern (CrowdDB-style budget tracking, RDF-Hunter's
per-triple cost accounting): every layer of the engine records what it
did — questions asked, cache hits, nodes pruned by inference, spans of
wall time — into a context-local :class:`Tracer`.

Usage::

    from repro.observability import tracing

    with tracing() as tracer:
        result = engine.execute(query, crowd)
    print(tracer.render())                 # human-readable summary
    report = tracer.report()               # JSON-serializable dict

When no tracer is active (the default) the instrumentation is a guarded
no-op: library code stays import-cheap and the hot paths pay one pointer
check per operation.  See ``docs/OBSERVABILITY.md`` for the span/counter
naming scheme and the crowd-vs-computation cost model.
"""

from .core import (
    Histogram,
    SpanNode,
    Tracer,
    count,
    disable,
    enable,
    enabled,
    get_tracer,
    observe,
    span,
    tracing,
)
from .io import atomic_write_json, atomic_write_text
from .names import (
    ALL_NAMES,
    COUNTER_NAMES,
    HISTOGRAM_NAMES,
    SPAN_NAMES,
    is_registered_counter,
    is_registered_histogram,
    is_registered_span,
    registered_names,
    unregistered_names,
)
from .report import (
    REPORT_VERSION,
    build_report,
    derive,
    derive_gateway,
    derive_service,
    render_report,
    render_spans,
)

__all__ = [
    "ALL_NAMES",
    "COUNTER_NAMES",
    "HISTOGRAM_NAMES",
    "Histogram",
    "REPORT_VERSION",
    "SPAN_NAMES",
    "SpanNode",
    "Tracer",
    "atomic_write_json",
    "atomic_write_text",
    "build_report",
    "count",
    "derive",
    "derive_gateway",
    "derive_service",
    "disable",
    "enable",
    "enabled",
    "get_tracer",
    "is_registered_counter",
    "is_registered_histogram",
    "is_registered_span",
    "registered_names",
    "observe",
    "render_report",
    "render_spans",
    "span",
    "tracing",
    "unregistered_names",
]
