"""The central registry of counter and span names.

Every counter incremented and every span opened anywhere in the engine
must use a name listed here.  The registry exists so that the dotted
naming scheme of ``docs/OBSERVABILITY.md`` cannot silently drift: the
static ``tracer-name`` lint rule (:mod:`repro.analysis`) checks every
literal ``count(...)``/``span(...)`` call site in ``src/`` against these
sets, and the observability test suite checks the converse — that a
fully traced run records no name the registry does not know.

Adding an instrumentation point is therefore a two-line change: add the
``count``/``span`` call, and register its name below (keep the sections
sorted).  A call site with an unregistered literal name fails
``make lint``.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Set, Union

from .core import Tracer

#: every registered counter name, grouped by subsystem prefix
COUNTER_NAMES: FrozenSet[str] = frozenset(
    {
        # crowd answer aggregation
        "aggregator.answers",
        # adaptive support-backend selection (repro.crowd.backend)
        "backend.choose.reference",
        "backend.choose.tid",
        "backend.decisions.cached",
        "backend.overridden",
        "support.count.reference",
        "support.count.tid",
        # the CrowdCache answer store
        "cache.answers.recorded",
        "cache.hits",
        "cache.misses",
        # crowd members and question kinds
        "crowd.answers.stale",
        "crowd.more_tips",
        "crowd.none_of_these",
        "crowd.pruning_clicks",
        "crowd.questions",
        "crowd.questions.concrete",
        "crowd.questions.specialization",
        # injected faults, by kind (repro.faults)
        "faults.injected.crash",
        "faults.injected.departure",
        "faults.injected.disconnect",
        "faults.injected.duplicate",
        "faults.injected.malformed",
        "faults.injected.slow_client",
        "faults.injected.timeout",
        # the network-facing crowd gateway (repro.gateway)
        "gateway.answers.accepted",
        "gateway.answers.deduped",
        "gateway.answers.duplicate",
        "gateway.auth.rejected",
        "gateway.backpressure.rejected",
        "gateway.datasets.activated",
        "gateway.disconnects.injected",
        "gateway.errors.client",
        "gateway.errors.server",
        "gateway.journal.appends",
        "gateway.journal.compactions",
        "gateway.journal.corrupt_skipped",
        "gateway.journal.replayed",
        "gateway.journal.restore_failures",
        "gateway.journal.restores",
        "gateway.longpoll.empty",
        "gateway.longpoll.waits",
        "gateway.mcp.calls",
        "gateway.mcp.unavailable",
        "gateway.members.joined",
        "gateway.queries.posed",
        "gateway.requests",
        "gateway.results.served",
        "gateway.slow_responses.injected",
        # assignment lattice traversal
        "lattice.bfs.nodes",
        "lattice.desc_cache.misses",
        "lattice.expansion.checks",
        "lattice.succ_cache.hits",
        "lattice.succ_cache.misses",
        "lattice.successors.generated",
        # mining classification
        "mining.classified.by_crowd",
        "mining.inferred.insignificant",
        "mining.inferred.significant",
        "mining.msps.found",
        "mining.msps.valid",
        "mining.skipped.decided",
        "mining.skipped.insignificant",
        "mining.skipped.user_pruned",
        # bitset-compiled taxonomy closures
        "orders.chain_partitions",
        "orders.closure.anc_compiles",
        "orders.closure.anc_views",
        "orders.closure.desc_compiles",
        "orders.closure.desc_views",
        # durability and recovery (WAL journal, checkpoints, breakers)
        "recovery.answers.resolved",
        "recovery.answers.unresolved",
        "recovery.breaker.closed",
        "recovery.breaker.half_open",
        "recovery.breaker.opened",
        "recovery.breaker.short_circuited",
        "recovery.checkpoints.written",
        "recovery.sessions.restored",
        "recovery.wal.appends",
        "recovery.wal.compactions",
        "recovery.wal.corrupt_skipped",
        "recovery.wal.duplicates_skipped",
        "recovery.wal.replayed",
        # threshold-sweep replay
        "replay.answers_used",
        "replay.cache_misses",
        "replay.nodes_visited",
        # concurrent crowd-serving layer
        "service.answers.passed",
        "service.answers.pruned",
        "service.answers.recorded",
        "service.answers.rejected",
        "service.answers.stale",
        "service.members.attached",
        "service.members.departed",
        "service.questions.dispatched",
        "service.reassigned",
        "service.requeues",
        "service.retries.exhausted",
        "service.sessions.cancelled",
        "service.sessions.completed",
        "service.sessions.created",
        "service.sessions.resumed",
        "service.timeouts",
        "service.workers.crashed",
        # process-sharded serving (repro.service.shard)
        "shard.answers.merged",
        "shard.asks.resent",
        "shard.asks.sent",
        "shard.backpressure.deferred",
        "shard.batches.sent",
        "shard.closure.compiles",
        "shard.deltas.received",
        "shard.deltas.stale",
        "shard.fleet.answers",
        "shard.fleet.asks",
        "shard.fleet.cached",
        "shard.fleet.compiles",
        "shard.fleet.computed",
        "shard.fleet.replayed",
        "shard.kills",
        "shard.nodes.asked",
        "shard.nodes.classified",
        "shard.restores",
        "shard.serve.timeouts",
        "shard.sessions.completed",
        "shard.sessions.created",
        "shard.shutdown.errors",
        "shard.spawns",
        "shard.wal.replayed",
        # the shard-fleet heartbeat supervisor (repro.service.supervisor)
        "supervisor.deaths.detected",
        "supervisor.degraded",
        "supervisor.heartbeats.missed",
        "supervisor.heartbeats.sent",
        "supervisor.members.rehashed",
        "supervisor.restart.failures",
        "supervisor.restarts",
        # SPARQL-ish BGP evaluation
        "sparql.closure_cache.hits",
        "sparql.closure_cache.misses",
        "sparql.patterns.matched",
        "sparql.rel_match_cache.hits",
        "sparql.rel_match_cache.misses",
        "sparql.solutions",
        # TID-bitset support counting
        "tid_index.rebuilds",
        "tid_index.support.queries",
        "tid_index.witness.hits",
        "tid_index.witness.misses",
    }
)

#: every registered span name (the nodes of the span tree)
SPAN_NAMES: FrozenSet[str] = frozenset(
    {
        "backend.compile",
        "engine.execute",
        "engine.parse",
        "engine.replay",
        "gateway.restore",
        "lattice.build",
        "lattice.expand",
        "mine.horizontal",
        "mine.multiuser",
        "mine.replay",
        "mine.vertical",
        "recovery.restore",
        "result.build",
        "service.dispatch",
        "service.reap",
        "service.submit",
        "shard.restore",
        "shard.serve",
        "shard.spawn",
        "shard.start",
        "sparql.match",
        "supervisor.restart",
    }
)

#: every registered latency-histogram name (``Tracer.observe``); the
#: ``gateway.latency.*`` family is one histogram per HTTP endpoint plus
#: the MCP dispatch surface (see ``docs/GATEWAY.md``)
HISTOGRAM_NAMES: FrozenSet[str] = frozenset(
    {
        "gateway.latency.activate",
        "gateway.latency.answer",
        "gateway.latency.datasets",
        "gateway.latency.health",
        "gateway.latency.join",
        "gateway.latency.mcp",
        "gateway.latency.next",
        "gateway.latency.other",
        "gateway.latency.query",
        "gateway.latency.result",
        "gateway.poll.wait",
    }
)

#: the union, for callers that do not care about the kind
ALL_NAMES: FrozenSet[str] = COUNTER_NAMES | SPAN_NAMES | HISTOGRAM_NAMES


def is_registered_counter(name: str) -> bool:
    """Is ``name`` a registered counter name?"""
    return name in COUNTER_NAMES


def is_registered_span(name: str) -> bool:
    """Is ``name`` a registered span name?"""
    return name in SPAN_NAMES


def is_registered_histogram(name: str) -> bool:
    """Is ``name`` a registered histogram name?"""
    return name in HISTOGRAM_NAMES


def _span_leaf_names(tracer: Tracer) -> Iterable[str]:
    for path in tracer.span_names():
        yield path.rsplit("/", 1)[-1]


def unregistered_names(tracer: Tracer) -> FrozenSet[str]:
    """Names a traced run recorded that the registry does not know.

    The runtime converse of the static ``tracer-name`` lint rule: feed it
    the tracer of a representative run and assert the result is empty
    (see ``tests/test_observability.py``).
    """
    stray: Set[str] = set()
    for name in tracer.counters:
        if name not in COUNTER_NAMES:
            stray.add(name)
    for name in _span_leaf_names(tracer):
        if name not in SPAN_NAMES:
            stray.add(name)
    for name in getattr(tracer, "histograms", {}):
        if name not in HISTOGRAM_NAMES:
            stray.add(name)
    return frozenset(stray)


def registered_names(kind: Union[str, None] = None) -> FrozenSet[str]:
    """The registered names: ``"counter"``, ``"span"``, ``"histogram"``
    or all of them (None)."""
    if kind == "counter":
        return COUNTER_NAMES
    if kind == "span":
        return SPAN_NAMES
    if kind == "histogram":
        return HISTOGRAM_NAMES
    if kind is None:
        return ALL_NAMES
    raise ValueError(f"unknown name kind {kind!r}")
