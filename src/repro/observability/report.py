"""Report assembly and rendering.

``build_report`` turns a :class:`~repro.observability.core.Tracer` into a
plain JSON-serializable dict (the machine-readable report); ``render_report``
turns that dict into the human-readable summary table printed by the CLI's
``--stats`` flag.  The schema is documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .core import Tracer

#: Schema version of the JSON report.  Bump on breaking changes.
REPORT_VERSION = 1


def _ratio(numerator: int, denominator: int) -> Optional[float]:
    if denominator <= 0:
        return None
    return round(numerator / denominator, 4)


def derive(counters: Dict[str, int]) -> Dict[str, Any]:
    """The headline metrics computed from raw counters.

    These are the numbers the paper's cost model cares about (see
    Section 6 / ``docs/OBSERVABILITY.md``): crowd complexity first,
    computational complexity second.
    """
    hits = counters.get("cache.hits", 0)
    misses = counters.get("cache.misses", 0)
    inferred = counters.get("mining.inferred.significant", 0) + counters.get(
        "mining.inferred.insignificant", 0
    )
    return {
        "total_questions": counters.get("crowd.questions", 0),
        "cache_hit_rate": _ratio(hits, hits + misses),
        "nodes_pruned_by_inference": counters.get(
            "mining.inferred.insignificant", 0
        ),
        "nodes_classified_by_inference": inferred,
        "nodes_classified_by_crowd": counters.get(
            "mining.classified.by_crowd", 0
        ),
        "assignments_generated": counters.get("lattice.successors.generated", 0),
    }


def derive_service(counters: Dict[str, int]) -> Optional[Dict[str, Any]]:
    """The ``service`` section: crowd-serving session-layer accounting.

    Present only when the run went through :mod:`repro.service` (i.e. any
    ``service.*`` counter fired); reports session lifecycle, dispatch
    volume and the failure-handling paths (timeouts, requeues, retries
    exhausted, reassignments, departures).  See ``docs/SERVICE.md``.
    """
    if not any(name.startswith("service.") for name in counters):
        return None
    dispatched = counters.get("service.questions.dispatched", 0)
    answered = counters.get("service.answers.recorded", 0) + counters.get(
        "service.answers.pruned", 0
    )
    return {
        "sessions": {
            "created": counters.get("service.sessions.created", 0),
            "resumed": counters.get("service.sessions.resumed", 0),
            "completed": counters.get("service.sessions.completed", 0),
            "cancelled": counters.get("service.sessions.cancelled", 0),
        },
        "questions": {
            "dispatched": dispatched,
            "answered": answered,
            "stale": counters.get("service.answers.stale", 0),
            "passed": counters.get("service.answers.passed", 0),
            "timeouts": counters.get("service.timeouts", 0),
            "requeues": counters.get("service.requeues", 0),
            "retries_exhausted": counters.get("service.retries.exhausted", 0),
            "reassigned": counters.get("service.reassigned", 0),
        },
        "members": {
            "attached": counters.get("service.members.attached", 0),
            "departed": counters.get("service.members.departed", 0),
        },
        "answer_rate": _ratio(answered, dispatched),
    }


def derive_gateway(counters: Dict[str, int]) -> Optional[Dict[str, Any]]:
    """The ``gateway`` section: network-facing request accounting.

    Present only when the run went through :mod:`repro.gateway` (any
    ``gateway.*`` counter fired); reports request volume, the rejection
    paths (auth, backpressure, client errors) and the long-poll and
    answer pipelines.  Per-endpoint latency lives in the ``histograms``
    section.  See ``docs/GATEWAY.md``.
    """
    if not any(name.startswith("gateway.") for name in counters):
        return None
    requests = counters.get("gateway.requests", 0)
    rejected = (
        counters.get("gateway.auth.rejected", 0)
        + counters.get("gateway.backpressure.rejected", 0)
        + counters.get("gateway.errors.client", 0)
    )
    return {
        "requests": requests,
        "rejected": rejected,
        "auth_rejected": counters.get("gateway.auth.rejected", 0),
        "backpressure_rejected": counters.get("gateway.backpressure.rejected", 0),
        "client_errors": counters.get("gateway.errors.client", 0),
        "server_errors": counters.get("gateway.errors.server", 0),
        "members_joined": counters.get("gateway.members.joined", 0),
        "queries_posed": counters.get("gateway.queries.posed", 0),
        "answers_accepted": counters.get("gateway.answers.accepted", 0),
        "longpoll_waits": counters.get("gateway.longpoll.waits", 0),
        "longpoll_empty": counters.get("gateway.longpoll.empty", 0),
        "results_served": counters.get("gateway.results.served", 0),
        "rejection_rate": _ratio(rejected, requests),
    }


def build_report(tracer: "Tracer") -> Dict[str, Any]:
    """The machine-readable report of one traced run."""
    counters = dict(sorted(tracer.counters.items()))
    report: Dict[str, Any] = {
        "version": REPORT_VERSION,
        "counters": counters,
        "derived": derive(counters),
        "spans": [child.as_dict() for child in tracer.root.children.values()],
    }
    histograms = getattr(tracer, "histograms", None)
    if histograms:
        report["histograms"] = {
            name: histogram.as_dict()
            for name, histogram in sorted(histograms.items())
        }
    service = derive_service(counters)
    if service is not None:
        report["service"] = service
    gateway = derive_gateway(counters)
    if gateway is not None:
        report["gateway"] = gateway
    return report


# ------------------------------------------------------------------ rendering


def _render_span(node: Dict[str, Any], depth: int, lines: List[str]) -> None:
    label = "  " * depth + node["name"]
    lines.append(f"  {label:<38} {node['total_s']:>10.4f}s  x{node['count']}")
    for child in node["children"]:
        _render_span(child, depth + 1, lines)


def render_spans(report: Dict[str, Any]) -> str:
    """Just the span tree of a :func:`build_report` dict (the CLI's
    ``--trace`` view)."""
    lines: List[str] = ["== span tree =="]
    if not report["spans"]:
        lines.append("  (no spans recorded)")
    for span in report["spans"]:
        _render_span(span, 0, lines)
    return "\n".join(lines)


def render_report(report: Dict[str, Any]) -> str:
    """The ``--stats`` summary table for a :func:`build_report` dict."""
    derived = report["derived"]
    lines: List[str] = ["== observability summary =="]

    lines.append("-- headline --")
    hit_rate = derived["cache_hit_rate"]
    rows = [
        ("total questions", str(derived["total_questions"])),
        (
            "cache hit rate",
            "n/a" if hit_rate is None else f"{100.0 * hit_rate:.1f}%",
        ),
        (
            "nodes pruned by inference",
            str(derived["nodes_pruned_by_inference"]),
        ),
        (
            "nodes classified by crowd",
            str(derived["nodes_classified_by_crowd"]),
        ),
        ("assignments generated", str(derived["assignments_generated"])),
    ]
    for key, value in rows:
        lines.append(f"  {key:<38} {value:>12}")

    service = report.get("service")
    if service is not None:
        lines.append("-- service --")
        sessions = service["sessions"]
        questions = service["questions"]
        members = service["members"]
        rate = service["answer_rate"]
        service_rows = [
            (
                "sessions done/created",
                f"{sessions['completed']}/{sessions['created'] + sessions['resumed']}",
            ),
            ("questions dispatched", str(questions["dispatched"])),
            (
                "answer rate",
                "n/a" if rate is None else f"{100.0 * rate:.1f}%",
            ),
            ("timeouts / requeues", f"{questions['timeouts']} / {questions['requeues']}"),
            ("questions reassigned", str(questions["reassigned"])),
            ("members departed", str(members["departed"])),
        ]
        for key, value in service_rows:
            lines.append(f"  {key:<38} {value:>12}")

    gateway = report.get("gateway")
    if gateway is not None:
        lines.append("-- gateway --")
        rejection = gateway["rejection_rate"]
        gateway_rows = [
            ("requests served", str(gateway["requests"])),
            (
                "rejection rate",
                "n/a" if rejection is None else f"{100.0 * rejection:.1f}%",
            ),
            ("members joined", str(gateway["members_joined"])),
            ("queries posed", str(gateway["queries_posed"])),
            ("answers accepted", str(gateway["answers_accepted"])),
            (
                "long-polls (empty)",
                f"{gateway['longpoll_waits']} ({gateway['longpoll_empty']})",
            ),
        ]
        for key, value in gateway_rows:
            lines.append(f"  {key:<38} {value:>12}")

    histograms = report.get("histograms")
    if histograms:
        lines.append("-- latency histograms --")
        for name, summary in histograms.items():
            if summary["count"] == 0:
                continue
            lines.append(
                f"  {name:<38} p50={summary['p50_s'] * 1e3:7.2f}ms "
                f"p95={summary['p95_s'] * 1e3:7.2f}ms "
                f"p99={summary['p99_s'] * 1e3:7.2f}ms  x{summary['count']}"
            )

    if report["spans"]:
        lines.append("-- per-phase wall time --")
        for span in report["spans"]:
            _render_span(span, 0, lines)

    if report["counters"]:
        lines.append("-- counters --")
        for name, value in report["counters"].items():
            lines.append(f"  {name:<38} {value:>12}")

    return "\n".join(lines)
