"""Demo and experiment datasets: running example + three crowd domains."""

from . import culinary, health, running_example, travel
from .base import DomainDataset

__all__ = ["DomainDataset", "culinary", "health", "running_example", "travel"]


def all_domains():
    """The three Section 6.3 experiment domains, freshly built."""
    return [travel.build_dataset(), culinary.build_dataset(), health.build_dataset()]
