"""Travel recommendation domain (Section 6.3, adapted to Tel Aviv).

The running-example query, executed against a Tel Aviv ontology: activities
at family-friendly attractions with a restaurant nearby.  This is the
paper's *instance-seeking* query — ``$x`` and ``$z`` must bind to instances,
so some discovered MSPs (those stopping at a class such as ``Restaurant``)
are not valid w.r.t. the query, exactly the phenomenon Figure 4a reports
via the separate ``#MSPs`` / ``#valid`` bars.
"""

from __future__ import annotations

from typing import List

from ..crowd.simulation import PlantedPattern
from ..ontology.facts import Fact, fact_set
from ..ontology.graph import Ontology
from ..vocabulary.terms import Element
from .base import DomainDataset

QUERY_TEMPLATE = """
SELECT FACT-SETS
WHERE
  $w subClassOf* Attraction .
  $x instanceOf $w .
  $x inside TelAviv .
  $x hasLabel "family-friendly" .
  $y subClassOf* Activity .
  $z instanceOf Restaurant .
  $z nearBy $x
SATISFYING
  $y+ doAt $x .
  [] eatAt $z .
  MORE
WITH SUPPORT = {threshold}
"""

_ACTIVITY_TREE = {
    "Sport": {
        "Ball Game": {"Basketball": {}, "Beach Volleyball": {}, "Soccer": {},
                      "Tennis": {}, "Matkot": {}},
        "Water Sport": {"Swimming": {}, "Surfing": {}, "Kayaking": {},
                        "Paddleboarding": {}},
        "Running": {},
        "Biking": {},
        "Yoga": {},
        "Climbing": {},
    },
    "Leisure": {
        "Picnic": {},
        "Sunbathing": {},
        "People Watching": {},
        "Kite Flying": {},
        "Reading Outdoors": {},
    },
    "Culture": {"Museum Tour": {}, "Street Art Tour": {}, "Concert": {},
                "Gallery Visit": {}, "Theatre": {}},
    "Animal Activity": {"Feed Ducks": {}, "Pet a Goat": {}, "Bird Watching": {}},
    "Games": {"Chess": {}, "Petanque": {}, "Table Tennis": {}},
    "Wellness": {"Meditation Session": {}, "Outdoor Gym": {}, "Tai Chi": {}},
}

_ATTRACTION_TREE = {
    "Outdoor": {
        "Park": {},
        "Beach": {},
        "Market": {},
        "Promenade": {},
    },
    "Indoor": {
        "Museum": {},
        "Mall": {},
        "Gallery": {},
    },
}

_INSTANCES = {
    "Park": ["HaYarkon Park", "Charles Clore Park", "Meir Garden",
             "Independence Park", "Gan HaPisga", "Dubnov Garden"],
    "Beach": ["Gordon Beach", "Jerusalem Beach", "Hilton Beach", "Alma Beach"],
    "Market": ["Carmel Market", "Jaffa Flea Market", "Levinsky Market"],
    "Museum": ["TA Museum of Art", "Eretz Israel Museum", "Palmach Museum"],
    "Mall": ["Dizengoff Center", "Azrieli Mall"],
    "Promenade": ["Tel Aviv Promenade", "Jaffa Port"],
    "Gallery": ["Gordon Gallery"],
}

_FAMILY_FRIENDLY = [
    "HaYarkon Park",
    "Charles Clore Park",
    "Gordon Beach",
    "Carmel Market",
    "TA Museum of Art",
    "Dizengoff Center",
    "Gan HaPisga",
    "Alma Beach",
    "Levinsky Market",
    "Tel Aviv Promenade",
    "Jaffa Port",
    "Palmach Museum",
    "Azrieli Mall",
]

_RESTAURANTS = {
    # restaurant -> nearby attractions
    "HaKosem": ["Meir Garden", "Dizengoff Center"],
    "Miznon": ["Carmel Market", "Gordon Beach"],
    "Port Said": ["Carmel Market"],
    "Abu Hassan": ["Jaffa Flea Market", "Charles Clore Park", "Jaffa Port"],
    "Cafe Xoho": ["Gordon Beach", "Hilton Beach"],
    "Benedict": ["Gordon Beach", "Dizengoff Center"],
    "Shila": ["Hilton Beach"],
    "Dalida": ["Jaffa Flea Market", "Gan HaPisga"],
    "Agadir": ["HaYarkon Park", "Independence Park"],
    "Cafe Kadosh": ["TA Museum of Art"],
    "Manta Ray": ["Alma Beach", "Charles Clore Park"],
    "Shaffa Bar": ["Jaffa Port", "Gan HaPisga"],
    "Hummus Abu Dubi": ["Levinsky Market"],
    "Cafe Europa": ["Tel Aviv Promenade"],
    "Goocha": ["Tel Aviv Promenade", "Gordon Beach"],
    "Loveat": ["Palmach Museum", "Azrieli Mall"],
    "Max Brenner": ["Azrieli Mall"],
}

_FOODS = {
    "Falafel": "Street Food",
    "Sabich": "Street Food",
    "Shakshuka": "Breakfast Food",
    "Pasta": "Main Dish",
    "Burger": "Main Dish",
    "Salad": "Health Food",
}


def build_ontology() -> Ontology:
    """Assemble the Tel Aviv travel ontology."""
    ontology = Ontology()
    ontology.add(Fact("Place", "subClassOf", "Thing"))
    ontology.add(Fact("Activity", "subClassOf", "Thing"))
    ontology.add(Fact("Food", "subClassOf", "Thing"))
    for name in ("City", "Restaurant", "Attraction"):
        ontology.add(Fact(name, "subClassOf", "Place"))
    ontology.add(Fact("TelAviv", "instanceOf", "City"))

    def add_tree(parent: str, spec: dict) -> None:
        for name, children in spec.items():
            ontology.add(Fact(name, "subClassOf", parent))
            add_tree(name, children)

    add_tree("Activity", _ACTIVITY_TREE)
    add_tree("Attraction", _ATTRACTION_TREE)
    for klass, instances in _INSTANCES.items():
        for instance in instances:
            ontology.add(Fact(instance, "instanceOf", klass))
            ontology.add(Fact(instance, "inside", "TelAviv"))
    for attraction in _FAMILY_FRIENDLY:
        ontology.add_label(attraction, "family-friendly")
    for restaurant, nearby in _RESTAURANTS.items():
        ontology.add(Fact(restaurant, "instanceOf", "Restaurant"))
        for attraction in nearby:
            ontology.add(Fact(restaurant, "nearBy", attraction))
    for food, group in _FOODS.items():
        ontology.add(Fact(group, "subClassOf", "Food"))
        ontology.add(Fact(food, "subClassOf", group))
    ontology.vocabulary.specialize_relation("nearBy", "inside")
    ontology.vocabulary.add_relation("doAt")
    ontology.vocabulary.add_relation("eatAt")
    # terms appearing only in personal histories / MORE advice
    for extra in ("Rent Bikes", "Bike Rental Stand", "Lean on Grass", "Push-ups"):
        ontology.vocabulary.add_element(extra)
    return ontology


def _patterns() -> List[PlantedPattern]:
    """Ground truth: habits the simulated Tel Aviv crowd actually has.

    Supports are staged across the 0.2–0.5 thresholds so the Figure 4a
    sweep produces strictly fewer MSPs as the threshold rises.  Crucially,
    all habits concentrate in the park/beach branches — the paper's crowd
    runs get their efficiency from most of the expanded DAG dying at class
    level after a handful of "never" answers, and a crowd with habits in
    every branch would have no such dead wood.
    """
    return [
        # strong, very specific habits (survive threshold 0.5)
        PlantedPattern(
            fact_set(
                ("Beach Volleyball", "doAt", "Gordon Beach"),
                ("Falafel", "eatAt", "Miznon"),
            ),
            0.62,
        ),
        PlantedPattern(
            fact_set(("Running", "doAt", "HaYarkon Park")),
            0.58,
        ),
        # mid supports (survive 0.3/0.4)
        PlantedPattern(
            fact_set(
                ("Biking", "doAt", "HaYarkon Park"),
                ("Shakshuka", "eatAt", "Agadir"),
                ("Rent Bikes", "doAt", "Bike Rental Stand"),
            ),
            0.44,
        ),
        PlantedPattern(
            fact_set(
                ("Picnic", "doAt", "Charles Clore Park"),
                ("Sabich", "eatAt", "Abu Hassan"),
            ),
            0.37,
        ),
        PlantedPattern(
            fact_set(("Swimming", "doAt", "Gordon Beach")),
            0.41,
        ),
        # weaker habits (only at threshold 0.2)
        PlantedPattern(
            fact_set(("Surfing", "doAt", "Hilton Beach")),
            0.23,
        ),
        PlantedPattern(
            fact_set(
                ("Sunbathing", "doAt", "Alma Beach"),
                ("Salad", "eatAt", "Manta Ray"),
            ),
            0.24,
        ),
        # sibling leaves whose class-level union is significant while the
        # leaves are not: produces class-level (invalid) MSPs
        PlantedPattern(fact_set(("Basketball", "doAt", "Meir Garden")), 0.14),
        PlantedPattern(fact_set(("Soccer", "doAt", "Meir Garden")), 0.14),
        PlantedPattern(fact_set(("Kite Flying", "doAt", "Independence Park")), 0.12),
        PlantedPattern(fact_set(("Sunbathing", "doAt", "Jerusalem Beach")), 0.11),
    ]


def _noise_facts() -> List[Fact]:
    # noise stays inside the alive park/beach branches: the barren market /
    # museum / mall / promenade branches answer "never" and die at class
    # level, as in the paper's crowd runs
    return [
        Fact("Yoga", "doAt", "Independence Park"),
        Fact("Burger", "eatAt", "Benedict"),
        Fact("Bird Watching", "doAt", "HaYarkon Park"),
        Fact("Feed Ducks", "doAt", "HaYarkon Park"),
    ]


def build_dataset() -> DomainDataset:
    """The travel domain, ready for the Figure 4 experiments."""
    ontology = build_ontology()
    return DomainDataset(
        name="travel",
        ontology=ontology,
        query_template=QUERY_TEMPLATE,
        patterns=_patterns(),
        noise_facts=_noise_facts(),
        more_pool=[Fact("Rent Bikes", "doAt", "Bike Rental Stand")],
        irrelevant_values=[
            Element("Kayaking"),
            Element("Climbing"),
            Element("Matkot"),
            Element("Kite Flying"),
        ],
    )
