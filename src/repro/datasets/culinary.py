"""Culinary preferences domain (Section 6.3).

Queries retrieve popular combinations of dishes and drinks — "crowd members
often have a steak with fries and a coke; when they eat muesli with yogurt
for breakfast they drink apple juice".  This is a *class-seeking* query
(both variables range over taxonomy classes), so every MSP is valid, and the
``$x+`` multiplicity lets MSPs combine several dishes (the paper's
steak+fries example).  Of the three domains this one has the largest
assignment DAG.
"""

from __future__ import annotations

from typing import List

from ..crowd.simulation import PlantedPattern
from ..ontology.facts import Fact, fact_set
from ..ontology.graph import Ontology
from ..vocabulary.terms import Element
from .base import DomainDataset

QUERY_TEMPLATE = """
SELECT FACT-SETS
WHERE
  $x subClassOf* Food .
  $y subClassOf* Drink
SATISFYING
  $x+ servedWith $y
WITH SUPPORT = {threshold}
"""

_FOOD_TREE = {
    "Snack": {"Fries": {}, "Onion Rings": {}, "Pretzel": {}, "Nachos": {}, "Popcorn": {}},
    "Main Dish": {
        "Meat Dish": {"Steak": {}, "Schnitzel": {}, "Kebab": {}},
        "Burger": {"Beef Burger": {}, "Veggie Burger": {}},
        "Pizza": {"Margherita": {}, "Pepperoni Pizza": {}},
        "Pasta": {"Spaghetti": {}, "Lasagna": {}},
        "Stew": {"Goulash": {}, "Chili": {}},
    },
    "Breakfast": {
        "Muesli with Yogurt": {},
        "Granola": {},
        "Omelette": {},
        "Pancakes": {},
        "Shakshuka": {},
    },
    "Health Food": {
        "Salad": {"Greek Salad": {}, "Quinoa Salad": {}, "Caesar Salad": {}},
        "Smoothie Bowl": {},
        "Hummus Plate": {},
    },
    "Dessert": {"Ice Cream": {}, "Cheesecake": {}, "Brownie": {}, "Fruit Plate": {}},
}

_DRINK_TREE = {
    "Soft Drink": {"Coke": {}, "Sprite": {}, "Lemonade": {}},
    "Juice": {"Apple Juice": {}, "Orange Juice": {}, "Carrot Juice": {}},
    "Hot Drink": {
        "Coffee": {"Espresso": {}, "Cappuccino": {}, "Latte": {}},
        "Tea": {"Green Tea": {}, "Mint Tea": {}},
    },
    "Alcoholic": {"Beer": {}, "Red Wine": {}, "White Wine": {}},
    "Water": {"Still Water": {}, "Sparkling Water": {}},
}


def build_ontology() -> Ontology:
    ontology = Ontology()
    ontology.add(Fact("Food", "subClassOf", "Consumable"))
    ontology.add(Fact("Drink", "subClassOf", "Consumable"))

    def add_tree(parent: str, spec: dict) -> None:
        for name, children in spec.items():
            ontology.add(Fact(name, "subClassOf", parent))
            add_tree(name, children)

    add_tree("Food", _FOOD_TREE)
    add_tree("Drink", _DRINK_TREE)
    ontology.vocabulary.add_relation("servedWith")
    return ontology


def _patterns() -> List[PlantedPattern]:
    return [
        # the paper's own findings
        PlantedPattern(
            fact_set(
                ("Steak", "servedWith", "Coke"),
                ("Fries", "servedWith", "Coke"),
            ),
            0.55,
        ),
        PlantedPattern(
            fact_set(("Muesli with Yogurt", "servedWith", "Apple Juice")),
            0.47,
        ),
        # other strong pairings
        PlantedPattern(fact_set(("Beef Burger", "servedWith", "Beer")), 0.52),
        PlantedPattern(fact_set(("Shakshuka", "servedWith", "Cappuccino")), 0.38),
        PlantedPattern(fact_set(("Greek Salad", "servedWith", "Lemonade")), 0.33),
        PlantedPattern(
            fact_set(
                ("Margherita", "servedWith", "Sprite"),
                ("Fries", "servedWith", "Sprite"),
            ),
            0.28,
        ),
        PlantedPattern(fact_set(("Cheesecake", "servedWith", "Espresso")), 0.26),
        PlantedPattern(fact_set(("Hummus Plate", "servedWith", "Mint Tea")), 0.22),
        # sibling leaves that merge into class-level MSPs at low thresholds
        PlantedPattern(fact_set(("Spaghetti", "servedWith", "Red Wine")), 0.13),
        PlantedPattern(fact_set(("Lasagna", "servedWith", "Red Wine")), 0.13),
        PlantedPattern(fact_set(("Goulash", "servedWith", "Beer")), 0.12),
        PlantedPattern(fact_set(("Chili", "servedWith", "Beer")), 0.12),
    ]


def _noise_facts() -> List[Fact]:
    return [
        Fact("Popcorn", "servedWith", "Coke"),
        Fact("Pancakes", "servedWith", "Orange Juice"),
        Fact("Ice Cream", "servedWith", "Still Water"),
        Fact("Nachos", "servedWith", "Beer"),
        Fact("Brownie", "servedWith", "Latte"),
        Fact("Omelette", "servedWith", "Green Tea"),
    ]


def build_dataset() -> DomainDataset:
    """The culinary domain, ready for the Figure 4 experiments."""
    return DomainDataset(
        name="culinary",
        ontology=build_ontology(),
        query_template=QUERY_TEMPLATE,
        patterns=_patterns(),
        noise_facts=_noise_facts(),
        irrelevant_values=[Element("Alcoholic"), Element("Dessert")],
    )
