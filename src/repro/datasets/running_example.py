"""The paper's running example: Figure 1, Figure 2 and Table 3.

Everything here mirrors the paper exactly, so tests can assert the paper's
own numbers: ``supp_u1`` of Example 2.7, the 5/12 vs 1/3 averages of
Example 3.1, and the Figure 3 lattice around (Central Park, Biking).
"""

from __future__ import annotations

from typing import Dict, List

from ..crowd.personal_db import PersonalDatabase
from ..ontology.facts import Fact
from ..ontology.graph import Ontology

#: The Figure 2 query (verbatim, with the paper's formatting).
SAMPLE_QUERY = """
SELECT FACT-SETS
WHERE
  $w subClassOf* Attraction.
  $x instanceOf $w.
  $x inside NYC.
  $x hasLabel "child-friendly".
  $y subClassOf* Activity .
  $z instanceOf Restaurant.
  $z nearBy $x
SATISFYING
  $y+ doAt $x .
  [] eatAt $z.
  MORE
WITH SUPPORT = 0.4
"""

#: The grey-highlighted fragment used in Section 4's walkthrough (Figure 3):
#: just the activity-at-attraction part, without the nearby restaurant.
FRAGMENT_QUERY = """
SELECT FACT-SETS
WHERE
  $w subClassOf* Attraction.
  $x instanceOf $w.
  $x inside NYC.
  $x hasLabel "child-friendly".
  $y subClassOf* Activity
SATISFYING
  $y+ doAt $x
WITH SUPPORT = 0.4
"""


def build_ontology() -> Ontology:
    """The Figure 1 sample ontology."""
    ontology = Ontology()
    triples = [
        # top level
        ("Place", "subClassOf", "Thing"),
        ("Activity", "subClassOf", "Thing"),
        # places
        ("City", "subClassOf", "Place"),
        ("Restaurant", "subClassOf", "Place"),
        ("Attraction", "subClassOf", "Place"),
        ("Outdoor", "subClassOf", "Attraction"),
        ("Indoor", "subClassOf", "Attraction"),
        ("Zoo", "subClassOf", "Outdoor"),
        ("Park", "subClassOf", "Outdoor"),
        ("Swimming pool", "subClassOf", "Indoor"),
        ("NYC", "instanceOf", "City"),
        ("Central Park", "instanceOf", "Park"),
        ("Madison Square", "instanceOf", "Park"),
        ("Bronx Zoo", "instanceOf", "Zoo"),
        ("Maoz Veg", "instanceOf", "Restaurant"),
        ("Pine", "instanceOf", "Restaurant"),
        ("Central Park", "inside", "NYC"),
        ("Bronx Zoo", "inside", "NYC"),
        ("Madison Square", "inside", "NYC"),
        ("Maoz Veg", "nearBy", "Central Park"),
        ("Pine", "nearBy", "Bronx Zoo"),
        # activities
        ("Sport", "subClassOf", "Activity"),
        ("Feed a monkey", "subClassOf", "Activity"),
        ("Water Sport", "subClassOf", "Sport"),
        ("Ball Game", "subClassOf", "Sport"),
        ("Biking", "subClassOf", "Sport"),
        ("Basketball", "subClassOf", "Ball Game"),
        ("Baseball", "subClassOf", "Ball Game"),
        ("Swimming", "subClassOf", "Water Sport"),
        ("Water Polo", "subClassOf", "Water Sport"),
        # food (appears in transactions via eatAt facts)
        ("Food", "subClassOf", "Thing"),
        ("Falafel", "subClassOf", "Food"),
        ("Pasta", "subClassOf", "Food"),
    ]
    for subject, relation, obj in triples:
        ontology.add(Fact(subject, relation, obj))
    # Figure 1's "nearBy ≤ inside" annotation
    ontology.vocabulary.specialize_relation("nearBy", "inside")
    # relations used only in personal histories
    ontology.vocabulary.add_relation("doAt")
    ontology.vocabulary.add_relation("eatAt")
    # elements that appear in transactions but not in the ontology (§2)
    ontology.vocabulary.add_element("Boathouse")
    ontology.vocabulary.add_element("Rent Bikes")
    # labels for the child-friendly filter
    ontology.add_label("Central Park", "child-friendly")
    ontology.add_label("Bronx Zoo", "child-friendly")
    return ontology


def build_personal_databases() -> Dict[str, PersonalDatabase]:
    """Table 3: the personal DBs of crowd members u1 and u2."""
    d_u1 = PersonalDatabase.parse(
        [
            "Basketball doAt Central Park. Falafel eatAt Maoz Veg",
            "Feed a monkey doAt Bronx Zoo. Pasta eatAt Pine",
            "Biking doAt Central Park. Rent Bikes doAt Boathouse. "
            "Falafel eatAt Maoz Veg",
            "Baseball doAt Central Park. Biking doAt Central Park. "
            "Rent Bikes doAt Boathouse. Falafel eatAt Maoz Veg",
            "Feed a monkey doAt Bronx Zoo. Pasta eatAt Pine",
            "Feed a monkey doAt Bronx Zoo",
        ]
    )
    d_u2 = PersonalDatabase.parse(
        [
            "Baseball doAt Central Park. Biking doAt Central Park. "
            "Rent Bikes doAt Boathouse. Falafel eatAt Maoz Veg",
            "Feed a monkey doAt Bronx Zoo. Pasta eatAt Pine",
        ],
        prefix="T",
    )
    return {"u1": d_u1, "u2": d_u2}


def more_pool() -> List[Fact]:
    """Candidate MORE facts (in the full system the crowd proposes these)."""
    return [Fact("Rent Bikes", "doAt", "Boathouse")]
