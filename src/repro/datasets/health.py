"""Self-treatment domain (Section 6.3).

Queries find what crowd members take to relieve common illness symptoms —
information for health researchers.  Like the culinary domain this is a
class-seeking query (all MSPs valid); it has the smallest assignment DAG
and required the fewest questions in the paper's runs.
"""

from __future__ import annotations

from typing import List

from ..crowd.simulation import PlantedPattern
from ..ontology.facts import Fact, fact_set
from ..ontology.graph import Ontology
from ..vocabulary.terms import Element
from .base import DomainDataset

QUERY_TEMPLATE = """
SELECT FACT-SETS
WHERE
  $s subClassOf* Symptom .
  $r subClassOf* Remedy
SATISFYING
  $r takeFor $s
WITH SUPPORT = {threshold}
"""

_SYMPTOM_TREE = {
    "Pain": {
        "Headache": {"Migraine": {}, "Tension Headache": {}},
        "Back Pain": {},
        "Joint Pain": {},
    },
    "Cold Symptom": {"Cough": {}, "Sore Throat": {}, "Runny Nose": {}},
    "Digestive Issue": {"Heartburn": {}, "Nausea": {}},
    "Sleep Issue": {"Insomnia": {}, "Fatigue": {}},
}

_REMEDY_TREE = {
    "Medication": {
        "Painkiller": {"Ibuprofen": {}, "Paracetamol": {}, "Aspirin": {}},
        "Antacid": {},
        "Cough Syrup": {},
    },
    "Home Remedy": {
        "Tea with Honey": {},
        "Ginger Tea": {},
        "Chicken Soup": {},
        "Saline Rinse": {},
    },
    "Practice": {"Rest": {}, "Meditation": {}, "Stretching": {}, "Warm Bath": {}},
}


def build_ontology() -> Ontology:
    ontology = Ontology()
    ontology.add(Fact("Symptom", "subClassOf", "Condition"))
    ontology.add(Fact("Remedy", "subClassOf", "Treatment"))

    def add_tree(parent: str, spec: dict) -> None:
        for name, children in spec.items():
            ontology.add(Fact(name, "subClassOf", parent))
            add_tree(name, children)

    add_tree("Symptom", _SYMPTOM_TREE)
    add_tree("Remedy", _REMEDY_TREE)
    ontology.vocabulary.add_relation("takeFor")
    return ontology


def _patterns() -> List[PlantedPattern]:
    return [
        PlantedPattern(fact_set(("Ibuprofen", "takeFor", "Tension Headache")), 0.56),
        PlantedPattern(fact_set(("Tea with Honey", "takeFor", "Sore Throat")), 0.51),
        PlantedPattern(fact_set(("Rest", "takeFor", "Migraine")), 0.42),
        PlantedPattern(fact_set(("Chicken Soup", "takeFor", "Runny Nose")), 0.34),
        PlantedPattern(fact_set(("Stretching", "takeFor", "Back Pain")), 0.31),
        PlantedPattern(fact_set(("Antacid", "takeFor", "Heartburn")), 0.25),
        PlantedPattern(fact_set(("Ginger Tea", "takeFor", "Nausea")), 0.22),
        # sibling leaves merging into class-level MSPs at low thresholds
        PlantedPattern(fact_set(("Paracetamol", "takeFor", "Fatigue")), 0.12),
        PlantedPattern(fact_set(("Aspirin", "takeFor", "Fatigue")), 0.12),
        PlantedPattern(fact_set(("Meditation", "takeFor", "Insomnia")), 0.13),
        PlantedPattern(fact_set(("Warm Bath", "takeFor", "Insomnia")), 0.13),
    ]


def _noise_facts() -> List[Fact]:
    return [
        Fact("Saline Rinse", "takeFor", "Runny Nose"),
        Fact("Cough Syrup", "takeFor", "Cough"),
        Fact("Rest", "takeFor", "Fatigue"),
        Fact("Ibuprofen", "takeFor", "Joint Pain"),
    ]


def build_dataset() -> DomainDataset:
    """The self-treatment domain, ready for the Figure 4 experiments."""
    return DomainDataset(
        name="self-treatment",
        ontology=build_ontology(),
        query_template=QUERY_TEMPLATE,
        patterns=_patterns(),
        noise_facts=_noise_facts(),
        irrelevant_values=[Element("Meditation")],
    )
