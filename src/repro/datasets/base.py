"""Shared structure for the three Section 6.3 experiment domains."""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..crowd.member import CrowdMember
from ..crowd.simulation import CrowdSimulator, PlantedPattern
from ..ontology.facts import Fact
from ..ontology.graph import Ontology


class DomainDataset:
    """One experiment domain: ontology + query + planted ground truth."""

    def __init__(
        self,
        name: str,
        ontology: Ontology,
        query_template: str,
        patterns: Sequence[PlantedPattern],
        noise_facts: Sequence[Fact] = (),
        more_pool: Sequence[Fact] = (),
        irrelevant_values: Sequence = (),
    ):
        self.name = name
        self.ontology = ontology
        self._query_template = query_template
        self.patterns = list(patterns)
        self.noise_facts = list(noise_facts)
        self.more_pool = list(more_pool)
        self.irrelevant_values = list(irrelevant_values)

    def query(self, threshold: float = 0.2) -> str:
        """The domain's OASSIS-QL query at the given support threshold."""
        return self._query_template.format(threshold=threshold)

    def simulator(self, seed: int = 0) -> CrowdSimulator:
        return CrowdSimulator(
            self.ontology.vocabulary,
            self.patterns,
            noise_facts=self.noise_facts,
            seed=seed,
        )

    def build_crowd(
        self,
        size: int = 40,
        seed: int = 0,
        transactions: int = 40,
        specialization_ratio: float = 0.12,
        pruning_ratio: float = 0.13,
        noise: float = 0.0,
        quantize: bool = False,
        max_questions: Optional[int] = None,
        more_tip_ratio: float = 0.15,
    ) -> List[CrowdMember]:
        """A simulated crowd whose behaviour matches the paper's ratios."""
        return self.simulator(seed).build_population(
            size,
            transactions=transactions,
            noise=noise,
            quantize=quantize,
            specialization_ratio=specialization_ratio,
            pruning_ratio=pruning_ratio,
            irrelevant_values=self.irrelevant_values,
            max_questions=max_questions,
            more_tip_ratio=more_tip_ratio,
        )
