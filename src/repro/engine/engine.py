"""OassisEngine: the full query-evaluation pipeline (Section 6.1).

Ties together the OASSIS-QL parser, the SPARQL engine, the lazy assignment
generator, the crowd adapters and the mining algorithms::

    engine = OassisEngine(ontology, config=EngineConfig(max_values_per_var=2))
    result = engine.execute(query_text, members)
    print(result.render())

``execute`` runs the multi-user algorithm against real/simulated crowd
members; ``execute_single_user`` runs Algorithm 1 against one member;
``replay`` re-evaluates a query at a different threshold from cached
answers (the Section 6.3 threshold sweep); ``session_manager`` opens the
concurrent crowd-serving facade of :mod:`repro.service`.

Evaluation policy lives in one :class:`~repro.engine.config.EngineConfig`;
every public method takes keyword-only per-call overrides defaulting to
the configured values.  The pre-redesign signatures (loose constructor
kwargs, positional ``sample_size``/``cache``/... tails) still work through
shims that emit one :class:`DeprecationWarning` per usage pattern.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple, Union

from ..assignments.assignment import Assignment
from ..assignments.generator import QueryAssignmentSpace
from ..crowd.aggregator import FixedSampleAggregator
from ..crowd.cache import CrowdCache
from ..crowd.member import CrowdMember
from ..crowd.questions import ConcreteQuestion
from ..mining.multiuser import MultiUserMiner
from ..mining.replay import ReplayResult, replay_from_cache
from ..mining.vertical import vertical_mine
from ..nlg.templates import QuestionTemplates
from ..oassisql.ast import Query
from ..oassisql.parser import parse_query
from ..oassisql.validator import ensure_valid
from ..observability import get_tracer, span as _obs_span
from ..ontology.facts import Fact
from ..ontology.graph import Ontology
from .adapters import MemberUser
from .config import EngineConfig, warn_deprecated
from .queue_manager import QueueManager
from .results import QueryResult, build_result

_LEGACY_INIT_KWARGS = ("templates", "max_values_per_var", "max_more_facts")


def _bind_legacy(method: str, names: Tuple[str, ...], values: Tuple, explicit: Dict):
    """Map deprecated positional tail args onto their keyword names.

    ``explicit`` holds the keyword-only values the caller *did* pass; a
    positional value for an already-given keyword is a genuine TypeError,
    not something to paper over.
    """
    if len(values) > len(names):
        raise TypeError(
            f"{method}() takes at most {len(names)} legacy positional "
            f"arguments ({len(values)} given)"
        )
    warn_deprecated(
        method,
        f"positional arguments after the required ones are deprecated for "
        f"{method}(); pass {', '.join(names[:len(values)])} as keywords "
        f"(see repro.engine.EngineConfig)",
    )
    for name, value in zip(names, values):
        if explicit.get(name) is not None:
            raise TypeError(f"{method}() got multiple values for {name!r}")
        explicit[name] = value
    return explicit


class OassisEngine:
    """Crowd-assisted evaluation of OASSIS-QL queries over an ontology."""

    def __init__(
        self,
        ontology: Ontology,
        config: Optional[EngineConfig] = None,
        **legacy,
    ):
        if isinstance(config, QuestionTemplates):
            # pre-redesign second positional argument was the templates
            warn_deprecated(
                "OassisEngine.__init__/templates",
                "passing templates positionally to OassisEngine is "
                "deprecated; use OassisEngine(ontology, "
                "config=EngineConfig(templates=...))",
            )
            legacy.setdefault("templates", config)
            config = None
        if legacy:
            unknown = set(legacy) - set(_LEGACY_INIT_KWARGS)
            if unknown:
                raise TypeError(
                    f"OassisEngine() got unexpected keyword arguments "
                    f"{sorted(unknown)}"
                )
            warn_deprecated(
                "OassisEngine.__init__",
                "OassisEngine(ontology, templates=..., max_values_per_var=..., "
                "max_more_facts=...) is deprecated; pass "
                "config=EngineConfig(...) instead",
            )
            config = (config or EngineConfig()).override(**legacy)
        self.ontology = ontology
        self.config = config if config is not None else EngineConfig()

    # ----------------------------------------------------- config accessors

    @property
    def templates(self) -> QuestionTemplates:
        return self.config.templates

    @property
    def max_values_per_var(self) -> int:
        return self.config.max_values_per_var

    @property
    def max_more_facts(self) -> int:
        return self.config.max_more_facts

    # -------------------------------------------------------------- parsing

    def parse(self, text: str) -> Query:
        """Parse and validate a query against this engine's ontology."""
        with _obs_span("engine.parse"):
            query = parse_query(text)
            ensure_valid(query, self.ontology)
        return query

    def _as_query(self, query: Union[str, Query]) -> Query:
        return self.parse(query) if isinstance(query, str) else query

    def build_space(
        self, query: Union[str, Query], more_pool: Iterable[Fact] = ()
    ) -> QueryAssignmentSpace:
        """The lazy assignment space for ``query``."""
        parsed = self._as_query(query)
        with _obs_span("lattice.build"):
            return QueryAssignmentSpace(
                self.ontology,
                parsed,
                more_pool=more_pool,
                max_values_per_var=self.config.max_values_per_var,
                max_more_facts=self.config.max_more_facts,
            )

    # ------------------------------------------------------------ execution

    @staticmethod
    def _push_workload_hints(
        space: QueryAssignmentSpace, members: Sequence[CrowdMember]
    ) -> None:
        """Tell each member database the query's candidate fan-out.

        The adaptive support backend weighs the fan-out (successors per
        frontier node — how many structurally-similar candidates will
        share witness masks) in its scan-vs-index decision.  Members whose
        databases predate the hint API are skipped.
        """
        roots = space.roots()
        if not roots:
            return
        fan_out = sum(len(space.successors(r)) for r in roots) / len(roots)
        for member in members:
            database = getattr(member, "database", None)
            if database is not None and hasattr(database, "set_workload_hint"):
                database.set_workload_hint(fan_out)

    def execute(
        self,
        query: Union[str, Query],
        members: Sequence[CrowdMember],
        *legacy,
        sample_size: Optional[int] = None,
        cache: Optional[CrowdCache] = None,
        more_pool: Optional[Iterable[Fact]] = None,
        include_invalid: Optional[bool] = None,
        max_total_questions: Optional[int] = None,
    ) -> QueryResult:
        """Evaluate with the multi-user algorithm over ``members``."""
        if legacy:
            bound = _bind_legacy(
                "OassisEngine.execute",
                (
                    "sample_size",
                    "cache",
                    "more_pool",
                    "include_invalid",
                    "max_total_questions",
                ),
                legacy,
                dict(
                    sample_size=sample_size,
                    cache=cache,
                    more_pool=more_pool,
                    include_invalid=include_invalid,
                    max_total_questions=max_total_questions,
                ),
            )
            sample_size = bound["sample_size"]
            cache = bound["cache"]
            more_pool = bound["more_pool"]
            include_invalid = bound["include_invalid"]
            max_total_questions = bound["max_total_questions"]
        run = self.config.override(
            sample_size=sample_size,
            include_invalid=include_invalid,
            max_total_questions=max_total_questions,
        )
        tracer = get_tracer()
        with _obs_span("engine.execute"):
            parsed = self._as_query(query)
            space = self.build_space(
                parsed, more_pool=more_pool if more_pool is not None else ()
            )
            aggregator = FixedSampleAggregator(
                parsed.threshold, sample_size=run.sample_size
            )
            self._push_workload_hints(space, members)
            users = [MemberUser(member, space) for member in members]
            miner = MultiUserMiner(
                space,
                users,
                aggregator,
                cache=cache,
                max_total_questions=run.max_total_questions,
            )
            mined = miner.run()
            with _obs_span("result.build"):
                result = build_result(
                    parsed,
                    space,
                    mined.msps,
                    mined.questions,
                    support_of=aggregator.average_support,
                    include_invalid=run.include_invalid,
                )
        if tracer is not None:
            # refresh after the engine.execute span closed so the report
            # includes its wall time
            result.stats = tracer.report()
        return result

    def execute_single_user(
        self,
        query: Union[str, Query],
        member: CrowdMember,
        *legacy,
        more_pool: Optional[Iterable[Fact]] = None,
        include_invalid: Optional[bool] = None,
        max_questions: Optional[int] = None,
    ) -> QueryResult:
        """Evaluate with Algorithm 1 against a single member."""
        if legacy:
            bound = _bind_legacy(
                "OassisEngine.execute_single_user",
                ("more_pool", "include_invalid", "max_questions"),
                legacy,
                dict(
                    more_pool=more_pool,
                    include_invalid=include_invalid,
                    max_questions=max_questions,
                ),
            )
            more_pool = bound["more_pool"]
            include_invalid = bound["include_invalid"]
            max_questions = bound["max_questions"]
        run = self.config.override(include_invalid=include_invalid)
        tracer = get_tracer()
        with _obs_span("engine.execute"):
            parsed = self._as_query(query)
            space = self.build_space(
                parsed, more_pool=more_pool if more_pool is not None else ()
            )
            self._push_workload_hints(space, [member])
            answers: Dict[Assignment, float] = {}

            def oracle(node: Assignment) -> float:
                question = ConcreteQuestion(node, space.instantiate(node))
                support = member.answer_concrete(question).support
                answers[node] = support
                return support

            mined = vertical_mine(
                space, oracle, parsed.threshold, max_questions=max_questions
            )
            with _obs_span("result.build"):
                result = build_result(
                    parsed,
                    space,
                    mined.msps,
                    mined.questions,
                    support_of=answers.get,
                    include_invalid=run.include_invalid,
                )
        if tracer is not None:
            result.stats = tracer.report()
        return result

    def replay(
        self,
        query: Union[str, Query],
        member_ids: Sequence[str],
        cache: CrowdCache,
        *legacy,
        threshold: Optional[float] = None,
        sample_size: Optional[int] = None,
        include_invalid: Optional[bool] = None,
        more_pool: Optional[Iterable[Fact]] = None,
        space: Optional[QueryAssignmentSpace] = None,
    ) -> Tuple[QueryResult, ReplayResult]:
        """Re-evaluate from cached answers — the Section 6.3 threshold sweep.

        Crowd answers are independent of the support threshold, so a query
        executed once (typically at the lowest threshold of interest) can
        be re-evaluated at any higher threshold from its
        :class:`~repro.crowd.cache.CrowdCache` alone.  The crowd is never
        contacted: the traversal consumes the cached per-assignment answer
        lists, and the returned mining result's ``questions`` field counts
        only the cached answers actually *used* at the new threshold (the
        Section 6.3 accounting).  The typical sweep::

            cache = CrowdCache()
            engine.execute(query, members, cache=cache)       # asks the crowd
            for threshold in (0.3, 0.4, 0.5):
                result, replayed = engine.replay(
                    query, member_ids, cache, threshold=threshold
                )

        ``threshold=None`` replays at the query's own threshold.
        ``member_ids`` is accepted for interface symmetry with
        :meth:`execute` but not needed — replay aggregates whatever answers
        the cache holds per assignment.  The second element of the returned
        pair is the :class:`~repro.mining.replay.ReplayResult`, whose
        ``cache_misses`` / ``nodes_visited`` expose the replay accounting.

        Pass the original run's ``space`` to retain crowd-proposed MORE
        extensions (a fresh space would not regenerate them).  See
        ``docs/LANGUAGE.md`` ("Threshold sweeps") and
        ``docs/OBSERVABILITY.md`` for the cost model behind this API.
        """
        if legacy:
            bound = _bind_legacy(
                "OassisEngine.replay",
                ("threshold", "sample_size", "include_invalid", "more_pool", "space"),
                legacy,
                dict(
                    threshold=threshold,
                    sample_size=sample_size,
                    include_invalid=include_invalid,
                    more_pool=more_pool,
                    space=space,
                ),
            )
            threshold = bound["threshold"]
            sample_size = bound["sample_size"]
            include_invalid = bound["include_invalid"]
            more_pool = bound["more_pool"]
            space = bound["space"]
        run = self.config.override(
            sample_size=sample_size, include_invalid=include_invalid
        )
        tracer = get_tracer()
        with _obs_span("engine.replay"):
            parsed = self._as_query(query)
            if threshold is not None:
                satisfying = parsed.satisfying
                satisfying = type(satisfying)(
                    satisfying.meta_facts, satisfying.more, threshold
                )
                parsed = Query(
                    parsed.select_format, parsed.select_all, parsed.where, satisfying
                )
            if space is None:
                space = self.build_space(
                    parsed, more_pool=more_pool if more_pool is not None else ()
                )
            mined = replay_from_cache(
                space, cache, parsed.threshold, sample_size=run.sample_size
            )

            def support_of(node):
                answers = cache.answers_for(node)[: run.sample_size]
                if not answers:
                    return None
                return sum(s for _, s in answers) / len(answers)

            with _obs_span("result.build"):
                result = build_result(
                    parsed,
                    space,
                    mined.msps,
                    mined.questions,
                    support_of=support_of,
                    include_invalid=run.include_invalid,
                )
        if tracer is not None:
            result.stats = tracer.report()
        return result, mined

    def screen_members(
        self,
        query: Union[str, Query],
        members: Sequence[CrowdMember],
        *legacy,
        probes_per_member: int = 8,
        tolerance: float = 0.05,
        max_violation_ratio: float = 0.2,
    ):
        """Consistency-screen members before mining (Section 4.2).

        Each member answers a few *calibration* questions along a
        general→specific chain of the query's assignment space; support
        monotonicity (a specialization can never be more frequent than its
        generalization) flags spammers.  Returns ``(kept, flagged)``.
        """
        from ..crowd.selection import filter_members

        if legacy:
            bound = _bind_legacy(
                "OassisEngine.screen_members",
                ("probes_per_member", "tolerance", "max_violation_ratio"),
                legacy,
                dict(probes_per_member=None, tolerance=None, max_violation_ratio=None),
            )
            if bound["probes_per_member"] is not None:
                probes_per_member = bound["probes_per_member"]
            if bound["tolerance"] is not None:
                tolerance = bound["tolerance"]
            if bound["max_violation_ratio"] is not None:
                max_violation_ratio = bound["max_violation_ratio"]
        parsed = self._as_query(query)
        space = self.build_space(parsed)
        probes = []
        frontier = list(space.roots())
        while frontier and len(probes) < probes_per_member:
            node = frontier.pop(0)
            probes.append(node)
            successors = space.successors(node)
            if successors:
                frontier.append(successors[0])
        answers_by_member = {}
        for member in members:
            answers = []
            for probe in probes:
                question = ConcreteQuestion(probe, space.instantiate(probe))
                answers.append((probe, member.answer_concrete(question).support))
            answers_by_member[member.member_id] = answers
        flagged_ids = filter_members(
            answers_by_member,
            space.leq,
            tolerance=tolerance,
            max_violation_ratio=max_violation_ratio,
        )
        kept = [m for m in members if m.member_id not in flagged_ids]
        flagged = [m for m in members if m.member_id in flagged_ids]
        return kept, flagged

    # --------------------------------------------------------- serving hooks

    def queue_manager(
        self,
        query: Union[str, Query],
        *legacy,
        sample_size: Optional[int] = None,
        cache: Optional[CrowdCache] = None,
        more_pool: Optional[Iterable[Fact]] = None,
    ) -> QueueManager:
        """An interactive QueueManager for UI-style integration."""
        if legacy:
            bound = _bind_legacy(
                "OassisEngine.queue_manager",
                ("sample_size", "cache", "more_pool"),
                legacy,
                dict(sample_size=sample_size, cache=cache, more_pool=more_pool),
            )
            sample_size = bound["sample_size"]
            cache = bound["cache"]
            more_pool = bound["more_pool"]
        run = self.config.override(sample_size=sample_size)
        parsed = self._as_query(query)
        space = self.build_space(
            parsed, more_pool=more_pool if more_pool is not None else ()
        )
        aggregator = FixedSampleAggregator(
            parsed.threshold, sample_size=run.sample_size
        )
        return QueueManager(
            space, aggregator, cache=cache, templates=self.config.templates
        )

    def session_manager(self, **options):
        """A :class:`~repro.service.SessionManager` serving this engine.

        The facade into :mod:`repro.service`: host many concurrent query
        sessions over this engine's ontology and multiplex crowd members
        across them with batched dispatch, deadlines and retries.  Keyword
        options are forwarded to the :class:`~repro.service.ServiceConfig`
        (``question_timeout``, ``max_attempts``, ``in_flight_limit``, ...).
        """
        from ..service import SessionManager

        return SessionManager(self, **options)

    def shard_coordinator(self, dataset, **options):
        """A :class:`~repro.service.shard.ShardCoordinator` on this engine.

        The process-sharded counterpart of :meth:`session_manager`:
        partitions simulated crowd members across worker processes and
        serves sessions through them, with this engine owning parsing,
        lattice construction and MSP tracking.  ``dataset`` is the
        :class:`~repro.datasets.base.DomainDataset` the worker processes
        rebuild their members from; keyword options are forwarded to the
        coordinator (``shards``, ``crowd_size``, ``sample_size``, ...).
        """
        from ..service.shard import ShardCoordinator

        return ShardCoordinator(dataset, engine=self, **options)
