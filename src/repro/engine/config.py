"""EngineConfig: the single knob surface of the engine facade.

Before the API redesign every :class:`~repro.engine.engine.OassisEngine`
entry point grew its own drifting argument list (``sample_size`` here,
``max_more_facts`` there, ``include_invalid`` in three places).  All
evaluation-policy knobs now live in one frozen dataclass; the engine
methods take keyword-only per-call *overrides* that default to the
configured values.  The old signatures keep working through thin shims
that emit one :class:`DeprecationWarning` per usage pattern per process
(see :func:`warn_deprecated`).

    from repro import EngineConfig, OassisEngine

    engine = OassisEngine(ontology, config=EngineConfig(max_values_per_var=2))
    result = engine.execute(query, members)            # sample_size from config
    result = engine.execute(query, members, sample_size=7)  # per-call override
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Optional, Set

from ..nlg.templates import DEFAULT_TEMPLATES, QuestionTemplates


@dataclass(frozen=True)
class EngineConfig:
    """Evaluation policy for one :class:`OassisEngine`.

    * ``templates`` — natural-language question templates;
    * ``max_values_per_var`` / ``max_more_facts`` — assignment-space caps
      (lattice width controls);
    * ``sample_size`` — answers the aggregator collects per assignment;
    * ``include_invalid`` — keep invalid MSPs in query results;
    * ``max_total_questions`` — global crowd budget (None = unbounded).
    """

    templates: QuestionTemplates = field(default=DEFAULT_TEMPLATES)
    max_values_per_var: int = 3
    max_more_facts: int = 1
    sample_size: int = 5
    include_invalid: bool = False
    max_total_questions: Optional[int] = None

    def override(self, **changes) -> "EngineConfig":
        """A copy with non-None ``changes`` applied (None = keep current)."""
        effective = {k: v for k, v in changes.items() if v is not None}
        return replace(self, **effective) if effective else self


# ------------------------------------------------------------- deprecation

#: usage-pattern keys that already warned this process (warn once each)
_warned: Set[str] = set()


def warn_deprecated(key: str, message: str) -> None:
    """Emit ``DeprecationWarning`` for ``key`` once per process."""
    if key in _warned:
        return
    _warned.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=3)


def reset_deprecation_warnings() -> None:
    """Forget which deprecation warnings fired (test isolation hook)."""
    _warned.clear()
