"""Adapters connecting crowd members to the mining layer.

The mining algorithms speak :class:`~repro.mining.multiuser.UserOracle`
(opaque nodes); crowd members speak fact-sets.  :class:`MemberUser` bridges
the two by instantiating assignments against the query's SATISFYING clause
before handing them to the member.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..assignments.assignment import Assignment
from ..assignments.generator import QueryAssignmentSpace
from ..crowd.member import CrowdMember
from ..crowd.questions import (
    ConcreteQuestion,
    NoneOfTheseAnswer,
    SpecializationAnswer,
    SpecializationQuestion,
)
from ..mining.multiuser import UserOracle
from ..vocabulary.terms import Term


class MemberUser(UserOracle[Assignment]):
    """A :class:`CrowdMember` seen through the miner's oracle interface."""

    def __init__(self, member: CrowdMember, space: QueryAssignmentSpace):
        super().__init__(member.member_id)
        self.member = member
        self.space = space

    def willing(self) -> bool:
        return self.member.willing_to_answer()

    def support(self, node: Assignment) -> Optional[float]:
        question = ConcreteQuestion(node, self.space.instantiate(node))
        return self.member.answer_concrete(question).support

    def wants_specialization(self) -> bool:
        return self.member.wants_specialization()

    def choose_specialization(
        self, node: Assignment, candidates: Sequence[Assignment]
    ) -> Optional[Tuple[Assignment, float]]:
        question = SpecializationQuestion(
            node, self.space.instantiate(node), candidates
        )
        answer = self.member.answer_specialization(question, self.space.instantiate)
        if isinstance(answer, SpecializationAnswer):
            return (answer.chosen, answer.support)
        if isinstance(answer, NoneOfTheseAnswer):
            return None
        raise TypeError(f"unexpected specialization answer {answer!r}")

    def prune_value(self, node: Assignment) -> Optional[Term]:
        return self.member.prunable_value(node)

    def more_tip(self, node: Assignment):
        return self.member.suggest_more_fact(self.space.instantiate(node))

    def matches_prune(self, node: Assignment, token: object) -> bool:
        if not isinstance(token, Term):
            return False
        vocabulary = self.member.vocabulary
        for values in node.values.values():
            for value in values:
                if vocabulary.leq(token, value):
                    return True
        for fact in node.more:
            if vocabulary.leq(token, fact.subject) or vocabulary.leq(token, fact.obj):
                return True
        return False
