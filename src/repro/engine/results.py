"""Query results: MSP assignments rendered per the SELECT statement."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..assignments.assignment import Assignment
from ..assignments.generator import QueryAssignmentSpace
from ..oassisql.ast import Query
from ..observability import get_tracer
from ..ontology.facts import FactSet


class ResultRow:
    """One answer: an MSP assignment with its fact-set and metadata."""

    def __init__(
        self,
        assignment: Assignment,
        fact_set: FactSet,
        support: Optional[float],
        valid: bool,
    ):
        self.assignment = assignment
        self.fact_set = fact_set
        self.support = support
        self.valid = valid

    def variables(self) -> Dict[str, List[str]]:
        """Visible variable bindings (hidden blank variables dropped)."""
        return {
            name: sorted(v.name for v in values)
            for name, values in self.assignment.values.items()
            if not name.startswith("__")
        }

    def __repr__(self) -> str:
        support = "?" if self.support is None else f"{self.support:.3f}"
        return f"ResultRow({self.fact_set!r}, support={support}, valid={self.valid})"


class QueryResult:
    """The full result of evaluating an OASSIS-QL query.

    When the evaluation ran under an active observability tracer (see
    :mod:`repro.observability`), ``stats`` holds the machine-readable
    report — counters, derived headline metrics and the span tree — so
    benchmarks can assert on counter values instead of re-deriving them.
    It is None when tracing was disabled.
    """

    def __init__(
        self,
        query: Query,
        rows: Sequence[ResultRow],
        questions: int,
        all_msps: Sequence[Assignment],
        stats: Optional[Dict] = None,
    ):
        self.query = query
        self.rows = list(rows)
        self.questions = questions
        self.all_msps = list(all_msps)
        self.stats = stats

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def fact_sets(self) -> List[FactSet]:
        return [row.fact_set for row in self.rows]

    def render(self) -> str:
        """Human-readable report, one MSP per block."""
        lines: List[str] = [f"{len(self.rows)} answer(s), {self.questions} question(s) asked"]
        for index, row in enumerate(self.rows, start=1):
            support = "?" if row.support is None else f"{row.support:.2f}"
            lines.append(f"[{index}] support={support} valid={row.valid}")
            for fact in sorted(row.fact_set):
                lines.append(f"    {fact}")
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        """A JSON-serializable summary of the result."""
        payload = {
            "questions": self.questions,
            "answers": [
                {
                    "support": row.support,
                    "valid": row.valid,
                    "variables": row.variables(),
                    "facts": [str(f) for f in sorted(row.fact_set)],
                }
                for row in self.rows
            ],
        }
        if self.stats is not None:
            payload["stats"] = self.stats
        return payload

    def to_json(self, indent: int = 2) -> str:
        """The :meth:`to_dict` summary as a JSON string."""
        import json

        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def build_result(
    query: Query,
    space: QueryAssignmentSpace,
    msps: Sequence[Assignment],
    questions: int,
    support_of=None,
    include_invalid: bool = False,
) -> QueryResult:
    """Assemble a :class:`QueryResult` from mined MSP assignments.

    By default only valid MSPs are reported (the paper's output); with
    ``include_invalid`` the near-miss MSPs (e.g. a class where an instance
    was requested) are included too, marked invalid.
    """
    rows: List[ResultRow] = []
    for assignment in msps:
        valid = space.is_valid(assignment)
        if not valid and not include_invalid:
            continue
        support = support_of(assignment) if support_of is not None else None
        rows.append(ResultRow(assignment, space.instantiate(assignment), support, valid))
    rows.sort(key=lambda r: (-(r.support if r.support is not None else 0.0), repr(r.assignment)))
    # snapshot the active tracer so callers (CLI --stats, benchmarks) can
    # read counters straight off the result
    tracer = get_tracer()
    stats = tracer.report() if tracer is not None else None
    return QueryResult(query, rows, questions, list(msps), stats=stats)
