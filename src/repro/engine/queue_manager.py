"""QueueManager: the interactive question-queue façade (Section 6.1).

Where :class:`~repro.mining.multiuser.MultiUserMiner` drives simulated
members itself, :class:`QueueManager` inverts control for interactive use
(the UI example and the :mod:`repro.service` session layer): callers pull
questions for a member and push the member's answers back.  Internally it
maintains the same global classification state, aggregator-driven
inference and per-member traversal stacks, and prunes queued assignments
that become irrelevant.

The pull/push surface speaks the *session vocabulary*:

* :meth:`next_batch` hands out up to ``k`` questions at once (several may
  be in flight per member); :meth:`next_question` is the ``k=1`` wrapper;
* :meth:`submit_support` / :meth:`submit_prune` return an explicit
  :class:`AnswerOutcome` instead of bare ``None``;
* :meth:`expire_pending` requeues handed-out questions that timed out,
  :meth:`skip_node` abandons a question for one member after retries are
  exhausted, :meth:`requeue_for` reassigns an abandoned assignment to
  another member, and :meth:`detach_member` releases every per-member
  structure when a member departs — without it the stacks and visited
  sets of members that never answer leak for the lifetime of the run.

Thread-safety: a QueueManager is *not* internally synchronized.  The
service layer guards each instance with one per-session lock (the
documented locking contract — see ``docs/SERVICE.md``); single-threaded
interactive use needs no lock.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional, Set

from ..assignments.assignment import Assignment
from ..assignments.generator import QueryAssignmentSpace
from ..crowd.aggregator import Aggregator, Verdict
from ..crowd.cache import CrowdCache
from ..mining.state import ClassificationState, Status
from ..mining.trace import MspTracker
from ..nlg.templates import DEFAULT_TEMPLATES, QuestionTemplates
from ..observability import count as _obs_count
from ..ontology.facts import FactSet
from ..vocabulary.terms import Term


class AnswerOutcome(enum.Enum):
    """What happened to a submitted answer (explicit, instead of None)."""

    #: the support answer was recorded and the traversal advanced
    RECORDED = "recorded"
    #: the pruning click was recorded and the subtree dropped
    PRUNED = "pruned"
    #: no matching pending question — a late answer for a question that
    #: was already expired, reassigned or answered (service retry paths)
    STALE = "stale"
    #: the member explicitly declined the question (service layer only:
    #: the node is abandoned for them via :meth:`QueueManager.skip_node`)
    PASSED = "passed"
    #: the answer failed validation (out-of-range/NaN support) and was
    #: discarded; the question is requeued as if it had timed out
    #: (service layer only — see :meth:`SessionManager.submit`)
    REJECTED = "rejected"


class PendingQuestion:
    """A question handed to a member, awaiting their answer.

    ``fact_set`` carries the instantiated assignment so answering code
    (e.g. simulated members on service worker threads) never needs to
    touch the shared assignment space.
    """

    def __init__(
        self,
        member_id: str,
        assignment: Assignment,
        text: str,
        fact_set: Optional[FactSet] = None,
    ):
        self.member_id = member_id
        self.assignment = assignment
        self.text = text
        self.fact_set = fact_set

    def __repr__(self) -> str:
        return f"PendingQuestion({self.member_id!r}, {self.assignment!r})"


class QueueManager:
    """Per-member question queues over a query assignment space."""

    def __init__(
        self,
        space: QueryAssignmentSpace,
        aggregator: Aggregator,
        cache: Optional[CrowdCache] = None,
        templates: QuestionTemplates = DEFAULT_TEMPLATES,
    ):
        self.space = space
        self.aggregator = aggregator
        self.cache = cache
        self.templates = templates
        self.state: ClassificationState[Assignment] = ClassificationState(space)
        self.tracker: MspTracker[Assignment] = MspTracker(space, self.state)
        self.questions_asked = 0
        self._stacks: Dict[str, List[Assignment]] = {}
        self._visited: Dict[str, Set[Assignment]] = {}
        self._answers: Dict[str, Dict[Assignment, float]] = {}
        self._pruned: Dict[str, List[Term]] = {}
        # member -> assignment -> PendingQuestion, in hand-out order
        self._pending: Dict[str, Dict[Assignment, PendingQuestion]] = {}

    # -------------------------------------------------------------- members

    def register_member(self, member_id: str) -> None:
        """Open a queue for ``member_id`` (idempotent)."""
        if member_id not in self._stacks:
            self._stacks[member_id] = list(reversed(self.space.roots()))
            self._visited[member_id] = set()
            self._answers[member_id] = {}
            self._pruned[member_id] = []
            self._pending[member_id] = {}

    def detach_member(self, member_id: str) -> List[Assignment]:
        """Release every structure held for ``member_id`` (departure).

        Returns the assignments of the member's pending questions so the
        caller can reassign them (:meth:`requeue_for`).  Detaching an
        unknown member returns ``[]``.  The member's recorded answers
        remain in the aggregator and cache — departure abandons *future*
        work, it does not unwind history.
        """
        if member_id not in self._stacks:
            return []
        abandoned = list(self._pending.pop(member_id, {}))
        del self._stacks[member_id]
        del self._visited[member_id]
        del self._answers[member_id]
        del self._pruned[member_id]
        return abandoned

    def is_registered(self, member_id: str) -> bool:
        return member_id in self._stacks

    def members(self) -> List[str]:
        return list(self._stacks)

    # ------------------------------------------------------------- questions

    def next_batch(
        self,
        member_id: str,
        k: int = 1,
        *,
        fresh_only: bool = False,
        exclude: Iterable[Assignment] = (),
    ) -> List[PendingQuestion]:
        """Up to ``k`` questions for ``member_id``; ``[]`` when dry.

        Previously handed-out, unanswered questions are re-delivered first
        (oldest first) unless ``fresh_only`` is set — the service layer
        tracks its own in-flight set and asks only for new work.
        ``exclude`` defers specific assignments without consuming them
        (the retry-backoff window: the node stays queued but is not handed
        out in this call).
        """
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        self.register_member(member_id)
        pending = self._pending[member_id]
        batch: List[PendingQuestion] = []
        if not fresh_only:
            batch.extend(list(pending.values())[:k])
        excluded = set(exclude)
        stack = self._stacks[member_id]
        visited = self._visited[member_id]
        answers = self._answers[member_id]
        deferred: List[Assignment] = []
        while stack and len(batch) < k:
            node = stack.pop()
            if node in excluded:
                deferred.append(node)
                continue
            if node in visited:
                continue
            visited.add(node)
            if self.state.status(node) is Status.INSIGNIFICANT:
                continue
            if self._is_personally_pruned(member_id, node):
                continue
            if node in answers:
                if answers[node] >= self.aggregator.threshold:
                    self._push_successors(member_id, node)
                continue
            fact_set = self.space.instantiate(node)
            question = PendingQuestion(
                member_id,
                node,
                self.templates.concrete_question(fact_set),
                fact_set=fact_set,
            )
            pending[node] = question
            batch.append(question)
        # deferred nodes were popped top-first: restore original order
        stack.extend(reversed(deferred))
        return batch

    def next_question(self, member_id: str) -> Optional[PendingQuestion]:
        """The next question for ``member_id``; None when their queue is dry.

        A previously handed-out, unanswered question is returned again.
        Equivalent to ``next_batch(member_id, k=1)``.
        """
        batch = self.next_batch(member_id, 1)
        return batch[0] if batch else None

    def has_fresh_work(
        self, member_id: str, exclude: Iterable[Assignment] = ()
    ) -> bool:
        """Would ``next_batch(fresh_only=True)`` yield anything for the member?

        The completion probe of the service layer.  Dead nodes encountered
        on the way (classified, personally pruned, already answered) are
        consumed exactly as :meth:`next_batch` would consume them, but the
        first askable candidate is left queued and unvisited.  Nodes in
        ``exclude`` count as work (they are merely deferred by a backoff
        window, not gone).
        """
        self.register_member(member_id)
        excluded = set(exclude)
        stack = self._stacks[member_id]
        visited = self._visited[member_id]
        answers = self._answers[member_id]
        deferred: List[Assignment] = []
        found = False
        while stack:
            node = stack.pop()
            if node in excluded:
                deferred.append(node)
                continue
            if node in visited:
                continue
            if self.state.status(node) is Status.INSIGNIFICANT:
                visited.add(node)
                continue
            if self._is_personally_pruned(member_id, node):
                visited.add(node)
                continue
            if node in answers:
                visited.add(node)
                if answers[node] >= self.aggregator.threshold:
                    self._push_successors(member_id, node)
                continue
            stack.append(node)
            found = True
            break
        stack.extend(reversed(deferred))
        return found or bool(deferred)

    def pending_for(self, member_id: str) -> List[PendingQuestion]:
        """The member's handed-out, unanswered questions (oldest first)."""
        return list(self._pending.get(member_id, {}).values())

    def _take_pending(
        self, member_id: str, assignment: Optional[Assignment]
    ) -> Optional[PendingQuestion]:
        """Pop the addressed pending question; None signals a stale answer."""
        pending = self._pending.get(member_id) or {}
        if assignment is None:
            if not pending:
                raise RuntimeError(f"no pending question for {member_id!r}")
            assignment = next(iter(pending))
        elif assignment not in pending:
            _obs_count("crowd.answers.stale")
            return None
        return pending.pop(assignment)

    def submit_support(
        self,
        member_id: str,
        support: float,
        assignment: Optional[Assignment] = None,
    ) -> AnswerOutcome:
        """Record a support answer for one of the member's pending questions.

        ``assignment`` addresses the question being answered; omitted, the
        oldest pending question is assumed (the pre-batching behaviour).
        Answers addressed to a question no longer pending — expired and
        reassigned while the member dawdled — are dropped as ``STALE``.
        """
        if not 0.0 <= support <= 1.0:
            raise ValueError(f"support must be in [0, 1], got {support}")
        pending = self._take_pending(member_id, assignment)
        if pending is None:
            return AnswerOutcome.STALE
        self.questions_asked += 1
        _obs_count("crowd.questions")
        _obs_count("crowd.questions.concrete")
        node = pending.assignment
        self._answers[member_id][node] = support
        self._record(node, member_id, support)
        if (
            support >= self.aggregator.threshold
            and self.state.status(node) is not Status.INSIGNIFICANT
        ):
            self._push_successors(member_id, node)
        return AnswerOutcome.RECORDED

    def submit_prune(
        self,
        member_id: str,
        value: Term,
        assignment: Optional[Assignment] = None,
    ) -> AnswerOutcome:
        """Record a user-guided pruning click on a pending question.

        The pending question is answered with support 0 and every
        assignment involving ``value`` (or a specialization) is dropped
        from the member's queue.
        """
        pending = self._take_pending(member_id, assignment)
        if pending is None:
            return AnswerOutcome.STALE
        self.questions_asked += 1
        _obs_count("crowd.questions")
        _obs_count("crowd.pruning_clicks")
        self._pruned[member_id].append(value)
        self._answers[member_id][pending.assignment] = 0.0
        self._record(pending.assignment, member_id, 0.0)
        return AnswerOutcome.PRUNED

    # ------------------------------------------------- timeout / reassignment

    def expire_pending(
        self, member_id: str, assignment: Optional[Assignment] = None
    ) -> List[Assignment]:
        """Return pending question(s) to the member's queue (timeout path).

        The expired assignments go back onto the member's stack unvisited,
        so a later :meth:`next_batch` hands them out again — combined with
        its ``exclude`` window this implements retry-with-backoff.  With
        ``assignment=None`` every pending question of the member expires.
        Returns the expired assignments (``[]`` for unknown members).
        """
        pending = self._pending.get(member_id)
        if not pending:
            return []
        if assignment is None:
            targets = list(pending)
        elif assignment in pending:
            targets = [assignment]
        else:
            return []
        visited = self._visited[member_id]
        stack = self._stacks[member_id]
        for node in targets:
            del pending[node]
            visited.discard(node)
            stack.append(node)
        return targets

    def skip_node(self, member_id: str, assignment: Assignment) -> None:
        """Abandon ``assignment`` for ``member_id`` (retries exhausted).

        The node counts as visited-without-an-answer for this member: it
        will not be handed to them again and its subtree is not explored
        on their behalf.  Other members' traversals are unaffected.
        """
        if member_id not in self._stacks:
            return
        self._pending[member_id].pop(assignment, None)
        self._visited[member_id].add(assignment)

    def requeue_for(self, member_id: str, assignment: Assignment) -> bool:
        """Queue ``assignment`` for ``member_id`` (reassignment path).

        Used when another member abandoned the node; it jumps to the top
        of this member's stack.  Returns False when the member has already
        answered it (nothing to do), True when it was (re)queued.
        """
        self.register_member(member_id)
        if assignment in self._answers[member_id]:
            return False
        if assignment in self._pending[member_id]:
            return True  # already handed out to them
        self._visited[member_id].discard(assignment)
        self._stacks[member_id].append(assignment)
        return True

    # --------------------------------------------------------------- results

    def preload(self, assignment: Assignment, member_id: str, support: float) -> None:
        """Feed a previously-collected answer (snapshot resume).

        Updates the aggregator, classification state and — when the member
        is registered — their personal answer map, but does *not* touch
        the cache or the question counters: the answer was paid for in an
        earlier run.
        """
        self.aggregator.add_answer(assignment, member_id, support)
        if member_id in self._answers:
            self._answers[member_id][assignment] = support
        self._apply_verdict(assignment)

    def mark_answered(
        self, member_id: str, assignment: Assignment, support: float
    ) -> None:
        """Seed one member's personal answer map (snapshot resume).

        Unlike :meth:`preload` this touches *only* the member's answer map
        — the aggregator already saw the answer when the whole cache was
        preloaded at session creation; feeding it again would double-count.
        The member's traversal then treats ``assignment`` as answered and
        continues from the cached frontier.
        """
        self.register_member(member_id)
        self._answers[member_id][assignment] = support

    def current_msps(self) -> List[Assignment]:
        """The MSPs confirmed so far (incremental output)."""
        self.tracker.refresh(force=True)
        return sorted(self.tracker.confirmed(), key=repr)

    def current_valid_msps(self) -> List[Assignment]:
        self.tracker.refresh(force=True)
        return sorted(self.tracker.confirmed_valid(), key=repr)

    def is_complete(self) -> bool:
        """No reachable assignment is still unclassified."""
        seen: Set[Assignment] = set()
        frontier = list(self.space.roots())
        seen.update(frontier)
        index = 0
        while index < len(frontier):
            node = frontier[index]
            index += 1
            status = self.state.status(node)
            if status is Status.UNKNOWN:
                return False
            if status is Status.INSIGNIFICANT:
                continue
            for successor in self.space.successors(node):
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        return True

    def has_pending(self) -> bool:
        """Is any question currently handed out and unanswered?"""
        return any(self._pending.values())

    # --------------------------------------------------------------- helpers

    def _record(self, node: Assignment, member_id: str, support: float) -> None:
        self.aggregator.add_answer(node, member_id, support)
        if self.cache is not None:
            self.cache.record(node, member_id, support)
        self._apply_verdict(node)

    def _apply_verdict(self, node: Assignment) -> None:
        verdict = self.aggregator.verdict(node)
        if verdict is Verdict.SIGNIFICANT:
            if self.state.status(node) is Status.UNKNOWN:
                self.state.mark_significant(node)
                _obs_count("mining.classified.by_crowd")
            self.tracker.note_significant(node)
        elif verdict is Verdict.INSIGNIFICANT:
            if self.state.status(node) is Status.UNKNOWN:
                self.state.mark_insignificant(node)
                _obs_count("mining.classified.by_crowd")

    def _push_successors(self, member_id: str, node: Assignment) -> None:
        visited = self._visited[member_id]
        stack = self._stacks[member_id]
        for successor in self.space.successors(node):
            if successor not in visited:
                stack.append(successor)

    def _is_personally_pruned(self, member_id: str, node: Assignment) -> bool:
        vocabulary = self.space.vocabulary
        for token in self._pruned[member_id]:
            for values in node.values.values():
                for value in values:
                    if vocabulary.leq(token, value):
                        return True
        return False
