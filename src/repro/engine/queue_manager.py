"""QueueManager: the interactive question-queue façade (Section 6.1).

Where :class:`~repro.mining.multiuser.MultiUserMiner` drives simulated
members itself, :class:`QueueManager` inverts control for interactive use
(the UI example): callers pull the next question for a member and push the
member's answers back.  Internally it maintains the same global
classification state, aggregator-driven inference and per-member traversal
stacks, and prunes queued assignments that become irrelevant.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..assignments.assignment import Assignment
from ..assignments.generator import QueryAssignmentSpace
from ..crowd.aggregator import Aggregator, Verdict
from ..crowd.cache import CrowdCache
from ..mining.state import ClassificationState, Status
from ..mining.trace import MspTracker
from ..nlg.templates import DEFAULT_TEMPLATES, QuestionTemplates
from ..observability import count as _obs_count
from ..vocabulary.terms import Term


class PendingQuestion:
    """A question handed to a member, awaiting their answer."""

    def __init__(self, member_id: str, assignment: Assignment, text: str):
        self.member_id = member_id
        self.assignment = assignment
        self.text = text

    def __repr__(self) -> str:
        return f"PendingQuestion({self.member_id!r}, {self.assignment!r})"


class QueueManager:
    """Per-member question queues over a query assignment space."""

    def __init__(
        self,
        space: QueryAssignmentSpace,
        aggregator: Aggregator,
        cache: Optional[CrowdCache] = None,
        templates: QuestionTemplates = DEFAULT_TEMPLATES,
    ):
        self.space = space
        self.aggregator = aggregator
        self.cache = cache
        self.templates = templates
        self.state: ClassificationState[Assignment] = ClassificationState(space)
        self.tracker: MspTracker[Assignment] = MspTracker(space, self.state)
        self.questions_asked = 0
        self._stacks: Dict[str, List[Assignment]] = {}
        self._visited: Dict[str, Set[Assignment]] = {}
        self._answers: Dict[str, Dict[Assignment, float]] = {}
        self._pruned: Dict[str, List[Term]] = {}
        self._pending: Dict[str, PendingQuestion] = {}

    # -------------------------------------------------------------- members

    def register_member(self, member_id: str) -> None:
        """Open a session for ``member_id`` (idempotent)."""
        if member_id not in self._stacks:
            self._stacks[member_id] = list(reversed(self.space.roots()))
            self._visited[member_id] = set()
            self._answers[member_id] = {}
            self._pruned[member_id] = []

    # ------------------------------------------------------------- questions

    def next_question(self, member_id: str) -> Optional[PendingQuestion]:
        """The next question for ``member_id``; None when their queue is dry.

        A previously handed-out, unanswered question is returned again.
        """
        self.register_member(member_id)
        pending = self._pending.get(member_id)
        if pending is not None:
            return pending
        stack = self._stacks[member_id]
        visited = self._visited[member_id]
        answers = self._answers[member_id]
        while stack:
            node = stack.pop()
            if node in visited:
                continue
            visited.add(node)
            if self.state.status(node) is Status.INSIGNIFICANT:
                continue
            if self._is_personally_pruned(member_id, node):
                continue
            if node in answers:
                if answers[node] >= self.aggregator.threshold:
                    self._push_successors(member_id, node)
                continue
            text = self.templates.concrete_question(self.space.instantiate(node))
            pending = PendingQuestion(member_id, node, text)
            self._pending[member_id] = pending
            return pending
        return None

    def submit_support(self, member_id: str, support: float) -> None:
        """Record the member's support answer for their pending question."""
        pending = self._pending.pop(member_id, None)
        if pending is None:
            raise RuntimeError(f"no pending question for {member_id!r}")
        if not 0.0 <= support <= 1.0:
            raise ValueError(f"support must be in [0, 1], got {support}")
        self.questions_asked += 1
        _obs_count("crowd.questions")
        _obs_count("crowd.questions.concrete")
        node = pending.assignment
        self._answers[member_id][node] = support
        self._record(node, member_id, support)
        if (
            support >= self.aggregator.threshold
            and self.state.status(node) is not Status.INSIGNIFICANT
        ):
            self._push_successors(member_id, node)

    def submit_prune(self, member_id: str, value: Term) -> None:
        """Record a user-guided pruning click on the pending question.

        The pending question is answered with support 0 and every assignment
        involving ``value`` (or a specialization) is dropped from the
        member's queue.
        """
        pending = self._pending.pop(member_id, None)
        if pending is None:
            raise RuntimeError(f"no pending question for {member_id!r}")
        self.questions_asked += 1
        _obs_count("crowd.questions")
        _obs_count("crowd.pruning_clicks")
        self._pruned[member_id].append(value)
        self._answers[member_id][pending.assignment] = 0.0
        self._record(pending.assignment, member_id, 0.0)

    # --------------------------------------------------------------- results

    def current_msps(self) -> List[Assignment]:
        """The MSPs confirmed so far (incremental output)."""
        self.tracker.refresh(force=True)
        return sorted(self.tracker.confirmed(), key=repr)

    def current_valid_msps(self) -> List[Assignment]:
        self.tracker.refresh(force=True)
        return sorted(self.tracker.confirmed_valid(), key=repr)

    def is_complete(self) -> bool:
        """No reachable assignment is still unclassified."""
        seen: Set[Assignment] = set()
        frontier = list(self.space.roots())
        seen.update(frontier)
        index = 0
        while index < len(frontier):
            node = frontier[index]
            index += 1
            status = self.state.status(node)
            if status is Status.UNKNOWN:
                return False
            if status is Status.INSIGNIFICANT:
                continue
            for successor in self.space.successors(node):
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        return True

    # --------------------------------------------------------------- helpers

    def _record(self, node: Assignment, member_id: str, support: float) -> None:
        self.aggregator.add_answer(node, member_id, support)
        if self.cache is not None:
            self.cache.record(node, member_id, support)
        verdict = self.aggregator.verdict(node)
        if verdict is Verdict.SIGNIFICANT:
            if self.state.status(node) is Status.UNKNOWN:
                self.state.mark_significant(node)
                _obs_count("mining.classified.by_crowd")
            self.tracker.note_significant(node)
        elif verdict is Verdict.INSIGNIFICANT:
            if self.state.status(node) is Status.UNKNOWN:
                self.state.mark_insignificant(node)
                _obs_count("mining.classified.by_crowd")

    def _push_successors(self, member_id: str, node: Assignment) -> None:
        visited = self._visited[member_id]
        stack = self._stacks[member_id]
        for successor in self.space.successors(node):
            if successor not in visited:
                stack.append(successor)

    def _is_personally_pruned(self, member_id: str, node: Assignment) -> bool:
        vocabulary = self.space.vocabulary
        for token in self._pruned[member_id]:
            for values in node.values.values():
                for value in values:
                    if vocabulary.leq(token, value):
                        return True
        return False
