"""Engine layer: full pipeline, crowd adapters, queue manager, results.

The public facade of the reproduction: :class:`OassisEngine` configured by
an :class:`EngineConfig`, the interactive :class:`QueueManager` speaking
the session vocabulary (:meth:`~QueueManager.next_batch`,
:class:`AnswerOutcome`), and :class:`QueryResult` rows.  The concurrent
crowd-serving layer on top lives in :mod:`repro.service`.
"""

from .adapters import MemberUser
from .config import EngineConfig, reset_deprecation_warnings
from .engine import OassisEngine
from .queue_manager import AnswerOutcome, PendingQuestion, QueueManager
from .results import QueryResult, ResultRow, build_result

__all__ = [
    "AnswerOutcome",
    "EngineConfig",
    "MemberUser",
    "OassisEngine",
    "PendingQuestion",
    "QueryResult",
    "QueueManager",
    "ResultRow",
    "build_result",
    "reset_deprecation_warnings",
]
