"""Engine layer: full pipeline, crowd adapters, queue manager, results."""

from .adapters import MemberUser
from .engine import OassisEngine
from .queue_manager import PendingQuestion, QueueManager
from .results import QueryResult, ResultRow, build_result

__all__ = [
    "MemberUser",
    "OassisEngine",
    "PendingQuestion",
    "QueryResult",
    "QueueManager",
    "ResultRow",
    "build_result",
]
