"""repro.api — the single public client facade over the reproduction.

Historically the project grew three divergent entry points: batch
``OassisEngine.execute`` for serial mining, ``run_simulation`` for the
in-process service campaign, and ``engine.shard_coordinator`` for the
process-sharded serving path.  :class:`Client` consolidates them behind
one object with keyword-only, typed methods whose request/response
dataclasses are exactly the wire DTOs of :mod:`repro.gateway.schema` —
what you get in-process is what you would get over HTTP or MCP, minus
the transport.

Session-style usage mirrors the gateway endpoint table::

    from repro.api import Client

    client = Client(domain="demo")
    accepted = client.pose_query(threshold=0.4)
    client.join(member_id="m0")
    batch = client.next_questions(member_id="m0")
    client.submit_answer(member_id="m0", qid=batch.questions[0].qid, support=1.0)
    result = client.result(session_id=accepted.session_id)

Batch-style usage replaces the legacy entry points::

    result = client.execute(query=None, members=crowd)      # engine.execute
    report = client.simulate(sessions=4, workers=2)         # run_simulation
    coord = client.shard_coordinator(shards=2, crowd_size=6)

The old call shapes keep working through warn-once deprecation shims at
module level (:func:`execute`, :func:`run_simulation`,
:func:`shard_coordinator`); ``docs/MIGRATION.md`` has the old → new
table.  :meth:`Client.serve` lifts the same application state onto the
network via :func:`repro.gateway.serve_in_thread`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Mapping, Optional, Sequence

from ..crowd.member import CrowdMember
from ..engine.config import warn_deprecated
from ..engine.engine import OassisEngine
from ..engine.results import QueryResult
from ..gateway.app import GatewayApp, GatewayConfig
from ..gateway.http import GatewayHandle, serve_in_thread
from ..gateway.mcp import McpGateway
from ..gateway.schema import (
    ActivateResponse,
    AnswerResponse,
    DatasetList,
    JoinResponse,
    QueryAccepted,
    QueryRequest,
    QuestionBatch,
    ResultResponse,
)

__all__ = [
    "Client",
    "execute",
    "run_simulation",
    "shard_coordinator",
]


class Client:
    """One facade over batch mining, simulation, sharding and serving.

    Wraps an in-process :class:`~repro.gateway.app.GatewayApp`, so every
    session-style method speaks the same typed DTOs the HTTP and MCP
    transports serialize.  Auth is a transport concern — in-process
    calls address members by ``member_id`` directly and never mint
    tokens.
    """

    def __init__(
        self,
        *,
        domain: Optional[str] = None,
        config: Optional[GatewayConfig] = None,
        datasets: Optional[Mapping[str, Callable[[], object]]] = None,
    ) -> None:
        self._app = GatewayApp(config=config, datasets=datasets)
        if domain is not None:
            self._app.activate_dataset(domain)

    # ------------------------------------------------------------- internals

    @property
    def app(self) -> GatewayApp:
        """The underlying gateway application (shared with transports)."""
        return self._app

    @property
    def engine(self) -> OassisEngine:
        """The active dataset's engine; raises until a dataset is active."""
        engine = self._app.engine
        if engine is None:
            raise RuntimeError(
                "no dataset is active; pass domain= to Client() or call "
                "client.activate(name=...)"
            )
        return engine

    def _require_dataset(self) -> object:
        dataset = self._app.dataset
        if dataset is None:
            raise RuntimeError(
                "no dataset is active; pass domain= to Client() or call "
                "client.activate(name=...)"
            )
        return dataset

    # --------------------------------------------------- session-style (DTOs)

    def datasets(self) -> DatasetList:
        """The activatable datasets and which one is active."""
        return self._app.list_datasets()

    def activate(self, *, name: str) -> ActivateResponse:
        """Activate ``name``: builds its engine and session manager."""
        return self._app.activate_dataset(name)

    def join(self, *, member_id: Optional[str] = None) -> JoinResponse:
        """Register a crowd member (idempotent per ``member_id``)."""
        return self._app.join(member_id)

    def pose_query(
        self,
        *,
        query: Optional[str] = None,
        threshold: float = 0.4,
        sample_size: int = 3,
        session_id: Optional[str] = None,
    ) -> QueryAccepted:
        """Open a mining session (``query=None`` uses the domain template)."""
        request = QueryRequest(
            query=query,
            threshold=threshold,
            sample_size=sample_size,
            session_id=session_id,
        )
        return self._app.pose_query(request)

    def next_questions(
        self, *, member_id: str, k: Optional[int] = None
    ) -> QuestionBatch:
        """Up to ``k`` dispatched questions for ``member_id`` (no waiting)."""
        return self._app.next_questions(member_id, k)

    def submit_answer(
        self, *, member_id: str, qid: str, support: Optional[float] = None
    ) -> AnswerResponse:
        """Answer a dispatched question (``support=None`` passes)."""
        return self._app.submit_answer(member_id, qid, support)

    def result(self, *, session_id: str) -> ResultResponse:
        """The session's incremental MSP set; ``done`` once it settles."""
        return self._app.result(session_id)

    # ------------------------------------------------------ batch-style modes

    def execute(
        self,
        *,
        query: Optional[str] = None,
        members: Sequence[CrowdMember],
        threshold: float = 0.4,
        sample_size: Optional[int] = None,
        cache: Optional[object] = None,
        more_pool: Optional[Iterable[object]] = None,
        include_invalid: Optional[bool] = None,
        max_total_questions: Optional[int] = None,
    ) -> QueryResult:
        """Serial batch mining over ``members`` (was ``engine.execute``).

        ``query=None`` uses the active dataset's query template at
        ``threshold`` — the same defaulting rule as :meth:`pose_query`.
        """
        if query is None:
            dataset = self._require_dataset()
            query = dataset.query(threshold)  # type: ignore[attr-defined]
        return self.engine.execute(
            query,
            members,
            sample_size=sample_size,
            cache=cache,  # type: ignore[arg-type]
            more_pool=more_pool,  # type: ignore[arg-type]
            include_invalid=include_invalid,
            max_total_questions=max_total_questions,
        )

    def simulate(self, **options: Any) -> Dict[str, Any]:
        """Run a full in-process service campaign (was ``run_simulation``).

        Keyword options are forwarded verbatim; the active dataset's
        name becomes the default ``domain`` when one is active.
        """
        from ..service.simulation import run_simulation as _run

        active = self._app.active_dataset
        if active is not None:
            options.setdefault("domain", active)
        return _run(**options)

    def shard_coordinator(self, **options: Any) -> Any:
        """A process-sharded coordinator on the active dataset.

        Was ``engine.shard_coordinator(dataset, ...)``; the dataset and
        engine now both come from the client's activated domain.
        """
        dataset = self._require_dataset()
        active = self._app.active_dataset
        if active is not None:
            options.setdefault("domain", active)
        return self.engine.shard_coordinator(dataset, **options)

    # --------------------------------------------------------------- serving

    def serve(
        self, *, host: str = "127.0.0.1", port: int = 0
    ) -> GatewayHandle:
        """Lift this client's application state onto loopback HTTP."""
        return serve_in_thread(self._app, host=host, port=port)

    def mcp(self) -> McpGateway:
        """An MCP tool surface over this client's application state."""
        return McpGateway(self._app)


# -------------------------------------------------- warn-once legacy shims


def execute(
    ontology: object,
    query: object,
    members: Sequence[CrowdMember],
    **options: Any,
) -> QueryResult:
    """Deprecated: use :meth:`Client.execute`.

    The old shape built an engine by hand and called
    ``OassisEngine(ontology).execute(query, members, ...)``.
    """
    warn_deprecated(
        "repro.api.execute",
        "repro.api.execute(ontology, query, members) is deprecated; "
        "use repro.api.Client(domain=...).execute(query=..., members=...)",
    )
    return OassisEngine(ontology).execute(query, members, **options)  # type: ignore[arg-type]


def run_simulation(**options: Any) -> Dict[str, Any]:
    """Deprecated: use :meth:`Client.simulate`."""
    warn_deprecated(
        "repro.api.run_simulation",
        "repro.api.run_simulation(...) is deprecated; use "
        "repro.api.Client().simulate(...)",
    )
    from ..service.simulation import run_simulation as _run

    return _run(**options)


def shard_coordinator(dataset: object, **options: Any) -> Any:
    """Deprecated: use :meth:`Client.shard_coordinator`.

    The old shape passed the dataset explicitly and left engine
    construction to the caller's engine instance.
    """
    warn_deprecated(
        "repro.api.shard_coordinator",
        "repro.api.shard_coordinator(dataset, ...) is deprecated; use "
        "repro.api.Client(domain=...).shard_coordinator(...)",
    )
    engine = OassisEngine(dataset.ontology)  # type: ignore[attr-defined]
    return engine.shard_coordinator(dataset, **options)
