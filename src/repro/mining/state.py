"""Classification bookkeeping and the Observation 4.4 inference scheme.

Every answer classifies more than the asked node: a significant answer
classifies the whole *down-set* (all more-general assignments) as
significant, an insignificant one classifies the *up-set* (all more-specific
assignments) as insignificant.  :class:`ClassificationState` records the
classification witnesses and answers status queries.

Two strategies:

* when the space exposes ``ancestors``/``descendants`` (an
  :class:`~repro.assignments.lattice.ExplicitDAG`), classifications are
  propagated eagerly into plain sets — O(1) status checks, which the large
  synthetic runs need;
* otherwise (lazy query spaces) witnesses are kept in append-only logs and
  every queried node remembers how far into the logs it has been compared —
  each (node, witness) pair is examined at most once over the whole run, so
  repeated progress scans over mostly-unclassified spaces stay cheap.

Thread-safety (the service-layer locking contract): a
:class:`ClassificationState` is *not* internally synchronized — even
``status()`` mutates memo structures.  Each concurrent query session owns
its own state, and :mod:`repro.service` performs every read and write
under that session's lock; see ``docs/SERVICE.md``.  Do not share one
instance across sessions or touch it off-lock.
"""

from __future__ import annotations

import enum
from typing import Dict, Generic, Hashable, List, Set, Tuple, TypeVar

from ..assignments.lattice import AssignmentSpace
from ..observability import count as _obs_count, enabled as _obs_enabled

Node = TypeVar("Node", bound=Hashable)


class Status(enum.Enum):
    SIGNIFICANT = "significant"
    INSIGNIFICANT = "insignificant"
    UNKNOWN = "unknown"


class ClassificationState(Generic[Node]):
    """Tracks which assignments are classified, with inference closure."""

    def __init__(self, space: AssignmentSpace[Node]):
        self.space = space
        self._fast = hasattr(space, "ancestors") and hasattr(space, "descendants")
        if self._fast:
            self._significant: Set[Node] = set()
            self._insignificant: Set[Node] = set()
        else:
            # append-only witness logs; _checked[n] = how far n has compared
            self._sig_log: List[Node] = []
            self._insig_log: List[Node] = []
            self._status_cache: Dict[Node, Status] = {}
            self._checked: Dict[Node, Tuple[int, int]] = {}

    # ------------------------------------------------------------- marking

    def mark_significant(self, node: Node) -> None:
        """Record that ``node`` is significant; classifies its down-set."""
        if self._fast:
            if not _obs_enabled():
                self._significant.update(self.space.ancestors(node))  # type: ignore[attr-defined]
                return
            added = self.space.ancestors(node) - self._significant  # type: ignore[attr-defined]
            if added:
                self._significant |= added
                inferred = len(added) - (1 if node in added else 0)
                if inferred:
                    _obs_count("mining.inferred.significant", inferred)
            return
        if self.status(node) is Status.SIGNIFICANT:
            return  # already implied by an earlier witness
        self._status_cache[node] = Status.SIGNIFICANT
        self._sig_log.append(node)

    def mark_insignificant(self, node: Node) -> None:
        """Record that ``node`` is insignificant; classifies its up-set."""
        if self._fast:
            if not _obs_enabled():
                self._insignificant.update(self.space.descendants(node))  # type: ignore[attr-defined]
                return
            added = self.space.descendants(node) - self._insignificant  # type: ignore[attr-defined]
            if added:
                self._insignificant |= added
                inferred = len(added) - (1 if node in added else 0)
                if inferred:
                    _obs_count("mining.inferred.insignificant", inferred)
            return
        if self.status(node) is Status.INSIGNIFICANT:
            return
        self._status_cache[node] = Status.INSIGNIFICANT
        self._insig_log.append(node)

    # -------------------------------------------------------------- queries

    def status(self, node: Node) -> Status:
        if self._fast:
            if node in self._significant:
                return Status.SIGNIFICANT
            if node in self._insignificant:
                return Status.INSIGNIFICANT
            return Status.UNKNOWN
        cached = self._status_cache.get(node)
        if cached is not None:
            return cached
        sig_from, insig_from = self._checked.get(node, (0, 0))
        leq = self.space.leq
        for index in range(sig_from, len(self._sig_log)):
            if leq(node, self._sig_log[index]):
                # resolved through a witness: classified without a question
                self._status_cache[node] = Status.SIGNIFICANT
                _obs_count("mining.inferred.significant")
                return Status.SIGNIFICANT
        for index in range(insig_from, len(self._insig_log)):
            if leq(self._insig_log[index], node):
                self._status_cache[node] = Status.INSIGNIFICANT
                _obs_count("mining.inferred.insignificant")
                return Status.INSIGNIFICANT
        self._checked[node] = (len(self._sig_log), len(self._insig_log))
        return Status.UNKNOWN

    def is_classified(self, node: Node) -> bool:
        return self.status(node) is not Status.UNKNOWN

    def is_significant(self, node: Node) -> bool:
        return self.status(node) is Status.SIGNIFICANT

    def is_insignificant(self, node: Node) -> bool:
        return self.status(node) is Status.INSIGNIFICANT

    def significant_witnesses(self) -> List[Node]:
        """The maximal recorded significant nodes (an antichain)."""
        if self._fast:
            return list(self._significant)
        leq = self.space.leq
        return [
            w
            for w in self._sig_log
            if not any(w != v and leq(w, v) for v in self._sig_log)
        ]
