"""Multi-user crowd mining (Section 4.2) with QueueManager semantics.

Each crowd member runs the same top-down traversal as the single-user
vertical algorithm, but *inference is global*: answers stream into a
black-box aggregator, and only its verdicts classify assignments (via the
Observation 4.4 closure).  The per-user refinements of Section 4.2 are all
implemented:

1. per-user sessions that can stop at any point (``willing()``);
2. answers are recorded per assignment (aggregator + CrowdCache);
3. classification happens on the aggregator's SIGNIFICANT / INSIGNIFICANT /
   UNDECIDED verdicts;
4. a user is not asked about successors of an assignment that is
   insignificant *for them* or already insignificant overall;
5. MSPs are confirmed globally, when all successors of a significant
   assignment are classified insignificant.

Traversal starts from the overall most general assignments even when they
are already classified (the Section 4.2 refinement); by default users
descend *without* being re-asked about assignments whose global verdict is
already decided (set ``ask_decided_generals=True`` to spend the redundant
questions on per-user routing instead — the ablation benchmark compares
both).  The driver interleaves users round-robin, one question per turn,
emulating members answering in parallel; it stops as soon as no
globally-unclassified assignment remains reachable, so cached answers beyond
that point are "not used" (the Section 6.3 accounting).
"""

from __future__ import annotations

import random
from typing import (
    Callable,
    Dict,
    Generic,
    Hashable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    TypeVar,
)

from ..assignments.lattice import AssignmentSpace
from ..crowd.aggregator import Aggregator, Verdict
from ..crowd.cache import CrowdCache
from ..observability import get_tracer, span as _obs_span
from .state import ClassificationState, Status
from .trace import MiningResult, MiningTrace, MspTracker, TargetTracker, ValidProgress

Node = TypeVar("Node", bound=Hashable)


class UserOracle(Generic[Node]):
    """Adapter between the miner and one (simulated) crowd member."""

    def __init__(self, member_id: str):
        self.member_id = member_id

    def willing(self) -> bool:
        """May this user still be asked questions?

        Answering False is treated as a *departure*: the miner releases
        the user's traversal state and never consults them again.
        """
        return True

    def support(self, node: Node) -> Optional[float]:
        """The user's support for ``node``; None = cannot answer."""
        raise NotImplementedError

    def wants_specialization(self) -> bool:
        """Does the user opt into an open-ended question right now?"""
        return False

    def choose_specialization(
        self, node: Node, candidates: Sequence[Node]
    ) -> Optional[Tuple[Node, float]]:
        """Pick a personally frequent candidate, or None ("none of these")."""
        return None

    def prune_value(self, node: Node) -> Optional[object]:
        """A pruning token if the user prunes while viewing ``node``."""
        return None

    def matches_prune(self, node: Node, token: object) -> bool:
        """Is ``node`` covered by a previously returned pruning token?"""
        return False

    def more_tip(self, node: Node):
        """A volunteered MORE fact for ``node`` (the UI's "more" button)."""
        return None


class FunctionUser(UserOracle[Node]):
    """A user backed by a plain support function (synthetic experiments)."""

    def __init__(
        self,
        member_id: str,
        support_fn: Callable[[Node], float],
        max_questions: Optional[int] = None,
    ):
        super().__init__(member_id)
        self._support_fn = support_fn
        self._max_questions = max_questions
        self.questions = 0

    def willing(self) -> bool:
        return self._max_questions is None or self.questions < self._max_questions

    def support(self, node: Node) -> Optional[float]:
        self.questions += 1
        return self._support_fn(node)


class ReplayUser(UserOracle[Node]):
    """A user whose answers come from a :class:`CrowdCache` (Section 6.3).

    Used to re-evaluate a query at a higher threshold without re-asking the
    crowd.  Nodes with no cached answer are reported as unanswerable.
    """

    def __init__(self, member_id: str, cache: CrowdCache):
        super().__init__(member_id)
        self._cache = cache
        self.cache_misses = 0

    def support(self, node: Node) -> Optional[float]:
        cached = self._cache.lookup(node, self.member_id)
        if cached is None:
            self.cache_misses += 1
        return cached


class _Session(Generic[Node]):
    """Per-user traversal state."""

    def __init__(self, user: UserOracle[Node], roots: Sequence[Node]):
        self.user = user
        self.stack: List[Node] = list(reversed(list(roots)))
        self.visited: Set[Node] = set()
        self.answers: Dict[Node, float] = {}
        self.prune_tokens: List[object] = []
        self.done = False

    def finish(self) -> None:
        """Mark done and release the traversal state.

        Users who drained their stack or quit never advance again, but
        their visited sets and stacks — proportional to the explored
        lattice — used to be kept until the end of the run.  On crowds
        where most members answer only a few questions (or none) that
        retained memory dominates; dropping it here is the same fix as
        :meth:`QueueManager.detach_member` for interactive sessions.
        """
        self.done = True
        self.stack = []
        self.visited = set()
        self.answers = {}
        self.prune_tokens = []


class QuestionStats:
    """Answer-type accounting (the Section 6.3 percentages)."""

    def __init__(self) -> None:
        self.concrete = 0
        self.specialization = 0
        self.none_of_these = 0
        self.pruning_clicks = 0
        self.more_tips = 0

    @property
    def total(self) -> int:
        return self.concrete + self.specialization + self.pruning_clicks

    def as_dict(self) -> Dict[str, int]:
        return {
            "concrete": self.concrete,
            "specialization": self.specialization,
            "none_of_these": self.none_of_these,
            "pruning_clicks": self.pruning_clicks,
            "more_tips": self.more_tips,
        }


class MultiUserResult(MiningResult[Node]):
    """Multi-user outcome: adds question statistics and per-user counts."""

    def __init__(
        self,
        msps: Sequence[Node],
        valid_msps: Sequence[Node],
        questions: int,
        trace: MiningTrace,
        state: ClassificationState[Node],
        stats: QuestionStats,
        questions_per_user: Dict[str, int],
    ):
        super().__init__(msps, valid_msps, questions, trace, state)
        self.stats = stats
        self.questions_per_user = dict(questions_per_user)


class MultiUserMiner(Generic[Node]):
    """Drives the multi-user algorithm over an assignment space."""

    def __init__(
        self,
        space: AssignmentSpace[Node],
        users: Sequence[UserOracle[Node]],
        aggregator: Aggregator,
        cache: Optional[CrowdCache] = None,
        ask_decided_generals: bool = False,
        valid_nodes: Optional[Sequence[Node]] = None,
        target_msps: Optional[Sequence[Node]] = None,
        max_total_questions: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ):
        self.space = space
        self.users = list(users)
        self.aggregator = aggregator
        self.cache = cache
        self.ask_decided_generals = ask_decided_generals
        self.max_total_questions = max_total_questions
        self.rng = rng if rng is not None else random.Random(0)

        self.state: ClassificationState[Node] = ClassificationState(space)
        # sampling is throttled: large crowds over lazy spaces would spend
        # more time measuring progress than mining otherwise
        self.tracker: MspTracker[Node] = MspTracker(space, self.state, stride=5)
        self.trace = MiningTrace()
        self.progress = (
            ValidProgress(self.state, valid_nodes, stride=10)
            if valid_nodes is not None
            else None
        )
        self.targets = (
            TargetTracker(self.state, target_msps) if target_msps is not None else None
        )
        # chain-partitioned question order when the space provides it
        # (QueryAssignmentSpace does); plain successor order otherwise
        self._ordered_successors: Callable[[Node], Sequence[Node]] = getattr(
            space, "ordered_successors", space.successors
        )
        self.stats = QuestionStats()
        self.questions = 0
        self.questions_per_user: Dict[str, int] = {}
        self.threshold = aggregator.threshold
        self._obs = None  # bound to the active tracer by run()

    # ------------------------------------------------------------------ run

    def run(self) -> MultiUserResult[Node]:
        self._obs = get_tracer()
        with _obs_span("mine.multiuser"):
            return self._run()

    def _run(self) -> MultiUserResult[Node]:
        sessions = [_Session(user, self.space.roots()) for user in self.users]
        # termination: each turn either poses a question or drains the
        # user's stack; when nothing was posed in a full round every stack
        # is empty, which subsumes the global-completeness check
        while not self._budget_exhausted():
            progressed = False
            for session in sessions:
                if self._budget_exhausted():
                    break
                if session.done:
                    continue
                if not session.user.willing():
                    # the user departed: release their traversal state
                    session.finish()
                    continue
                if self._user_turn(session):
                    progressed = True
            if not progressed:
                break  # every user is done or unwilling
        # final forced sample so the trace's last point reflects the truth
        classified_valid = (
            self.progress.refresh(force=True) if self.progress is not None else 0
        )
        targets_found = self.targets.refresh() if self.targets is not None else 0
        self.tracker.refresh(force=True)
        confirmed, confirmed_valid = self.tracker.counts()
        self.trace.sample(
            self.questions, confirmed, confirmed_valid, classified_valid, targets_found
        )
        msps = sorted(self.tracker.confirmed(), key=repr)
        valid_msps = [n for n in msps if self.space.is_valid(n)]
        if self._obs is not None:
            self._obs.count("mining.msps.found", len(msps))
            self._obs.count("mining.msps.valid", len(valid_msps))
        return MultiUserResult(
            msps,
            valid_msps,
            self.questions,
            self.trace,
            self.state,
            self.stats,
            self.questions_per_user,
        )

    def _budget_exhausted(self) -> bool:
        return (
            self.max_total_questions is not None
            and self.questions >= self.max_total_questions
        )

    def _globally_complete(self) -> bool:
        """No reachable assignment is still globally unclassified."""
        seen: Set[Node] = set()
        frontier = list(self.space.roots())
        seen.update(frontier)
        index = 0
        while index < len(frontier):
            node = frontier[index]
            index += 1
            status = self.state.status(node)
            if status is Status.UNKNOWN:
                return False
            if status is Status.INSIGNIFICANT:
                continue
            for successor in self.space.successors(node):
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        return True

    # ------------------------------------------------------------ user turn

    def _user_turn(self, session: _Session[Node]) -> bool:
        """Advance one user until a question is posed; False = user done."""
        while session.stack:
            node = session.stack.pop()
            if node in session.visited:
                continue
            session.visited.add(node)
            if self.state.status(node) is Status.INSIGNIFICANT:
                if self._obs is not None:
                    self._obs.count("mining.skipped.insignificant")
                continue  # pruned globally (QueueManager)
            if any(
                session.user.matches_prune(node, token)
                for token in session.prune_tokens
            ):
                if self._obs is not None:
                    self._obs.count("mining.skipped.user_pruned")
                continue  # pruned for this user
            if node in session.answers:
                if session.answers[node] >= self.threshold:
                    self._push_successors(session, node)
                continue
            decided = self.aggregator.verdict(node) is not Verdict.UNDECIDED
            if decided and not self.ask_decided_generals:
                # descend optimistically without spending a question
                if self._obs is not None:
                    self._obs.count("mining.skipped.decided")
                if self.state.status(node) is Status.SIGNIFICANT:
                    self._push_successors(session, node)
                continue
            posed = self._pose_question(session, node)
            if posed:
                return True
            # user could not answer (replay cache miss): move on
        session.finish()
        return False

    def _pose_question(self, session: _Session[Node], node: Node) -> bool:
        support = session.user.support(node)
        if support is None:
            return False
        self.questions += 1
        self.questions_per_user[session.user.member_id] = (
            self.questions_per_user.get(session.user.member_id, 0) + 1
        )
        if self._obs is not None:
            self._obs.count("crowd.questions")
        session.answers[node] = support
        token = session.user.prune_value(node)
        if token is not None:
            # the interaction was a pruning click: support 0, subtree pruned
            self.stats.pruning_clicks += 1
            if self._obs is not None:
                self._obs.count("crowd.pruning_clicks")
            session.prune_tokens.append(token)
            session.answers[node] = 0.0
            self._record_answer(node, session.user.member_id, 0.0)
            self._sample()
            return True
        self.stats.concrete += 1
        if self._obs is not None:
            self._obs.count("crowd.questions.concrete")
        self._record_answer(node, session.user.member_id, support)
        personally_significant = support >= self.threshold
        overall_insignificant = self.state.status(node) is Status.INSIGNIFICANT
        if personally_significant and not overall_insignificant:
            self._maybe_propose_more(session, node)
            if session.user.wants_specialization():
                self._sample()
                self._pose_specialization(session, node)
            else:
                self._push_successors(session, node)
                self._sample()
        else:
            self._sample()
        return True

    def _pose_specialization(self, session: _Session[Node], node: Node) -> None:
        candidates = [
            s
            for s in self._ordered_successors(node)
            if self.state.status(s) is not Status.INSIGNIFICANT
            and s not in session.answers
            and not any(
                session.user.matches_prune(s, t) for t in session.prune_tokens
            )
        ]
        if not candidates:
            return
        self.questions += 1
        self.questions_per_user[session.user.member_id] = (
            self.questions_per_user.get(session.user.member_id, 0) + 1
        )
        self.stats.specialization += 1
        if self._obs is not None:
            self._obs.count("crowd.questions")
            self._obs.count("crowd.questions.specialization")
        choice = session.user.choose_specialization(node, candidates)
        if choice is None:
            # "none of these": zero answers for every offered candidate
            self.stats.none_of_these += 1
            if self._obs is not None:
                self._obs.count("crowd.none_of_these")
            for candidate in candidates:
                session.answers[candidate] = 0.0
                self._record_answer(candidate, session.user.member_id, 0.0)
        else:
            chosen, support = choice
            session.answers[chosen] = support
            self._record_answer(chosen, session.user.member_id, support)
            # explore the named specialization first, the rest later
            for candidate in candidates:
                if candidate != chosen and candidate not in session.visited:
                    session.stack.append(candidate)
            session.visited.discard(chosen)
            session.stack.append(chosen)
        self._sample()

    def _maybe_propose_more(self, session: _Session[Node], node: Node) -> None:
        """Register a volunteered MORE extension (no question cost).

        The paper's "more" button accompanies an answer; the proposed
        extension becomes a successor of ``node`` in the lazy space and is
        then verified with ordinary concrete questions.
        """
        if not hasattr(self.space, "propose_more_fact"):
            return
        tip = session.user.more_tip(node)
        if tip is None:
            return
        extended = self.space.propose_more_fact(node, tip)
        if extended is not None:
            self.stats.more_tips += 1
            # an unconfirmed candidate MSP gains a successor mid-run: the
            # tracker's pending frontier must include it
            self.tracker.note_new_successor(node, extended)
            if self._obs is not None:
                self._obs.count("crowd.more_tips")

    def _push_successors(self, session: _Session[Node], node: Node) -> None:
        # reversed: the stack pops in chain-partition order, so a user
        # walks one taxonomy chain to its end before switching chains
        for successor in reversed(self._ordered_successors(node)):
            if successor not in session.visited:
                session.stack.append(successor)

    # ------------------------------------------------------------ recording

    def _record_answer(self, node: Node, member_id: str, support: float) -> None:
        self.aggregator.add_answer(node, member_id, support)
        if self.cache is not None:
            self.cache.record(node, member_id, support)
        verdict = self.aggregator.verdict(node)
        if verdict is Verdict.SIGNIFICANT:
            if self.state.status(node) is Status.UNKNOWN:
                self.state.mark_significant(node)
                if self._obs is not None:
                    self._obs.count("mining.classified.by_crowd")
            self.tracker.note_significant(node)
        elif verdict is Verdict.INSIGNIFICANT:
            if self.state.status(node) is Status.UNKNOWN:
                self.state.mark_insignificant(node)
                if self._obs is not None:
                    self._obs.count("mining.classified.by_crowd")

    def _sample(self) -> None:
        classified_valid = self.progress.refresh() if self.progress is not None else 0
        targets_found = self.targets.refresh() if self.targets is not None else 0
        self.tracker.refresh()
        confirmed, confirmed_valid = self.tracker.counts()
        self.trace.sample(
            self.questions, confirmed, confirmed_valid, classified_valid, targets_found
        )
