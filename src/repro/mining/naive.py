"""Naive baseline — Section 6.4.

Randomly picks an unclassified *valid* assignment and asks about it, using
the same Observation 4.4 inference scheme as the other algorithms (and never
asking about already-classified assignments).  It performs well only when
MSPs are dense enough for lucky guesses.
"""

from __future__ import annotations

import random
from typing import Hashable, Optional, Sequence, TypeVar

from ..assignments.lattice import AssignmentSpace
from .state import ClassificationState
from .trace import MiningResult, MiningTrace, MspTracker, TargetTracker, ValidProgress
from .vertical import SupportOracle

Node = TypeVar("Node", bound=Hashable)


def naive_mine(
    space: AssignmentSpace[Node],
    support_oracle: SupportOracle,
    threshold: float,
    rng: Optional[random.Random] = None,
    valid_nodes: Optional[Sequence[Node]] = None,
    target_msps: Optional[Sequence[Node]] = None,
    max_questions: Optional[int] = None,
) -> MiningResult[Node]:
    """Random-order probing of the valid assignments.

    ``valid_nodes`` may be supplied to avoid re-materializing the space;
    otherwise the space is enumerated and filtered through ``is_valid``.
    """
    rng = rng if rng is not None else random.Random(0)
    if valid_nodes is None:
        valid_nodes = [n for n in space.all_nodes() if space.is_valid(n)]
    state: ClassificationState[Node] = ClassificationState(space)
    tracker: MspTracker[Node] = MspTracker(space, state)
    trace = MiningTrace()
    progress = ValidProgress(state, valid_nodes)
    targets = TargetTracker(state, target_msps) if target_msps is not None else None
    questions = 0

    order = list(valid_nodes)
    rng.shuffle(order)
    for node in order:
        if max_questions is not None and questions >= max_questions:
            break
        if state.is_classified(node):
            continue
        questions += 1
        if support_oracle(node) >= threshold:
            state.mark_significant(node)
            tracker.note_significant(node)
        else:
            state.mark_insignificant(node)
        classified_valid = progress.refresh()
        targets_found = targets.refresh() if targets is not None else 0
        tracker.refresh()
        confirmed, confirmed_valid = tracker.counts()
        trace.sample(questions, confirmed, confirmed_valid, classified_valid, targets_found)

    tracker.refresh(force=True)
    msps = sorted(tracker.confirmed(), key=repr)
    valid_msps = [n for n in msps if space.is_valid(n)]
    return MiningResult(msps, valid_msps, questions, trace, state)
