"""Horizontal (Apriori-inspired) baseline — Section 6.4.

Levelwise bottom-up evaluation: an assignment is asked about only after
*all* of its immediate predecessors have been verified significant, exactly
like Apriori's candidate generation.  It shares the Observation 4.4
inference scheme with the vertical algorithm and never re-asks classified
assignments, so the comparison isolates the traversal order.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence, Set, TypeVar

from ..assignments.lattice import AssignmentSpace
from ..observability import get_tracer, span as _obs_span
from .state import ClassificationState, Status
from .trace import MiningResult, MiningTrace, MspTracker, TargetTracker, ValidProgress
from .vertical import SupportOracle

Node = TypeVar("Node", bound=Hashable)


def horizontal_mine(
    space: AssignmentSpace[Node],
    support_oracle: SupportOracle,
    threshold: float,
    valid_nodes: Optional[Sequence[Node]] = None,
    target_msps: Optional[Sequence[Node]] = None,
    max_questions: Optional[int] = None,
) -> MiningResult[Node]:
    """Levelwise mining: breadth-first, gated on all-predecessors-significant."""
    state: ClassificationState[Node] = ClassificationState(space)
    tracker: MspTracker[Node] = MspTracker(space, state)
    trace = MiningTrace()
    progress = ValidProgress(state, valid_nodes) if valid_nodes is not None else None
    targets = TargetTracker(state, target_msps) if target_msps is not None else None
    questions = 0

    def sample() -> None:
        classified_valid = progress.refresh() if progress is not None else 0
        targets_found = targets.refresh() if targets is not None else 0
        tracker.refresh()
        confirmed, confirmed_valid = tracker.counts()
        trace.sample(questions, confirmed, confirmed_valid, classified_valid, targets_found)

    obs = get_tracer()

    def ask(node: Node) -> bool:
        nonlocal questions
        questions += 1
        if obs is not None:
            obs.count("crowd.questions")
            obs.count("crowd.questions.concrete")
            obs.count("mining.classified.by_crowd")
        significant = support_oracle(node) >= threshold
        if significant:
            state.mark_significant(node)
            tracker.note_significant(node)
        else:
            state.mark_insignificant(node)
        sample()
        return significant

    # frontier of candidates whose predecessors are all known significant
    with _obs_span("mine.horizontal"):
        pending: List[Node] = list(space.roots())
        enqueued: Set[Node] = set(pending)
        index = 0
        while index < len(pending):
            if max_questions is not None and questions >= max_questions:
                break
            node = pending[index]
            index += 1
            status = state.status(node)
            if status is Status.UNKNOWN:
                significant = ask(node)
            else:
                significant = status is Status.SIGNIFICANT
                if significant:
                    tracker.note_significant(node)
            if not significant:
                continue
            for successor in space.successors(node):
                if successor in enqueued:
                    continue
                predecessors = space.predecessors(successor)
                if all(state.status(p) is Status.SIGNIFICANT for p in predecessors):
                    enqueued.add(successor)
                    pending.append(successor)

    tracker.refresh(force=True)
    msps = sorted(tracker.confirmed(), key=repr)
    valid_msps = [n for n in msps if space.is_valid(n)]
    return MiningResult(msps, valid_msps, questions, trace, state)
