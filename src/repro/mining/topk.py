"""Top-k and diversified answers (Section 8 future-work extensions).

* :func:`vertical_mine_top_k` — Algorithm 1 with early termination once
  ``k`` MSPs are confirmed.  The vertical traversal makes this effective:
  it produces complete MSPs incrementally (the paper: "answers can be
  returned faster, as soon as they are identified"), so stopping early
  saves the whole remaining exploration.
* :func:`diversify` — pick ``k`` answers that are pairwise semantically
  far apart, by greedy max-min selection under a lattice distance (the
  symmetric difference of the assignments' down-sets is approximated by
  value-level taxonomy distance).
"""

from __future__ import annotations

import random
from typing import Callable, Hashable, List, Optional, Sequence, TypeVar

from ..assignments.assignment import Assignment
from ..assignments.lattice import AssignmentSpace
from ..vocabulary.vocabulary import Vocabulary
from .state import ClassificationState
from .trace import MiningResult, MiningTrace, MspTracker
from .vertical import SupportOracle, find_minimal_unclassified

Node = TypeVar("Node", bound=Hashable)


def vertical_mine_top_k(
    space: AssignmentSpace[Node],
    support_oracle: SupportOracle,
    threshold: float,
    k: int,
    valid_only: bool = True,
    max_questions: Optional[int] = None,
) -> MiningResult[Node]:
    """Run the vertical algorithm until ``k`` (valid) MSPs are confirmed."""
    if k < 1:
        raise ValueError("k must be positive")
    state: ClassificationState[Node] = ClassificationState(space)
    tracker: MspTracker[Node] = MspTracker(space, state)
    trace = MiningTrace()
    questions = 0
    msps: List[Node] = []

    def ask(node: Node) -> bool:
        nonlocal questions
        questions += 1
        significant = support_oracle(node) >= threshold
        if significant:
            state.mark_significant(node)
            tracker.note_significant(node)
        else:
            state.mark_insignificant(node)
        tracker.refresh()
        confirmed, confirmed_valid = tracker.counts()
        trace.sample(questions, confirmed, confirmed_valid, 0)
        return significant

    def collected() -> int:
        return len([m for m in msps if not valid_only or space.is_valid(m)])

    while collected() < k:
        if max_questions is not None and questions >= max_questions:
            break
        current = find_minimal_unclassified(space, state)
        if current is None:
            break
        if not ask(current):
            continue
        while True:
            unclassified = [
                s for s in space.successors(current) if not state.is_classified(s)
            ]
            if not unclassified:
                break
            descended = False
            for successor in unclassified:
                if state.is_classified(successor):
                    continue
                if ask(successor):
                    current = successor
                    descended = True
                    break
            if not descended:
                break
        msps.append(current)

    unique = list(dict.fromkeys(msps))
    valid_msps = [n for n in unique if space.is_valid(n)]
    if valid_only:
        reported = valid_msps[:k]
    else:
        reported = unique[:k]
    return MiningResult(reported, valid_msps[:k], questions, trace, state)


def assignment_distance(a: Assignment, b: Assignment, vocabulary: Vocabulary) -> float:
    """A simple semantic distance between assignments.

    Per shared variable, 0 when the value sets are equal, 0.5 when they are
    comparable (one refines the other), 1 when incomparable; variables
    present in only one assignment count 1.  MORE facts contribute their
    symmetric difference size (capped at 1).  The result is normalized by
    the number of contributing components.
    """
    names = set(a.values) | set(b.values)
    total = 0.0
    parts = 0
    for name in names:
        parts += 1
        va, vb = a.get(name), b.get(name)
        if va == vb:
            continue
        if not va or not vb:
            total += 1.0
            continue
        sub = Assignment({name: va})
        sup = Assignment({name: vb})
        if sub.leq(sup, vocabulary) or sup.leq(sub, vocabulary):
            total += 0.5
        else:
            total += 1.0
    if a.more or b.more:
        parts += 1
        if a.more != b.more:
            total += min(1.0, len(a.more ^ b.more))
    if parts == 0:
        return 0.0
    return total / parts


def diversify(
    answers: Sequence[Node],
    k: int,
    distance: Callable[[Node, Node], float],
    seed: int = 0,
) -> List[Node]:
    """Greedy max-min selection of ``k`` mutually distant answers."""
    if k < 1:
        raise ValueError("k must be positive")
    pool = list(answers)
    if len(pool) <= k:
        return pool
    rng = random.Random(seed)
    chosen = [pool.pop(rng.randrange(len(pool)))]
    while len(chosen) < k and pool:
        best_index = max(
            range(len(pool)),
            key=lambda i: min(distance(pool[i], c) for c in chosen),
        )
        chosen.append(pool.pop(best_index))
    return chosen
