"""Classic frequent-itemset mining, plain and taxonomy-aware.

Two related roles in the reproduction:

* Section 4.1 notes that OASSIS-QL with multiplicities captures standard
  frequent itemset mining (empty WHERE clause, ``$x+ [] []`` SATISFYING).
  :func:`frequent_itemsets` is the reference Apriori [Agrawal & Srikant 94]
  the reduction is checked against.
* Section 7 traces the taxonomy idea to Srikant & Agrawal's generalized
  association rules; :func:`generalized_frequent_itemsets` implements that
  Cumulate-style algorithm over a term taxonomy, and
  :func:`mine_frequent_fact_sets` applies the same levelwise scheme
  directly to materialized personal databases — OASSIS-QL evaluation
  *without* a crowd, the paper's "independent contribution outside of the
  crowd setting".
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Hashable, Iterable, List, Sequence, Set, TypeVar

from ..ontology.facts import Fact, FactSet
from ..vocabulary.orders import PartialOrder
from ..vocabulary.terms import Term
from ..vocabulary.vocabulary import Vocabulary
from .msp import maximal_nodes

Item = TypeVar("Item", bound=Hashable)


def support_count(
    transactions: Sequence[FrozenSet[Item]], itemset: FrozenSet[Item]
) -> int:
    """Number of transactions containing ``itemset``."""
    return sum(1 for t in transactions if itemset <= t)


def frequent_itemsets(
    transactions: Sequence[Iterable[Item]], min_support: float
) -> Dict[FrozenSet[Item], float]:
    """Apriori: all itemsets with relative support >= ``min_support``.

    Returns a mapping itemset -> support.  ``min_support`` is relative to
    the number of transactions; an empty transaction list yields {}.
    """
    if not 0.0 < min_support <= 1.0:
        raise ValueError(f"min_support must be in (0, 1], got {min_support}")
    rows = [frozenset(t) for t in transactions]
    if not rows:
        return {}
    total = len(rows)
    needed = min_support * total

    # level 1
    counts: Dict[FrozenSet[Item], int] = {}
    for row in rows:
        for item in row:
            key = frozenset({item})
            counts[key] = counts.get(key, 0) + 1
    frequent: Dict[FrozenSet[Item], float] = {
        itemset: count / total
        for itemset, count in counts.items()
        if count >= needed
    }
    level = [s for s in frequent]
    k = 1
    while level:
        k += 1
        candidates = _apriori_gen(level, k)
        counts = {c: 0 for c in candidates}
        if counts:
            for row in rows:
                for candidate in candidates:
                    if candidate <= row:
                        counts[candidate] += 1
        level = []
        for candidate, count in counts.items():
            if count >= needed:
                frequent[candidate] = count / total
                level.append(candidate)
    return frequent


def _apriori_gen(level: List[FrozenSet[Item]], k: int) -> List[FrozenSet[Item]]:
    """Join step + prune step of Apriori candidate generation."""
    prior = set(level)
    candidates: Set[FrozenSet[Item]] = set()
    for a, b in itertools.combinations(level, 2):
        union = a | b
        if len(union) != k:
            continue
        if all(frozenset(sub) in prior for sub in itertools.combinations(union, k - 1)):
            candidates.add(union)
    return sorted(candidates, key=lambda s: sorted(map(repr, s)))


def extend_with_ancestors(
    transaction: Iterable[Term], taxonomy: PartialOrder
) -> FrozenSet[Term]:
    """A transaction plus every ancestor of its items (Cumulate's T')."""
    extended: Set[Term] = set()
    for item in transaction:
        if item in taxonomy:
            extended.update(taxonomy.ancestors(item))
        else:
            extended.add(item)
    return frozenset(extended)


def generalized_frequent_itemsets(
    transactions: Sequence[Iterable[Term]],
    taxonomy: PartialOrder,
    min_support: float,
) -> Dict[FrozenSet[Term], float]:
    """Srikant–Agrawal generalized itemsets over a term taxonomy.

    Each transaction is extended with the ancestors of its items, then
    Apriori runs on the extended data; itemsets containing both an item and
    one of its ancestors are pruned (their support equals that of the set
    without the ancestor, so they are redundant).
    """
    extended = [extend_with_ancestors(t, taxonomy) for t in transactions]
    raw = frequent_itemsets(extended, min_support)
    result: Dict[FrozenSet[Term], float] = {}
    for itemset, support in raw.items():
        redundant = any(
            a != b and taxonomy.leq(a, b)
            for a in itemset
            for b in itemset
        )
        if not redundant:
            result[itemset] = support
    return result


def mine_frequent_fact_sets(
    databases: Sequence[Sequence[FactSet]],
    vocabulary: Vocabulary,
    threshold: float,
    max_size: int = 3,
) -> Dict[FactSet, float]:
    """Frequent fact-sets over materialized personal DBs (no crowd).

    The significance measure matches Section 2: per-person support is the
    fraction of transactions implying the fact-set, and the overall support
    is the average over persons.  Candidate facts are the generalization
    closures of the facts observed in the data; fact-sets grow levelwise
    with the standard anti-monotonicity pruning.  Fact-sets that contain
    two ≤-comparable facts are redundant and skipped.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    if not databases:
        return {}

    candidate_facts: Set[Fact] = set()
    for database in databases:
        for transaction in database:
            for fact in transaction:
                for subject in vocabulary.ancestors(fact.subject):
                    for relation in vocabulary.ancestors(fact.relation):
                        for obj in vocabulary.ancestors(fact.obj):
                            candidate_facts.add(Fact(subject, relation, obj))

    def average_support(fact_set: FactSet) -> float:
        total = 0.0
        for database in databases:
            if not database:
                continue
            hits = sum(
                1 for t in database if t.implies(fact_set, vocabulary)
            )
            total += hits / len(database)
        return total / len(databases)

    result: Dict[FactSet, float] = {}
    level: List[FactSet] = []
    for fact in sorted(candidate_facts):
        fact_set = FactSet([fact])
        support = average_support(fact_set)
        if support >= threshold:
            result[fact_set] = support
            level.append(fact_set)

    size = 1
    while level and size < max_size:
        size += 1
        seen: Set[FactSet] = set()
        next_level: List[FactSet] = []
        for a, b in itertools.combinations(level, 2):
            union = a | b
            if len(union) != size or union in seen:
                continue
            seen.add(union)
            facts = list(union)
            comparable = any(
                f != g and (f.leq(g, vocabulary) or g.leq(f, vocabulary))
                for f, g in itertools.combinations(facts, 2)
            )
            if comparable:
                continue
            support = average_support(union)
            if support >= threshold:
                result[union] = support
                next_level.append(union)
        level = next_level
    return result


def maximal_fact_sets(
    fact_sets: Iterable[FactSet], vocabulary: Vocabulary
) -> List[FactSet]:
    """The ≤-maximal (most specific) fact-sets — the MSP analogue."""
    return maximal_nodes(list(fact_sets), lambda a, b: a.leq(b, vocabulary))
