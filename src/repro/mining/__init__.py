"""Mining algorithms: vertical (Alg. 1), multi-user, baselines, itemsets."""

from .horizontal import horizontal_mine
from .itemsets import (
    extend_with_ancestors,
    frequent_itemsets,
    generalized_frequent_itemsets,
    maximal_fact_sets,
    mine_frequent_fact_sets,
)
from .msp import (
    brute_force_msps,
    downward_closed,
    maximal_nodes,
    minimal_nodes,
    negative_border,
)
from .multiuser import (
    FunctionUser,
    MultiUserMiner,
    MultiUserResult,
    QuestionStats,
    ReplayUser,
    UserOracle,
)
from .naive import naive_mine
from .replay import ReplayResult, replay_from_cache
from .rules import AssociationRule, mine_association_rules
from .topk import assignment_distance, diversify, vertical_mine_top_k
from .state import ClassificationState, Status
from .trace import (
    MiningResult,
    MiningTrace,
    MspTracker,
    TargetTracker,
    TracePoint,
    ValidProgress,
)
from .vertical import find_minimal_unclassified, vertical_mine

__all__ = [
    "AssociationRule",
    "ClassificationState",
    "FunctionUser",
    "MiningResult",
    "MiningTrace",
    "MspTracker",
    "MultiUserMiner",
    "MultiUserResult",
    "QuestionStats",
    "ReplayResult",
    "ReplayUser",
    "Status",
    "TargetTracker",
    "TracePoint",
    "UserOracle",
    "ValidProgress",
    "assignment_distance",
    "brute_force_msps",
    "diversify",
    "downward_closed",
    "extend_with_ancestors",
    "find_minimal_unclassified",
    "frequent_itemsets",
    "generalized_frequent_itemsets",
    "horizontal_mine",
    "maximal_fact_sets",
    "maximal_nodes",
    "mine_frequent_fact_sets",
    "mine_association_rules",
    "minimal_nodes",
    "naive_mine",
    "replay_from_cache",
    "negative_border",
    "vertical_mine",
    "vertical_mine_top_k",
]
