"""MSP definitions and brute-force reference computations (Def. 4.3).

These helpers compute ground-truth answers by exhaustive enumeration; tests
use them to verify that the interactive algorithms return exactly the right
MSP sets, and experiments use them to plant consistent significance
landscapes.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, List, TypeVar

from ..assignments.lattice import AssignmentSpace

Node = TypeVar("Node", bound=Hashable)


def maximal_nodes(
    nodes: Iterable[Node], leq: Callable[[Node, Node], bool]
) -> List[Node]:
    """The ≤-maximal (most specific) elements of ``nodes``."""
    pool = list(nodes)
    return [
        a
        for a in pool
        if not any(a != b and leq(a, b) for b in pool)
    ]


def minimal_nodes(
    nodes: Iterable[Node], leq: Callable[[Node, Node], bool]
) -> List[Node]:
    """The ≤-minimal (most general) elements of ``nodes``."""
    pool = list(nodes)
    return [
        a
        for a in pool
        if not any(a != b and leq(b, a) for b in pool)
    ]


def brute_force_msps(
    space: AssignmentSpace[Node],
    significant: Callable[[Node], bool],
    valid_only: bool = True,
) -> List[Node]:
    """All MSPs by exhaustive enumeration of the space.

    ``Def. 4.3``: a valid, significant assignment with no valid significant
    successor.  With ``valid_only=False``, maximality is taken over all
    significant assignments instead (the expanded-space MSPs the vertical
    algorithm discovers before intersecting with the valid set).
    """
    nodes = space.all_nodes()
    if valid_only:
        candidates = [n for n in nodes if space.is_valid(n) and significant(n)]
    else:
        candidates = [n for n in nodes if significant(n)]
    return maximal_nodes(candidates, space.leq)


def downward_closed(
    space: AssignmentSpace[Node], significant: Callable[[Node], bool]
) -> bool:
    """Check Observation 4.4 on a (small) space: significance is a down-set."""
    nodes = space.all_nodes()
    for node in nodes:
        if not significant(node):
            continue
        for other in nodes:
            if space.leq(other, node) and not significant(other):
                return False
    return True


def negative_border(
    space: AssignmentSpace[Node], significant: Callable[[Node], bool]
) -> List[Node]:
    """The minimal insignificant assignments (``msp⁻`` of Prop. 4.7/4.8).

    These are the most general assignments that are *not* significant; any
    sound algorithm must ask at least about them plus the MSPs
    (Proposition 4.8's lower bound).
    """
    nodes = space.all_nodes()
    insignificant = [n for n in nodes if not significant(n)]
    return minimal_nodes(insignificant, space.leq)
