"""The vertical algorithm (Algorithm 1) — single-user query evaluation.

Top-down traversal of the expanded assignment space: repeatedly pick the
most general unclassified assignment, and while it is significant, chase
unclassified immediate successors, descending on every significant answer.
The most specific significant assignment reached is appended to the output;
``ask`` classifies whole up-/down-sets per Observation 4.4, so most of the
space is never asked about.

Optional hooks reproduce the Section 6.2/6.4 interaction optimizations:

* ``specialization_oracle`` — with probability ``specialization_ratio``,
  instead of probing successors one by one the (simulated) user is asked an
  open question and directly names a significant successor, or answers
  "none of these", classifying every offered candidate at once;
* ``prune_oracle`` — with probability ``pruning_ratio`` a question is
  accompanied by a user-guided pruning click, classifying extra nodes as
  insignificant at no question cost.
"""

from __future__ import annotations

import random
from typing import Callable, Hashable, List, Optional, Sequence, Set, TypeVar

from ..assignments.lattice import AssignmentSpace
from ..observability import get_tracer, span as _obs_span
from .state import ClassificationState, Status
from .trace import MiningResult, MiningTrace, MspTracker, TargetTracker, ValidProgress

Node = TypeVar("Node", bound=Hashable)

#: A support oracle: maps a node to the (single) user's support value.
SupportOracle = Callable[[Node], float]

#: A specialization oracle: given the current node and the offered
#: candidates, returns a significant candidate or None ("none of these").
SpecializationOracle = Callable[[Node, Sequence[Node]], Optional[Node]]

#: A pruning oracle: given the just-asked node, returns extra nodes whose
#: up-sets should be classified insignificant for free.
PruneOracle = Callable[[Node], Sequence[Node]]


def find_minimal_unclassified(
    space: AssignmentSpace[Node], state: ClassificationState[Node]
) -> Optional[Node]:
    """The most general unclassified node, by top-down BFS from the roots.

    Never descends through insignificant nodes (their up-sets are fully
    classified).  Returns None when everything reachable is classified.
    """
    seen: Set[Node] = set()
    frontier: List[Node] = []
    for root in space.roots():
        if root not in seen:
            seen.add(root)
            frontier.append(root)
    index = 0
    while index < len(frontier):
        node = frontier[index]
        index += 1
        status = state.status(node)
        if status is Status.UNKNOWN:
            return node
        if status is Status.INSIGNIFICANT:
            continue
        for successor in space.successors(node):
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    return None


def vertical_mine(
    space: AssignmentSpace[Node],
    support_oracle: SupportOracle,
    threshold: float,
    specialization_oracle: Optional[SpecializationOracle] = None,
    specialization_ratio: float = 0.0,
    prune_oracle: Optional[PruneOracle] = None,
    pruning_ratio: float = 0.0,
    rng: Optional[random.Random] = None,
    valid_nodes: Optional[Sequence[Node]] = None,
    target_msps: Optional[Sequence[Node]] = None,
    max_questions: Optional[int] = None,
) -> MiningResult[Node]:
    """Run Algorithm 1 against a single (simulated) user.

    ``valid_nodes``, when given, enables the classified-valid progress
    series in the trace (used by the pace-of-collection figures).
    """
    rng = rng if rng is not None else random.Random(0)
    obs = get_tracer()
    state: ClassificationState[Node] = ClassificationState(space)
    tracker: MspTracker[Node] = MspTracker(space, state)
    trace = MiningTrace()
    progress = ValidProgress(state, valid_nodes) if valid_nodes is not None else None
    targets = TargetTracker(state, target_msps) if target_msps is not None else None
    questions = 0
    msps: List[Node] = []

    def sample() -> None:
        classified_valid = progress.refresh() if progress is not None else 0
        targets_found = targets.refresh() if targets is not None else 0
        tracker.refresh()
        confirmed, confirmed_valid = tracker.counts()
        trace.sample(questions, confirmed, confirmed_valid, classified_valid, targets_found)

    def ask(node: Node) -> bool:
        nonlocal questions
        questions += 1
        if obs is not None:
            obs.count("crowd.questions")
            obs.count("crowd.questions.concrete")
            obs.count("mining.classified.by_crowd")
        support = support_oracle(node)
        significant = support >= threshold
        if significant:
            state.mark_significant(node)
            tracker.note_significant(node)
        else:
            state.mark_insignificant(node)
        if prune_oracle is not None and rng.random() < pruning_ratio:
            if obs is not None:
                obs.count("crowd.pruning_clicks")
            for pruned in prune_oracle(node):
                state.mark_insignificant(pruned)
        sample()
        return significant

    def budget_left() -> bool:
        return max_questions is None or questions < max_questions

    with _obs_span("mine.vertical"):
        while budget_left():
            current = find_minimal_unclassified(space, state)
            if current is None:
                break
            if not ask(current):
                continue
            # inner loop: chase significant successors
            descending = True
            while descending and budget_left():
                unclassified = [
                    s for s in space.successors(current) if not state.is_classified(s)
                ]
                if not unclassified:
                    break
                if (
                    specialization_oracle is not None
                    and rng.random() < specialization_ratio
                ):
                    questions += 1
                    if obs is not None:
                        obs.count("crowd.questions")
                        obs.count("crowd.questions.specialization")
                    chosen = specialization_oracle(current, unclassified)
                    if chosen is None:
                        # "none of these": every offered candidate is support 0
                        if obs is not None:
                            obs.count("crowd.none_of_these")
                        for candidate in unclassified:
                            state.mark_insignificant(candidate)
                        sample()
                        break
                    state.mark_significant(chosen)
                    tracker.note_significant(chosen)
                    sample()
                    current = chosen
                    continue
                descending = False
                for successor in unclassified:
                    if not budget_left():
                        break
                    if state.is_classified(successor):
                        continue  # classified by an earlier ask in this scan
                    if ask(successor):
                        current = successor
                        descending = True
                        break
            msps.append(current)

    unique_msps: List[Node] = []
    seen: Set[Node] = set()
    for node in msps:
        if node not in seen:
            seen.add(node)
            unique_msps.append(node)
    valid_msps = [n for n in unique_msps if space.is_valid(n)]
    if obs is not None:
        obs.count("mining.msps.found", len(unique_msps))
        obs.count("mining.msps.valid", len(valid_msps))
    return MiningResult(unique_msps, valid_msps, questions, trace, state)
