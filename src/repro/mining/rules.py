"""Association-rule mining over fact-sets (the language-guide extension).

The paper's language guide describes mining association rules in addition
to plain fact-sets (Sections 3 and 7 reference DMQL-style rule mining).
This module derives rules ``X ⇒ Y`` from a frequent-fact-set table: the
antecedent and consequent are disjoint fact-sets whose union is frequent,
scored by the standard confidence ``supp(X ∪ Y) / supp(X)`` and lift.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Mapping, NamedTuple, Optional

from ..ontology.facts import Fact, FactSet
from ..vocabulary.vocabulary import Vocabulary


class AssociationRule(NamedTuple):
    """``antecedent ⇒ consequent`` with its quality measures."""

    antecedent: FactSet
    consequent: FactSet
    support: float
    confidence: float
    lift: float

    def __str__(self) -> str:
        left = " . ".join(str(f) for f in sorted(self.antecedent))
        right = " . ".join(str(f) for f in sorted(self.consequent))
        return (
            f"{left} => {right} "
            f"(supp={self.support:.2f}, conf={self.confidence:.2f}, "
            f"lift={self.lift:.2f})"
        )


def mine_association_rules(
    frequent: Mapping[FactSet, float],
    min_confidence: float = 0.6,
    vocabulary: Optional[Vocabulary] = None,
    min_lift: float = 0.0,
) -> List[AssociationRule]:
    """Rules from a frequent-fact-set table (e.g. ``mine_frequent_fact_sets``).

    Every frequent fact-set of size ≥ 2 is split into all non-trivial
    (antecedent, consequent) partitions; a rule is kept when the antecedent
    is itself in the table (it must be, by anti-monotonicity) and the
    confidence clears ``min_confidence``.  When a ``vocabulary`` is given,
    rules whose consequent is implied by the antecedent (a generalization)
    are dropped as uninformative.  ``min_lift`` filters out rules whose
    consequent is nearly independent of the antecedent (class-level
    near-tautologies such as "Food ⇒ Drink" have lift ≈ 1).
    """
    if not 0.0 < min_confidence <= 1.0:
        raise ValueError(f"min_confidence must be in (0, 1], got {min_confidence}")
    rules: List[AssociationRule] = []
    for fact_set, support in frequent.items():
        facts = sorted(fact_set)
        if len(facts) < 2:
            continue
        for antecedent_facts in _proper_subsets(facts):
            antecedent = FactSet(antecedent_facts)
            consequent = FactSet(f for f in facts if f not in antecedent_facts)
            antecedent_support = frequent.get(antecedent)
            if not antecedent_support:
                continue
            confidence = support / antecedent_support
            if confidence < min_confidence:
                continue
            if vocabulary is not None and consequent.leq(antecedent, vocabulary):
                continue  # the consequent is already implied: no information
            consequent_support = frequent.get(consequent)
            lift = (
                confidence / consequent_support
                if consequent_support
                else float("inf")
            )
            if lift < min_lift:
                continue
            rules.append(
                AssociationRule(antecedent, consequent, support, confidence, lift)
            )
    rules.sort(key=lambda r: (-r.confidence, -r.support, str(r)))
    return rules


def _proper_subsets(facts: List[Fact]) -> Iterator[tuple]:
    for size in range(1, len(facts)):
        yield from itertools.combinations(facts, size)
