"""Threshold replay from cached answers (Section 6.3).

Crowd answers are independent of the support threshold, so a query executed
at threshold 0.2 can be re-evaluated at 0.3/0.4/0.5 from the
:class:`~repro.crowd.cache.CrowdCache` alone.  The paper counts, per
threshold, "only the answers used by the algorithm out of the cached ones";
this module implements exactly that accounting: a vertical-style traversal
whose ``ask`` consumes the first ``sample_size`` cached answers of each
assignment it visits.

Assignments with no cached answers are treated as insignificant: the
original (lowest-threshold) run only left a node unasked when it lay below
its insignificant boundary, and support monotonicity makes such nodes
insignificant at every higher threshold too.  Cache misses are still
counted and reported so that a *mis*-use of replay (e.g. replaying at a
*lower* threshold) is visible.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence, Set, TypeVar

from ..assignments.lattice import AssignmentSpace
from ..crowd.cache import CrowdCache
from ..observability import get_tracer, span as _obs_span
from .state import ClassificationState
from .trace import MiningResult, MiningTrace, MspTracker, TargetTracker, ValidProgress
from .vertical import find_minimal_unclassified

Node = TypeVar("Node", bound=Hashable)


class ReplayResult(MiningResult[Node]):
    """Replay outcome; ``questions`` counts the cached answers used."""

    def __init__(self, *args, cache_misses: int = 0, nodes_visited: int = 0):
        super().__init__(*args)
        self.cache_misses = cache_misses
        self.nodes_visited = nodes_visited


def replay_from_cache(
    space: AssignmentSpace[Node],
    cache: CrowdCache,
    threshold: float,
    sample_size: int = 5,
    valid_nodes: Optional[Sequence[Node]] = None,
    target_msps: Optional[Sequence[Node]] = None,
) -> ReplayResult[Node]:
    """Re-evaluate at ``threshold`` using only cached answers.

    Returns a result whose ``questions`` field is the number of cached
    answers the traversal consumed — the Section 6.3 per-threshold count.
    """
    state: ClassificationState[Node] = ClassificationState(space)
    tracker: MspTracker[Node] = MspTracker(space, state, stride=5)
    trace = MiningTrace()
    progress = ValidProgress(state, valid_nodes) if valid_nodes is not None else None
    targets = TargetTracker(state, target_msps) if target_msps is not None else None
    answers_used = 0
    cache_misses = 0
    nodes_visited = 0
    msps: List[Node] = []

    def sample() -> None:
        classified_valid = progress.refresh() if progress is not None else 0
        targets_found = targets.refresh() if targets is not None else 0
        tracker.refresh()
        confirmed, confirmed_valid = tracker.counts()
        trace.sample(
            answers_used, confirmed, confirmed_valid, classified_valid, targets_found
        )

    obs = get_tracer()

    def ask(node: Node) -> bool:
        nonlocal answers_used, cache_misses, nodes_visited
        nodes_visited += 1
        if obs is not None:
            obs.count("replay.nodes_visited")
        answers = cache.answers_for(node)[:sample_size]
        if not answers:
            cache_misses += 1
            if obs is not None:
                obs.count("replay.cache_misses")
            state.mark_insignificant(node)
            sample()
            return False
        answers_used += len(answers)
        if obs is not None:
            obs.count("replay.answers_used", len(answers))
        average = sum(s for _, s in answers) / len(answers)
        significant = average >= threshold
        if significant:
            state.mark_significant(node)
            tracker.note_significant(node)
        else:
            state.mark_insignificant(node)
        sample()
        return significant

    with _obs_span("mine.replay"):
        while True:
            current = find_minimal_unclassified(space, state)
            if current is None:
                break
            if not ask(current):
                continue
            descending = True
            while descending:
                unclassified = [
                    s for s in space.successors(current) if not state.is_classified(s)
                ]
                if not unclassified:
                    break
                descending = False
                for successor in unclassified:
                    if state.is_classified(successor):
                        continue
                    if ask(successor):
                        current = successor
                        descending = True
                        break
            msps.append(current)

    tracker.refresh(force=True)
    unique: List[Node] = []
    seen: Set[Node] = set()
    for node in msps:
        if node not in seen:
            seen.add(node)
            unique.append(node)
    valid_msps = [n for n in unique if space.is_valid(n)]
    return ReplayResult(
        unique,
        valid_msps,
        answers_used,
        trace,
        state,
        cache_misses=cache_misses,
        nodes_visited=nodes_visited,
    )
