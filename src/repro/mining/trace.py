"""Execution traces and results shared by all mining algorithms.

The paper's pace-of-collection plots (Figures 4d–4f, 5) chart the number of
questions asked against the percentage of MSPs discovered / assignments
classified.  :class:`MiningTrace` records one sample per question so those
series can be reproduced exactly, and :class:`MspTracker` maintains the set
of *confirmed* MSPs incrementally (a significant node is a confirmed MSP
once every successor is classified insignificant).
"""

from __future__ import annotations

from typing import (
    Dict,
    Generic,
    Hashable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    TypeVar,
)

from ..assignments.lattice import AssignmentSpace
from .state import ClassificationState, Status

Node = TypeVar("Node", bound=Hashable)


class TracePoint(NamedTuple):
    """One sample of the execution trace, taken after a question."""

    questions: int
    msps_found: int
    valid_msps_found: int
    classified_valid: int
    #: of the experiment-supplied target MSPs, how many are known significant
    targets_found: int = 0


class MiningTrace:
    """The per-question progress series of one mining run."""

    def __init__(self) -> None:
        self.points: List[TracePoint] = []

    def sample(
        self,
        questions: int,
        msps: int,
        valid_msps: int,
        classified_valid: int,
        targets_found: int = 0,
    ) -> None:
        self.points.append(
            TracePoint(questions, msps, valid_msps, classified_valid, targets_found)
        )

    def questions_to_reach_msps(self, fraction: float, total_valid_msps: int) -> Optional[int]:
        """Questions needed to discover ``fraction`` of the valid MSPs."""
        if total_valid_msps == 0:
            return 0
        needed = fraction * total_valid_msps
        for point in self.points:
            if point.valid_msps_found >= needed:
                return point.questions
        return None

    def questions_to_reach_targets(self, fraction: float, total_targets: int) -> Optional[int]:
        """Questions needed to classify ``fraction`` of the target MSPs."""
        if total_targets == 0:
            return 0
        needed = fraction * total_targets
        for point in self.points:
            if point.targets_found >= needed:
                return point.questions
        return None

    def __len__(self) -> int:
        return len(self.points)


class MspTracker(Generic[Node]):
    """Maintains the confirmed-MSP set incrementally.

    A candidate (a node decided significant) is a confirmed MSP once every
    successor is classified insignificant.  Instead of re-expanding every
    candidate's successor list on each refresh, the tracker keeps a
    *pending frontier* per candidate — the successors not yet known
    insignificant — and each refresh only re-examines that shrinking set.
    Classification is monotone, so a successor leaves the frontier at most
    once and a candidate is confirmed exactly when its frontier drains.
    """

    def __init__(
        self,
        space: AssignmentSpace[Node],
        state: ClassificationState[Node],
        stride: int = 1,
    ):
        self.space = space
        self.state = state
        # nodes explicitly decided significant (by ask or aggregator verdict)
        self._significant_decided: Set[Node] = set()
        # candidate -> successors not yet classified insignificant
        self._pending: Dict[Node, List[Node]] = {}
        self._confirmed: Set[Node] = set()
        self._confirmed_valid: Set[Node] = set()
        self._stride = max(1, stride)
        self._calls = 0

    def note_significant(self, node: Node) -> None:
        """Register a node decided significant (candidate MSP)."""
        if node in self._significant_decided:
            return
        self._significant_decided.add(node)
        self._pending[node] = list(self.space.successors(node))

    def note_new_successor(self, node: Node, successor: Node) -> None:
        """Register a successor added to ``node`` after it became a candidate.

        Lazy spaces can grow mid-run (crowd-proposed MORE extensions); an
        unconfirmed candidate must then also see the new successor
        classified insignificant before it is confirmed.
        """
        pending = self._pending.get(node)
        if pending is not None and successor not in pending:
            pending.append(successor)

    def refresh(self, force: bool = False) -> None:
        """Advance the pending frontiers and confirm drained candidates.

        Like :class:`ValidProgress`, the scan is throttled to every
        ``stride`` calls; pass ``force=True`` before reading final results.
        """
        self._calls += 1
        if not force and self._stride > 1 and self._calls % self._stride != 1:
            return
        status = self.state.status
        for node in list(self._pending):
            remaining = [
                s
                for s in self._pending[node]
                if status(s) is not Status.INSIGNIFICANT
            ]
            if remaining:
                self._pending[node] = remaining
            else:
                del self._pending[node]
                self._confirmed.add(node)
                if self.space.is_valid(node):
                    self._confirmed_valid.add(node)

    def confirmed(self) -> Set[Node]:
        return set(self._confirmed)

    def confirmed_valid(self) -> Set[Node]:
        return set(self._confirmed_valid)

    def counts(self) -> tuple:
        return (len(self._confirmed), len(self._confirmed_valid))


class MiningResult(Generic[Node]):
    """The outcome of one mining run."""

    def __init__(
        self,
        msps: Sequence[Node],
        valid_msps: Sequence[Node],
        questions: int,
        trace: MiningTrace,
        state: ClassificationState[Node],
    ):
        self.msps = list(msps)
        self.valid_msps = list(valid_msps)
        self.questions = questions
        self.trace = trace
        self.state = state

    def __repr__(self) -> str:
        return (
            f"MiningResult(msps={len(self.msps)}, valid={len(self.valid_msps)}, "
            f"questions={self.questions})"
        )


class TargetTracker(Generic[Node]):
    """Counts how many experiment-supplied target MSPs are known significant.

    The Figure 4d–4f / Figure 5 "% of (valid) MSPs discovered" series counts
    a planted MSP as discovered once the algorithm has classified it as
    significant; this is well-defined for every algorithm, including the
    naive baseline that never proves maximality explicitly.
    """

    def __init__(self, state: ClassificationState[Node], targets: Sequence[Node]):
        self.state = state
        self._pending: Set[Node] = set(targets)
        self.total = len(self._pending)
        self.found = 0

    def refresh(self) -> int:
        done = [n for n in self._pending if self.state.is_significant(n)]
        for node in done:
            self._pending.discard(node)
        self.found += len(done)
        return self.found


class ValidProgress(Generic[Node]):
    """Tracks how many of a fixed valid-node universe are classified.

    A full rescan of the pending set costs O(pending) status checks; with
    per-question sampling over large spaces that dominates the runtime, so
    the scan runs every ``stride`` calls (the in-between samples reuse the
    last count — pace curves lose at most ``stride`` questions of
    resolution).
    """

    def __init__(
        self,
        state: ClassificationState[Node],
        valid_nodes: Sequence[Node],
        stride: int = 1,
    ):
        self.state = state
        self._unclassified: Set[Node] = set(valid_nodes)
        self.total = len(self._unclassified)
        self.classified = 0
        self._stride = max(1, stride)
        self._calls = 0

    def refresh(self, force: bool = False) -> int:
        """Move newly classified nodes out of the pending set."""
        self._calls += 1
        if not force and self._calls % self._stride != 1 and self._stride > 1:
            return self.classified
        done = [n for n in self._unclassified if self.state.is_classified(n)]
        for node in done:
            self._unclassified.discard(node)
        self.classified += len(done)
        return self.classified
