"""Synthetic workload generators for the Section 6.4 experiments."""

from .dag_gen import dag_statistics, generate_dag, layer_sizes
from .msp_placement import PlantedSignificance, place_msps
from .taxonomy import random_order, random_taxonomy, random_vocabulary

__all__ = [
    "PlantedSignificance",
    "dag_statistics",
    "generate_dag",
    "layer_sizes",
    "place_msps",
    "random_order",
    "random_taxonomy",
    "random_vocabulary",
]
