"""Synthetic workload generators for the Section 6.4 experiments."""

from .dag_gen import dag_statistics, generate_dag, layer_sizes
from .msp_placement import PlantedSignificance, place_msps

__all__ = [
    "PlantedSignificance",
    "dag_statistics",
    "generate_dag",
    "layer_sizes",
    "place_msps",
]
