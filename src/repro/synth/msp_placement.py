"""Planting MSPs in a synthetic DAG (Section 6.4).

Given a DAG, we pick a set of incomparable nodes as the intended MSPs and
derive the significance landscape: a node is significant iff it is a
generalization of (≤) some chosen MSP.  Three placement policies match the
paper's: uniform random, biased to *nearby* MSPs (pairwise DAG distance at
most a bound), and biased to *far* MSPs (pairwise distance at least a
bound).  MSPs can be drawn from the whole DAG or from the valid subset.
"""

from __future__ import annotations

import random
from typing import FrozenSet, List, Sequence, Set

from ..assignments.lattice import ExplicitDAG


class PlantedSignificance:
    """The ground truth of one synthetic experiment."""

    def __init__(self, dag: ExplicitDAG[int], msps: Sequence[int]):
        self.dag = dag
        self.msps = list(msps)
        significant: Set[int] = set()
        for msp in self.msps:
            significant.update(dag.ancestors(msp))
        self._significant: FrozenSet[int] = frozenset(significant)

    def is_significant(self, node: int) -> bool:
        return node in self._significant

    def support(self, node: int) -> float:
        """A deterministic support value consistent with the landscape.

        Significant nodes get a value above any sensible threshold,
        insignificant ones 0 — synthetic experiments vary the *structure*,
        not the noise (the paper simulates a single exact user).
        """
        return 1.0 if node in self._significant else 0.0

    @property
    def significant_nodes(self) -> FrozenSet[int]:
        return self._significant

    def valid_msps(self) -> List[int]:
        return [m for m in self.msps if self.dag.is_valid(m)]


def _undirected_distance(dag: ExplicitDAG[int], a: int, b: int, limit: int) -> int:
    """BFS distance in the undirected DAG, capped at ``limit`` (cap = inf)."""
    if a == b:
        return 0
    seen = {a}
    frontier = [a]
    distance = 0
    while frontier and distance < limit:
        distance += 1
        nxt: List[int] = []
        for node in frontier:
            for neighbour in list(dag.successors(node)) + list(dag.predecessors(node)):
                if neighbour == b:
                    return distance
                if neighbour not in seen:
                    seen.add(neighbour)
                    nxt.append(neighbour)
        frontier = nxt
    return limit + 1


def _incomparable(dag: ExplicitDAG[int], chosen: Sequence[int], candidate: int) -> bool:
    return all(
        not dag.leq(candidate, m) and not dag.leq(m, candidate) for m in chosen
    )


def place_msps(
    dag: ExplicitDAG[int],
    count: int,
    policy: str = "uniform",
    valid_only: bool = True,
    seed: int = 0,
    nearby_distance: int = 4,
    far_distance: int = 6,
    max_attempts_factor: int = 50,
) -> PlantedSignificance:
    """Choose ``count`` pairwise-incomparable MSPs under a placement policy.

    ``policy`` is one of ``"uniform"``, ``"nearby"`` (pairwise distance at
    most ``nearby_distance``) or ``"far"`` (at least ``far_distance``).  If
    the policy cannot be fully satisfied the constraint is relaxed for the
    remaining picks (the paper reports the policies made no difference, so
    best-effort placement is sufficient).
    """
    if policy not in ("uniform", "nearby", "far"):
        raise ValueError(f"unknown placement policy {policy!r}")
    rng = random.Random(seed)
    pool = dag.valid_nodes() if valid_only else dag.nodes()
    # prefer deep nodes: MSPs are maximal, so leaves-first ordering converges
    pool = sorted(pool, key=lambda n: (-dag.depth(n), n))
    chosen: List[int] = []
    attempts = 0
    max_attempts = max_attempts_factor * max(count, 1)
    relax = False
    while len(chosen) < count and attempts < max_attempts:
        attempts += 1
        candidate = rng.choice(pool)
        if candidate in chosen or not _incomparable(dag, chosen, candidate):
            continue
        if chosen and not relax:
            if policy == "nearby":
                anchor = chosen[-1]
                if (
                    _undirected_distance(dag, anchor, candidate, nearby_distance)
                    > nearby_distance
                ):
                    continue
            elif policy == "far":
                if any(
                    _undirected_distance(dag, m, candidate, far_distance)
                    <= far_distance - 1
                    for m in chosen
                ):
                    continue
        chosen.append(candidate)
        if attempts >= max_attempts // 2:
            relax = True
    if len(chosen) < count:
        # relax all constraints except incomparability
        for candidate in pool:
            if len(chosen) >= count:
                break
            if candidate not in chosen and _incomparable(dag, chosen, candidate):
                chosen.append(candidate)
    return PlantedSignificance(dag, chosen)
