"""Synthetic taxonomies: random layered term DAGs at paper scale.

The crowd experiments of Section 6 run over real taxonomies with thousands
of terms (the paper quotes 4.7k–10.5k nodes for the travel and health
ontologies).  This module generates *vocabulary-level* DAGs of that shape —
layered element/relation orders with controlled width, depth and extra
cross edges — for the bitset-equivalence test suite and the performance
benchmarks (``benchmarks/bench_report.py``).

This is distinct from :mod:`repro.synth.dag_gen`, which generates
*assignment-space* DAGs (the mining lattice); here we generate the term
orders those spaces are built over.
"""

from __future__ import annotations

import random
from typing import List

from ..vocabulary.orders import PartialOrder
from ..vocabulary.terms import Element
from ..vocabulary.vocabulary import Vocabulary
from .dag_gen import layer_sizes


def random_taxonomy(
    vocabulary: Vocabulary,
    node_count: int = 4700,
    depth: int = 6,
    seed: int = 0,
    extra_edge_probability: float = 0.15,
    prefix: str = "N",
) -> List[List[Element]]:
    """Grow a random layered element taxonomy inside ``vocabulary``.

    Returns the layers (roots first).  Every non-root gets one parent in
    the previous layer plus occasional extra cross parents, mirroring the
    multi-inheritance of real ontologies.  Node names are ``{prefix}{i}``.
    """
    if node_count < depth + 1:
        raise ValueError("node_count must cover at least one node per layer")
    rng = random.Random(seed)
    # find the widest bottom layer whose geometric ramp sums to node_count
    width = max(1, node_count // depth)
    while sum(layer_sizes(width, depth)) > node_count and width > 1:
        width -= 1
    sizes = layer_sizes(width, depth)
    # distribute any remainder over the deepest layer
    sizes[-1] += node_count - sum(sizes)

    layers: List[List[Element]] = []
    counter = 0
    for size in sizes:
        layer = []
        for _ in range(size):
            layer.append(vocabulary.add_element(f"{prefix}{counter}"))
            counter += 1
        layers.append(layer)
    for upper, lower in zip(layers, layers[1:]):
        for child in lower:
            parent = rng.choice(upper)
            vocabulary.element_order.add_edge(parent, child)
            while rng.random() < extra_edge_probability:
                extra = rng.choice(upper)
                if extra != parent:
                    vocabulary.element_order.add_edge(extra, child)
                    break
    return layers


def random_order(
    node_count: int = 200,
    depth: int = 5,
    seed: int = 0,
    extra_edge_probability: float = 0.2,
) -> PartialOrder:
    """A standalone random element order (for order-level equivalence tests)."""
    vocabulary = Vocabulary()
    random_taxonomy(
        vocabulary,
        node_count=node_count,
        depth=depth,
        seed=seed,
        extra_edge_probability=extra_edge_probability,
    )
    return vocabulary.element_order


def random_vocabulary(
    element_count: int = 4700,
    relation_count: int = 12,
    depth: int = 6,
    seed: int = 0,
    extra_edge_probability: float = 0.15,
) -> Vocabulary:
    """A paper-scale vocabulary: layered element DAG + a small relation chain.

    Relations form a shallow specialization forest (real vocabularies keep
    ``≤R`` tiny — ``nearBy ≤ inside`` is the paper's sole example).
    """
    rng = random.Random(seed ^ 0x5EED)
    vocabulary = Vocabulary()
    random_taxonomy(
        vocabulary,
        node_count=element_count,
        depth=depth,
        seed=seed,
        extra_edge_probability=extra_edge_probability,
    )
    relations = [vocabulary.add_relation(f"rel{i}") for i in range(relation_count)]
    for child in relations[1:]:
        if rng.random() < 0.5:
            parent = rng.choice(relations[: relations.index(child)])
            if parent is not child:
                try:
                    vocabulary.relation_order.add_edge(parent, child)
                except ValueError:
                    pass
    return vocabulary
