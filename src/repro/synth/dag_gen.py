"""Synthetic assignment-DAG generation (Section 6.4).

The paper's synthetic experiments run on a DAG "similar to the one generated
in our crowd experiments with the travel query" with the width varied
between 500 and 2000 and the depth between 4 and 7 (by pruning/replicating
parts).  We generate layered DAGs with controlled width and depth:

* ``depth + 1`` layers; layer 0 holds the roots;
* layer sizes ramp up toward the configured width (taxonomy products fan
  out multiplicatively, so deeper layers are wider, like the travel DAG);
* every node has at least one parent in the previous layer, plus extra
  random cross edges for DAG-ness;
* a configurable fraction of the nodes (biased toward the deep, specific
  layers) is marked *valid*, mirroring how SPARQL results sit at the bottom
  of the expanded space while their generalizations are invalid.
"""

from __future__ import annotations

import random
from typing import List

from ..assignments.lattice import ExplicitDAG


def layer_sizes(width: int, depth: int, root_count: int = 1) -> List[int]:
    """Layer sizes ramping geometrically from ``root_count`` to ``width``."""
    if depth < 1:
        raise ValueError("depth must be at least 1")
    if width < root_count:
        raise ValueError("width must be at least the root count")
    sizes = [root_count]
    for level in range(1, depth + 1):
        fraction = level / depth
        size = max(root_count, round(root_count * (width / root_count) ** fraction))
        sizes.append(min(size, width))
    sizes[-1] = width
    return sizes


def generate_dag(
    width: int = 500,
    depth: int = 7,
    seed: int = 0,
    extra_edge_probability: float = 0.15,
    valid_fraction: float = 0.6,
    root_count: int = 1,
) -> ExplicitDAG[int]:
    """A layered synthetic assignment DAG with integer nodes.

    ``width`` is the size of the deepest (widest) layer; ``depth`` the
    number of edge levels.  Validity is assigned to the ``valid_fraction``
    most specific nodes (deep layers first), like real query spaces where
    the SPARQL results are the specific assignments.
    """
    rng = random.Random(seed)
    sizes = layer_sizes(width, depth, root_count)
    dag: ExplicitDAG[int] = ExplicitDAG()
    layers: List[List[int]] = []
    next_id = 0
    for size in sizes:
        layer = list(range(next_id, next_id + size))
        next_id += size
        layers.append(layer)
        for node in layer:
            dag.add_node(node)
    for upper, lower in zip(layers, layers[1:]):
        for child in lower:
            parent = rng.choice(upper)
            dag.add_edge(parent, child)
            # sprinkle extra parents for DAG (not tree) structure
            while rng.random() < extra_edge_probability:
                extra = rng.choice(upper)
                if extra != parent:
                    dag.add_edge(extra, child)
                    break
    total = len(dag)
    valid_count = round(valid_fraction * total)
    valid: List[int] = []
    for layer in reversed(layers):
        for node in layer:
            if len(valid) >= valid_count:
                break
            valid.append(node)
        if len(valid) >= valid_count:
            break
    dag.set_valid(valid)
    return dag


def dag_statistics(dag: ExplicitDAG[int]) -> dict:
    """Shape statistics used by the experiment reports."""
    return {
        "nodes": len(dag),
        "valid": len(dag.valid_nodes()),
        "height": dag.height(),
        "width": dag.width(),
        "roots": len(dag.roots()),
    }
