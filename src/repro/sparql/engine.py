"""BGP evaluation over an :class:`~repro.ontology.graph.Ontology`.

The evaluator performs a backtracking join over the triple patterns with a
greedy selectivity heuristic: at each step it picks the not-yet-evaluated
pattern with the most bound positions under the current partial binding
(label patterns and fully-concrete patterns first).

Relation patterns match *semantically*: a pattern naming relation ``r``
matches asserted edges labeled with any ``r' ≥R r`` (see
:func:`repro.sparql.paths.matching_relations`), which is how Figure 1's
``nearBy ≤ inside`` makes ``$z nearBy $x`` see ``inside`` edges.  Element
positions match syntactically, mirroring the paper's use of a stock SPARQL
engine for the WHERE clause.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Union

from ..observability import get_tracer
from ..ontology.graph import HAS_LABEL, Ontology
from ..vocabulary.terms import Element, Relation
from .ast import (
    BGP,
    Blank,
    Concrete,
    NodePattern,
    PathMod,
    StringLiteral,
    TriplePattern,
    Var,
)
from .bindings import Binding, BindingValue
from .paths import backward_closure, forward_closure, matching_relations, path_pairs


class SparqlEngine:
    """Evaluates BGPs against a fixed ontology.

    The engine memoizes the deterministic orderings and closure results its
    inner loops otherwise rebuild per pattern match (sorted relation lists,
    label candidates, forward/backward path closures).  All caches key on a
    joint version stamp of the ontology and both vocabulary orders and are
    dropped at the next public entry point after any mutation.
    """

    def __init__(self, ontology: Ontology):
        self.ontology = ontology
        #: the tracer active during the current top-level evaluation, if
        #: any; re-fetched per public entry point and cleared on exit so a
        #: finished trace is never retained across evaluations
        self._obs = None
        self._cache_stamp = None
        self._sorted_relations: Optional[List[Relation]] = None
        self._labeled_elements: Optional[List[Element]] = None
        self._label_candidates: Dict[str, List[Element]] = {}
        self._sorted_labels: Dict[Element, List[str]] = {}
        self._fwd_cache: Dict = {}
        self._bwd_cache: Dict = {}
        self._pair_cache: Dict = {}

    # ------------------------------------------------------------ public API

    def solutions(self, bgp: BGP) -> Iterator[Binding]:
        """All solution bindings of ``bgp``, projected to named variables.

        Blank nodes are treated as existentials: they are bound during the
        search but dropped from the output, and duplicate projections are
        suppressed.
        """
        self._obs = get_tracer()
        self._check_caches()
        try:
            named = {v.name for v in bgp.variables()}
            seen: Set[Binding] = set()
            for env in self._search(list(bgp.patterns), {}):
                projected = Binding({k: v for k, v in env.items() if k in named})
                if projected not in seen:
                    seen.add(projected)
                    if self._obs is not None:
                        self._obs.count("sparql.solutions")
                    yield projected
        finally:
            self._obs = None

    def ask(self, bgp: BGP) -> bool:
        """Does ``bgp`` have at least one solution?"""
        self._obs = get_tracer()
        self._check_caches()
        try:
            for _ in self._search(list(bgp.patterns), {}):
                return True
            return False
        finally:
            self._obs = None

    # -------------------------------------------------------------- caching

    def _check_caches(self) -> None:
        """Drop memoized orderings/closures when the ontology moved."""
        vocabulary = self.ontology.vocabulary
        stamp = (
            self.ontology.version,
            vocabulary.element_order.version,
            vocabulary.relation_order.version,
        )
        if stamp != self._cache_stamp:
            self._cache_stamp = stamp
            self._sorted_relations = None
            self._labeled_elements = None
            self._label_candidates.clear()
            self._sorted_labels.clear()
            self._fwd_cache.clear()
            self._bwd_cache.clear()
            self._pair_cache.clear()

    def _cached(self, cache: Dict, key, compute):
        entry = cache.get(key)
        if entry is None:
            entry = compute()
            cache[key] = entry
            if self._obs is not None:
                self._obs.count("sparql.closure_cache.misses")
        elif self._obs is not None:
            self._obs.count("sparql.closure_cache.hits")
        return entry

    # --------------------------------------------------------------- search

    def _search(
        self, remaining: List[TriplePattern], env: Dict[str, BindingValue]
    ) -> Iterator[Dict[str, BindingValue]]:
        if not remaining:
            yield dict(env)
            return
        index = self._pick_pattern(remaining, env)
        pattern = remaining[index]
        rest = remaining[:index] + remaining[index + 1:]
        for extension in self._match_pattern(pattern, env):
            merged = dict(env)
            merged.update(extension)
            yield from self._search(rest, merged)

    def _pick_pattern(
        self, patterns: List[TriplePattern], env: Dict[str, BindingValue]
    ) -> int:
        def bound_score(pattern: TriplePattern) -> int:
            score = 0
            for part in (pattern.subject, pattern.relation.term, pattern.obj):
                if isinstance(part, (Concrete, StringLiteral)):
                    score += 2
                elif isinstance(part, Var) and part.name in env:
                    score += 2
                elif isinstance(part, Blank):
                    score += 0
                else:
                    score -= 1
            return score

        best = 0
        best_score = bound_score(patterns[0])
        for i, pattern in enumerate(patterns[1:], start=1):
            score = bound_score(pattern)
            if score > best_score:
                best, best_score = i, score
        return best

    # ------------------------------------------------------ pattern matching

    def _match_pattern(
        self, pattern: TriplePattern, env: Dict[str, BindingValue]
    ) -> Iterator[Dict[str, BindingValue]]:
        if self._obs is not None:
            self._obs.count("sparql.patterns.matched")
        rel_term = pattern.relation.term
        if isinstance(rel_term, Concrete) and rel_term.name == HAS_LABEL:
            yield from self._match_label(pattern, env)
            return
        yield from self._match_edge(pattern, env)

    def _match_label(
        self, pattern: TriplePattern, env: Dict[str, BindingValue]
    ) -> Iterator[Dict[str, BindingValue]]:
        subject = self._resolve_node(pattern.subject, env)
        obj = self._resolve_node(pattern.obj, env)
        if isinstance(obj, str):
            if isinstance(subject, Element):
                if self.ontology.has_label(subject, obj):
                    yield {}
                return
            candidates = self._cached(
                self._label_candidates,
                obj,
                lambda: sorted(
                    self.ontology.elements_with_label(obj), key=lambda e: e.name
                ),
            )
            for element in candidates:
                yield self._bind_node(pattern.subject, element)
            return
        # object is an unbound var/blank: enumerate labels of the subject(s)
        if isinstance(subject, Element):
            for label in self._labels_of(subject):
                yield self._bind_node(pattern.obj, label)
            return
        if self._labeled_elements is None:
            self._labeled_elements = sorted(
                {
                    e
                    for e in self.ontology.vocabulary.elements
                    if self.ontology.labels(e)
                },
                key=lambda e: e.name,
            )
        for element in self._labeled_elements:
            for label in self._labels_of(element):
                extension = self._bind_node(pattern.subject, element)
                extension.update(self._bind_node(pattern.obj, label))
                yield extension

    def _labels_of(self, element: Element) -> List[str]:
        return self._cached(
            self._sorted_labels,
            element,
            lambda: sorted(self.ontology.labels(element)),
        )

    def _match_edge(
        self, pattern: TriplePattern, env: Dict[str, BindingValue]
    ) -> Iterator[Dict[str, BindingValue]]:
        subject = self._resolve_node(pattern.subject, env)
        obj = self._resolve_node(pattern.obj, env)
        rel_term = pattern.relation.term
        mod = pattern.relation.mod

        if isinstance(rel_term, Concrete):
            relation = Relation(rel_term.name)
            yield from self._match_known_relation(pattern, relation, mod, subject, obj)
            return

        # variable/blank relation: iterate the asserted relations
        if isinstance(rel_term, Var) and rel_term.name in env:
            bound = env[rel_term.name]
            if not isinstance(bound, Relation):
                return
            yield from self._match_known_relation(pattern, bound, PathMod.NONE, subject, obj)
            return
        if self._sorted_relations is None:
            self._sorted_relations = sorted(
                self.ontology.vocabulary.relations, key=lambda r: r.name
            )
        for relation in self._sorted_relations:
            for extension in self._match_known_relation(
                pattern, relation, PathMod.NONE, subject, obj, exact_relation=True
            ):
                full = self._bind_node_rel(rel_term, relation)
                full.update(extension)
                yield full

    def _match_known_relation(
        self,
        pattern: TriplePattern,
        relation: Relation,
        mod: PathMod,
        subject: Optional[Union[Element, str]],
        obj: Optional[Union[Element, str]],
        exact_relation: bool = False,
    ) -> Iterator[Dict[str, BindingValue]]:
        if isinstance(subject, str) or isinstance(obj, str):
            return  # strings only participate in hasLabel patterns
        if mod is PathMod.NONE and exact_relation:
            relations = frozenset({relation})
        else:
            relations = matching_relations(self.ontology, relation)

        if isinstance(subject, Element) and isinstance(obj, Element):
            if self._pair_matches(subject, obj, relation, mod, relations):
                yield {}
            return
        if isinstance(subject, Element):
            for target in self._forward_targets(subject, relation, mod, exact_relation):
                yield self._bind_node(pattern.obj, target)
            return
        if isinstance(obj, Element):
            for source in self._backward_sources(obj, relation, mod, exact_relation):
                yield self._bind_node(pattern.subject, source)
            return
        # both ends free
        for start, end in self._all_pairs(relation, mod):
            extension = self._bind_node(pattern.subject, start)
            obj_ext = self._bind_node(pattern.obj, end)
            # consistency when subject and object share a variable
            conflict = any(
                key in extension and extension[key] != value
                for key, value in obj_ext.items()
            )
            if conflict:
                continue
            extension.update(obj_ext)
            yield extension

    def _forward_targets(
        self, subject: Element, relation: Relation, mod: PathMod, exact: bool
    ) -> List[Element]:
        """Sorted ``obj`` candidates for a bound subject (cached)."""

        def compute() -> List[Element]:
            if mod is not PathMod.NONE:
                targets = forward_closure(self.ontology, subject, relation, mod)
            else:
                relations = (
                    frozenset({relation})
                    if exact
                    else matching_relations(self.ontology, relation)
                )
                targets = frozenset(
                    o for r in relations for o in self.ontology.objects(subject, r)
                )
            return sorted(targets, key=lambda e: e.name)

        return self._cached(self._fwd_cache, (subject, relation, mod, exact), compute)

    def _backward_sources(
        self, obj: Element, relation: Relation, mod: PathMod, exact: bool
    ) -> List[Element]:
        """Sorted ``subject`` candidates for a bound object (cached)."""

        def compute() -> List[Element]:
            if mod is not PathMod.NONE:
                sources = backward_closure(self.ontology, obj, relation, mod)
            else:
                relations = (
                    frozenset({relation})
                    if exact
                    else matching_relations(self.ontology, relation)
                )
                sources = frozenset(
                    s for r in relations for s in self.ontology.subjects(r, obj)
                )
            return sorted(sources, key=lambda e: e.name)

        return self._cached(self._bwd_cache, (obj, relation, mod, exact), compute)

    def _all_pairs(self, relation: Relation, mod: PathMod) -> List:
        """Sorted (subject, obj) pairs for a both-ends-free pattern (cached)."""

        def compute() -> List:
            return sorted(
                set(path_pairs(self.ontology, relation, mod)),
                key=lambda pair: (pair[0].name, pair[1].name),
            )

        return self._cached(self._pair_cache, (relation, mod), compute)

    def _pair_matches(
        self,
        subject: Element,
        obj: Element,
        relation: Relation,
        mod: PathMod,
        relations,
    ) -> bool:
        if mod is PathMod.NONE:
            return any(obj in self.ontology.objects(subject, r) for r in relations)
        return obj in forward_closure(self.ontology, subject, relation, mod)

    # -------------------------------------------------------------- helpers

    def _resolve_node(
        self, node: NodePattern, env: Dict[str, BindingValue]
    ) -> Optional[Union[Element, str]]:
        """Concrete value of ``node`` under ``env``, or None if unbound."""
        if isinstance(node, Concrete):
            return Element(node.name)
        if isinstance(node, StringLiteral):
            return node.value
        if isinstance(node, Var) and node.name in env:
            value = env[node.name]
            if isinstance(value, (Element, str)):
                return value
            return None
        return None

    def _bind_node(self, node: NodePattern, value: BindingValue) -> Dict[str, BindingValue]:
        if isinstance(node, Var):
            return {node.name: value}
        if isinstance(node, Blank):
            return {node.as_var().name: value}
        return {}

    def _bind_node_rel(self, node, relation: Relation) -> Dict[str, BindingValue]:
        if isinstance(node, Var):
            return {node.name: relation}
        if isinstance(node, Blank):
            return {node.as_var().name: relation}
        return {}
