"""Property-path evaluation (``subClassOf*`` and friends).

A quantified relation pattern ``r*`` matches a pair ``(a, b)`` when ``b`` is
reachable from ``a`` via zero or more asserted edges labeled with ``r`` *or
any specialization of r* in ``≤R`` (matching the semantic-implication
reading of relation patterns used throughout the engine).  ``r+`` requires
at least one edge, ``r?`` at most one.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, Set, Tuple

from ..observability import count as _obs_count
from ..ontology.graph import Ontology
from ..vocabulary.terms import Element, Relation
from .ast import PathMod


def matching_relations(ontology: Ontology, relation: Relation) -> FrozenSet[Relation]:
    """Asserted relations that satisfy a pattern naming ``relation``.

    These are the ``≤R``-specializations of ``relation`` that exist in the
    vocabulary; e.g. a ``nearBy`` pattern also scans ``inside`` edges when
    ``nearBy ≤R inside``.  Memoized per ontology, keyed on the relation
    order's version stamp (BGP search asks for the same relation's closure
    once per pattern match otherwise).
    """
    order = ontology.vocabulary.relation_order
    cache = getattr(ontology, "_matching_relations_cache", None)
    if cache is None or cache[0] != order.version:
        cache = (order.version, {})
        ontology._matching_relations_cache = cache
    cached = cache[1].get(relation)
    if cached is not None:
        _obs_count("sparql.rel_match_cache.hits")
        return cached
    _obs_count("sparql.rel_match_cache.misses")
    if relation not in order:
        result = frozenset({relation})
    else:
        result = frozenset(
            r for r in order.descendants(relation) if isinstance(r, Relation)
        )
    cache[1][relation] = result
    return result


def _step(ontology: Ontology, node: Element, relations: FrozenSet[Relation]) -> Set[Element]:
    """One forward step along any of ``relations``."""
    out: Set[Element] = set()
    for rel in relations:
        out.update(ontology.objects(node, rel))
    return out


def _step_back(ontology: Ontology, node: Element, relations: FrozenSet[Relation]) -> Set[Element]:
    """One backward step along any of ``relations``."""
    out: Set[Element] = set()
    for rel in relations:
        out.update(ontology.subjects(rel, node))
    return out


def forward_closure(
    ontology: Ontology, start: Element, relation: Relation, mod: PathMod
) -> FrozenSet[Element]:
    """All ``b`` such that ``(start, b)`` matches ``relation{mod}``."""
    relations = matching_relations(ontology, relation)
    if mod is PathMod.NONE:
        return frozenset(_step(ontology, start, relations))
    if mod is PathMod.OPT:
        return frozenset(_step(ontology, start, relations) | {start})
    if mod is PathMod.PLUS:
        # >= 1 forward step: BFS seeded from the direct successors
        seen = set(_step(ontology, start, relations))
        frontier = list(seen)
        while frontier:
            node = frontier.pop()
            for nxt in _step(ontology, node, relations):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return frozenset(seen)
    seen = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for nxt in _step(ontology, node, relations):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return frozenset(seen)


def backward_closure(
    ontology: Ontology, end: Element, relation: Relation, mod: PathMod
) -> FrozenSet[Element]:
    """All ``a`` such that ``(a, end)`` matches ``relation{mod}``."""
    relations = matching_relations(ontology, relation)
    if mod is PathMod.NONE:
        return frozenset(_step_back(ontology, end, relations))
    if mod is PathMod.OPT:
        return frozenset(_step_back(ontology, end, relations) | {end})
    if mod is PathMod.PLUS:
        # >= 1 backward step: BFS seeded from the direct predecessors
        seen = set(_step_back(ontology, end, relations))
        frontier = list(seen)
        while frontier:
            node = frontier.pop()
            for nxt in _step_back(ontology, node, relations):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return frozenset(seen)
    seen = {end}
    frontier = [end]
    while frontier:
        node = frontier.pop()
        for nxt in _step_back(ontology, node, relations):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return frozenset(seen)


def path_pairs(
    ontology: Ontology, relation: Relation, mod: PathMod
) -> Iterator[Tuple[Element, Element]]:
    """Enumerate all pairs matching ``relation{mod}`` (both ends free).

    For quantified paths the candidate universe is every element incident to
    a matching edge (plus, for ``*``/``?``, the zero-step identity pairs on
    those elements).
    """
    relations = matching_relations(ontology, relation)
    nodes: Set[Element] = set()
    for rel in relations:
        for fact in ontology.match(relation=rel):
            nodes.add(fact.subject)
            nodes.add(fact.obj)
    if mod is PathMod.NONE:
        for rel in relations:
            for fact in ontology.match(relation=rel):
                yield (fact.subject, fact.obj)
        return
    for start in nodes:
        for end in forward_closure(ontology, start, relation, mod):
            yield (start, end)
