"""Parser for basic graph patterns (the WHERE-clause fragment of SPARQL).

Grammar (``.`` terminates a pattern; the final dot is optional)::

    bgp     := triple (DOT triple)* DOT?
    triple  := node relpat node
    node    := VAR | NAME | STRING | '[]'
    relpat  := (VAR | NAME) pathmod?
    pathmod := '*' | '+' | '?'

This module parses a *bare* BGP; the OASSIS-QL parser wraps it with the
SELECT/WHERE/SATISFYING structure and multiplicity annotations.
"""

from __future__ import annotations

from typing import List

from .ast import (
    BGP,
    Blank,
    Concrete,
    NodePattern,
    PathMod,
    RelationPattern,
    StringLiteral,
    TriplePattern,
    Var,
)
from .lexer import ParseError, TokenStream, tokenize

#: NAME tokens that terminate a BGP when they appear in subject position
#: (used when a BGP is embedded inside a larger query).
_DEFAULT_STOP_WORDS = frozenset()


def parse_bgp(text: str) -> BGP:
    """Parse ``text`` as a standalone basic graph pattern."""
    stream = TokenStream(tokenize(text))
    bgp = parse_bgp_tokens(stream)
    stream.expect("EOF")
    return bgp


def parse_bgp_tokens(
    stream: TokenStream,
    stop_keywords: frozenset = _DEFAULT_STOP_WORDS,
) -> BGP:
    """Parse triple patterns from ``stream`` until EOF, ``}`` or a stop word.

    ``stop_keywords`` are compared case-insensitively against NAME tokens in
    subject position, letting callers embed BGPs before keywords such as
    ``SATISFYING``.
    """
    patterns: List[TriplePattern] = []
    while True:
        token = stream.peek()
        if token.kind in ("EOF", "RBRACE"):
            break
        if token.kind == "NAME" and token.text.upper() in stop_keywords:
            break
        patterns.append(_parse_triple(stream))
        if not stream.eat("DOT"):
            # a triple not followed by '.' must be the last one
            token = stream.peek()
            if token.kind in ("EOF", "RBRACE") or (
                token.kind == "NAME" and token.text.upper() in stop_keywords
            ):
                break
            raise ParseError("expected '.' between triple patterns", token)
    if not patterns:
        raise ParseError("empty graph pattern", stream.peek())
    return BGP(patterns)


def _parse_triple(stream: TokenStream) -> TriplePattern:
    subject = _parse_node(stream, position="subject")
    relation = _parse_relation(stream)
    obj = _parse_node(stream, position="object")
    return TriplePattern(subject, relation, obj)


def _parse_node(stream: TokenStream, position: str) -> NodePattern:
    token = stream.peek()
    if token.kind == "VAR":
        stream.next()
        return Var(token.text)
    if token.kind == "NAME":
        stream.next()
        return Concrete(token.text)
    if token.kind == "LBRACKET_PAIR":
        stream.next()
        return Blank()
    if token.kind == "STRING":
        if position != "object":
            raise ParseError("string literals are only allowed in object position", token)
        stream.next()
        return StringLiteral(token.text)
    raise ParseError(f"expected a term in {position} position", token)


def _parse_relation(stream: TokenStream) -> RelationPattern:
    token = stream.peek()
    if token.kind == "VAR":
        stream.next()
        return RelationPattern(Var(token.text))
    if token.kind == "LBRACKET_PAIR":
        stream.next()
        return RelationPattern(Blank())
    if token.kind != "NAME":
        raise ParseError("expected a relation name or variable", token)
    stream.next()
    mod = PathMod.NONE
    nxt = stream.peek()
    if nxt.kind == "STAR":
        stream.next()
        mod = PathMod.STAR
    elif nxt.kind == "PLUS":
        stream.next()
        mod = PathMod.PLUS
    elif nxt.kind == "QMARK":
        stream.next()
        mod = PathMod.OPT
    return RelationPattern(Concrete(token.text), mod)
