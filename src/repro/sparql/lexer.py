"""Tokenizer shared by the SPARQL-subset parser and the OASSIS-QL parser.

Token kinds:

* ``VAR`` — ``$name`` or ``?name``;
* ``NAME`` — a bare identifier (letters, digits, ``_``, ``-``) or a
  bracketed multi-word name ``<Central Park>``;
* ``STRING`` — ``"..."``;
* ``NUMBER`` — integer or decimal literal;
* ``LBRACKET_PAIR`` — the blank node ``[]``;
* punctuation: ``DOT`` ``STAR`` ``PLUS`` ``QMARK`` ``EQ`` ``GE`` ``GT``
  ``LBRACE`` ``RBRACE``;
* ``EOF`` — end of input.

Keywords are *not* distinguished here; parsers compare NAME token text
case-insensitively.
"""

from __future__ import annotations

import re
from typing import List, NamedTuple


class Token(NamedTuple):
    kind: str
    text: str
    line: int
    column: int

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind}({self.text!r})@{self.line}:{self.column}"


class LexError(ValueError):
    """Raised on input that cannot be tokenized."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} at line {line}, column {column}")
        self.line = line
        self.column = column


_TOKEN_SPEC = [
    ("WS", r"[ \t\r]+"),
    ("NEWLINE", r"\n"),
    ("COMMENT", r"#[^\n]*"),
    ("VAR", r"[$?][A-Za-z_][A-Za-z0-9_]*"),
    ("STRING", r'"[^"\n]*"'),
    ("NUMBER", r"\d+\.\d+|\.\d+|\d+"),
    ("BRACKETED", r"<[^<>\n]+>"),
    ("LBRACKET_PAIR", r"\[\s*\]"),
    ("NAME", r"[A-Za-z_][A-Za-z0-9_'-]*"),
    ("GE", r">="),
    ("GT", r">"),
    ("EQ", r"="),
    ("DOT", r"\."),
    ("STAR", r"\*"),
    ("PLUS", r"\+"),
    ("QMARK", r"\?"),
    ("LBRACE", r"\{"),
    ("RBRACE", r"\}"),
    ("COMMA", r","),
]

_MASTER_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text`` fully; raises :class:`LexError` on bad input."""
    tokens: List[Token] = []
    line = 1
    line_start = 0
    pos = 0
    while pos < len(text):
        match = _MASTER_RE.match(text, pos)
        if match is None:
            raise LexError(f"unexpected character {text[pos]!r}", line, pos - line_start + 1)
        kind = match.lastgroup
        value = match.group()
        column = pos - line_start + 1
        pos = match.end()
        if kind == "NEWLINE":
            line += 1
            line_start = pos
            continue
        if kind in ("WS", "COMMENT"):
            continue
        if kind == "VAR":
            tokens.append(Token("VAR", value[1:], line, column))
        elif kind == "STRING":
            tokens.append(Token("STRING", value[1:-1], line, column))
        elif kind == "BRACKETED":
            tokens.append(Token("NAME", value[1:-1].strip(), line, column))
        else:
            tokens.append(Token(kind, value, line, column))
    tokens.append(Token("EOF", "", line, pos - line_start + 1))
    return tokens


class TokenStream:
    """Cursor over a token list with the usual peek/expect helpers."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._index = 0

    def peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def next(self) -> Token:
        token = self.peek()
        if token.kind != "EOF":
            self._index += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.peek()
        if token.kind != kind:
            raise ParseError(f"expected {kind}, found {token.kind} {token.text!r}", token)
        return self.next()

    def at_keyword(self, *words: str) -> bool:
        """Is the current token a NAME equal (case-insensitively) to any word?"""
        token = self.peek()
        return token.kind == "NAME" and token.text.upper() in {w.upper() for w in words}

    def expect_keyword(self, word: str) -> Token:
        token = self.peek()
        if not self.at_keyword(word):
            raise ParseError(f"expected keyword {word}, found {token.text!r}", token)
        return self.next()

    def eat(self, kind: str) -> bool:
        """Consume the current token if it has ``kind``; report success."""
        if self.peek().kind == kind:
            self.next()
            return True
        return False


class ParseError(ValueError):
    """Raised by parsers on unexpected tokens."""

    def __init__(self, message: str, token: Token):
        super().__init__(f"{message} (line {token.line}, column {token.column})")
        self.token = token
