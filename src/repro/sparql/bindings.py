"""Solution bindings produced by BGP evaluation.

A :class:`Binding` is an immutable mapping from variable names to values
(elements, relations, or label strings).  Evaluation works with plain dicts
internally and freezes them on output.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Tuple, Union

from ..vocabulary.terms import Element, Relation

BindingValue = Union[Element, Relation, str]


class Binding(Mapping[str, BindingValue]):
    """An immutable variable assignment (one SPARQL solution row)."""

    __slots__ = ("_items",)

    def __init__(self, mapping: Mapping[str, BindingValue]):
        self._items: Tuple[Tuple[str, BindingValue], ...] = tuple(
            sorted(mapping.items())
        )

    def __getitem__(self, key: str) -> BindingValue:
        for name, value in self._items:
            if name == key:
                return value
        raise KeyError(key)

    def __iter__(self) -> Iterator[str]:
        return (name for name, _ in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __hash__(self) -> int:
        return hash(self._items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Binding):
            return self._items == other._items
        if isinstance(other, Mapping):
            return dict(self._items) == dict(other)
        return NotImplemented

    def as_dict(self) -> Dict[str, BindingValue]:
        return dict(self._items)

    def project(self, names) -> "Binding":
        """Restrict to the given variable names (missing names are dropped)."""
        wanted = set(names)
        return Binding({n: v for n, v in self._items if n in wanted})

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}={v}" for n, v in self._items)
        return f"Binding({inner})"
