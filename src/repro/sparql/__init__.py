"""SPARQL-subset layer: BGP AST, parser and evaluation engine."""

from .ast import (
    BGP,
    Blank,
    Concrete,
    PathMod,
    RelationPattern,
    StringLiteral,
    TriplePattern,
    Var,
)
from .bindings import Binding
from .engine import SparqlEngine
from .lexer import LexError, ParseError, Token, TokenStream, tokenize
from .parser import parse_bgp, parse_bgp_tokens

__all__ = [
    "BGP",
    "Binding",
    "Blank",
    "Concrete",
    "LexError",
    "ParseError",
    "PathMod",
    "RelationPattern",
    "SparqlEngine",
    "StringLiteral",
    "Token",
    "TokenStream",
    "TriplePattern",
    "Var",
    "parse_bgp",
    "parse_bgp_tokens",
    "tokenize",
]
