"""AST node types for the SPARQL subset used by OASSIS-QL WHERE clauses.

A *basic graph pattern* (BGP) is a list of triple patterns.  Each position
of a triple pattern holds one of:

* :class:`Var` — a named query variable (``$x`` / ``?x``);
* :class:`Concrete` — a fixed vocabulary term;
* :class:`Blank` — ``[]``, an anonymous existential;
* :class:`StringLiteral` — a quoted string (only meaningful as the object
  of a ``hasLabel`` pattern).

Relations may additionally carry a :class:`PathMod` quantifier, giving the
property paths the paper uses (``subClassOf*``).
"""

from __future__ import annotations

import enum
import itertools
from typing import Iterator, List, Tuple, Union


class PathMod(enum.Enum):
    """Property-path quantifier attached to a relation pattern."""

    NONE = ""       #: exactly one edge
    STAR = "*"      #: zero or more edges
    PLUS = "+"      #: one or more edges
    OPT = "?"       #: zero or one edge

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class Var:
    """A named query variable."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name:
            raise ValueError("variable name must be non-empty")
        self.name = name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("var", self.name))

    def __repr__(self) -> str:
        return f"Var({self.name!r})"

    def __str__(self) -> str:
        return f"${self.name}"


_blank_counter = itertools.count()


class Blank:
    """``[]`` — an anonymous variable, unique per occurrence."""

    __slots__ = ("uid",)

    def __init__(self) -> None:
        self.uid = next(_blank_counter)

    def as_var(self) -> Var:
        """The hidden variable this blank stands for."""
        return Var(f"__blank_{self.uid}")

    def __repr__(self) -> str:
        return f"Blank(#{self.uid})"

    def __str__(self) -> str:
        return "[]"


class Concrete:
    """A fixed term name (resolution to Element/Relation happens at eval)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Concrete) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("concrete", self.name))

    def __repr__(self) -> str:
        return f"Concrete({self.name!r})"

    def __str__(self) -> str:
        return f"<{self.name}>" if " " in self.name else self.name


class StringLiteral:
    """A quoted string, e.g. the label in ``$x hasLabel "child-friendly"``."""

    __slots__ = ("value",)

    def __init__(self, value: str):
        self.value = value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StringLiteral) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("string", self.value))

    def __repr__(self) -> str:
        return f"StringLiteral({self.value!r})"

    def __str__(self) -> str:
        return f'"{self.value}"'


NodePattern = Union[Var, Concrete, Blank, StringLiteral]


class RelationPattern:
    """A relation position: a term or variable plus a path quantifier."""

    __slots__ = ("term", "mod")

    def __init__(self, term: Union[Var, Concrete, Blank], mod: PathMod = PathMod.NONE):
        if isinstance(term, (Var, Blank)) and mod is not PathMod.NONE:
            raise ValueError("path quantifiers require a concrete relation")
        self.term = term
        self.mod = mod

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RelationPattern)
            and self.term == other.term
            and self.mod == other.mod
        )

    def __hash__(self) -> int:
        return hash((self.term, self.mod))

    def __repr__(self) -> str:
        return f"RelationPattern({self.term!r}, {self.mod!r})"

    def __str__(self) -> str:
        return f"{self.term}{self.mod}"


class TriplePattern:
    """One ``subject relation object`` pattern."""

    __slots__ = ("subject", "relation", "obj")

    def __init__(self, subject: NodePattern, relation: RelationPattern, obj: NodePattern):
        self.subject = subject
        self.relation = relation
        self.obj = obj

    def variables(self) -> Tuple[Var, ...]:
        """Named variables appearing in this pattern, in position order."""
        found: List[Var] = []
        for part in (self.subject, self.relation.term, self.obj):
            if isinstance(part, Var):
                found.append(part)
        return tuple(found)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TriplePattern)
            and self.subject == other.subject
            and self.relation == other.relation
            and self.obj == other.obj
        )

    def __hash__(self) -> int:
        return hash((self.subject, self.relation, self.obj))

    def __repr__(self) -> str:
        return f"TriplePattern({self.subject!r}, {self.relation!r}, {self.obj!r})"

    def __str__(self) -> str:
        return f"{self.subject} {self.relation} {self.obj}"


class BGP:
    """A basic graph pattern: a conjunction of triple patterns."""

    __slots__ = ("patterns",)

    def __init__(self, patterns: List[TriplePattern]):
        self.patterns = list(patterns)

    def variables(self) -> Tuple[Var, ...]:
        """Named variables in first-occurrence order (no duplicates)."""
        seen = {}
        for pattern in self.patterns:
            for var in pattern.variables():
                seen.setdefault(var.name, var)
        return tuple(seen.values())

    def __len__(self) -> int:
        return len(self.patterns)

    def __iter__(self) -> Iterator[TriplePattern]:
        return iter(self.patterns)

    def __repr__(self) -> str:
        return f"BGP({self.patterns!r})"

    def __str__(self) -> str:
        return " .\n".join(str(p) for p in self.patterns)
