"""Project-invariant configuration consumed by the lint rules.

The linter in :mod:`repro.analysis.lint` is generic machinery (walk
files, parse, dispatch rules, honor suppressions); everything that makes
it *this repo's* linter lives here: which modules own which locks, which
classes carry version stamps, what the deprecation shims are called, and
which modules must stay deterministic.  Each constant is documented in
``docs/ANALYSIS.md`` next to the rule that reads it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Tuple

# --------------------------------------------------------------- lock roles

#: module suffix that identifies the SessionManager implementation
MANAGER_MODULE = "repro/service/manager.py"
#: module suffix that identifies the QuerySession implementation
SESSION_MODULE = "repro/service/session.py"

#: attribute name of the manager lock (``self._lock`` in the manager)
MANAGER_LOCK_ATTR = "_lock"
#: attribute name of the session lock (``session.lock``)
SESSION_LOCK_ATTR = "lock"

#: public QuerySession methods that take the session lock; calling one of
#: these while holding the manager lock violates the locking contract of
#: ``docs/SERVICE.md``
SESSION_LOCKED_METHODS: FrozenSet[str] = frozenset(
    {
        "resume_from_cache",
        "ensure_member",
        "complete",
        "cancel",
        "next_fresh",
        "submit",
        "prune",
        "expire",
        "skip",
        "reassign",
        "detach",
        "has_work",
        "msps",
        "valid_msps",
        "questions_asked",
        "result",
        "snapshot",
    }
)

#: receiver names the lock-nesting rule treats as "a session object"
SESSION_RECEIVER_NAMES: FrozenSet[str] = frozenset({"session", "sess", "s"})

#: receiver names the lock-nesting rule treats as "the manager" when seen
#: inside a session-lock critical section
MANAGER_RECEIVER_NAMES: FrozenSet[str] = frozenset({"manager", "mgr"})

#: SessionManager methods that take the manager lock
MANAGER_LOCKED_METHODS: FrozenSet[str] = frozenset(
    {
        "create_session",
        "cancel_session",
        "attach_member",
        "detach_member",
        "next_batch",
        "submit",
        "submit_prune",
        "reap_expired",
        "in_flight",
        "members",
        "sessions",
    }
)


# ---------------------------------------------------------- version stamps

@dataclass(frozen=True)
class VersionStampedClass:
    """One class whose mutators must touch its version stamp.

    ``guarded_attrs`` are the ``self.<attr>`` structures that back the
    compiled/memoized state; any method mutating one of them must also
    assign ``self.<touch>`` or call one of the ``touch_calls`` in the
    same method body.
    """

    module_suffix: str
    class_name: str
    guarded_attrs: FrozenSet[str]
    touch_attrs: FrozenSet[str] = field(default_factory=frozenset)
    touch_calls: FrozenSet[str] = field(default_factory=frozenset)


VERSION_STAMPED_CLASSES: Tuple[VersionStampedClass, ...] = (
    VersionStampedClass(
        module_suffix="repro/vocabulary/orders.py",
        class_name="PartialOrder",
        guarded_attrs=frozenset(
            {"_children", "_parents", "_edge_count", "_ids", "_terms_by_id"}
        ),
        touch_attrs=frozenset({"version"}),
        touch_calls=frozenset({"_invalidate"}),
    ),
    VersionStampedClass(
        module_suffix="repro/ontology/graph.py",
        class_name="Ontology",
        guarded_attrs=frozenset(
            {"_facts", "_spo", "_pos", "_osp", "_labels", "_label_index"}
        ),
        touch_attrs=frozenset({"version"}),
        touch_calls=frozenset(),
    ),
)


@dataclass(frozen=True)
class StampGuardedClass:
    """A class whose public entry points must revalidate their caches.

    The SPARQL engine pattern: memo dictionaries are keyed on a joint
    version stamp, and every public method must call the guard
    (``_check_caches``) before touching them.
    """

    module_suffix: str
    class_name: str
    guard_call: str
    #: public methods exempt from the guard (pure accessors)
    exempt: FrozenSet[str] = field(default_factory=frozenset)


STAMP_GUARDED_CLASSES: Tuple[StampGuardedClass, ...] = (
    StampGuardedClass(
        module_suffix="repro/sparql/engine.py",
        class_name="SparqlEngine",
        guard_call="_check_caches",
    ),
)


# ------------------------------------------------------- deprecation shims

#: modules allowed to reference the deprecation machinery (they define it)
SHIM_HOME_MODULES: FrozenSet[str] = frozenset(
    {"repro/engine/config.py", "repro/engine/engine.py", "repro/api/__init__.py"}
)

#: names of the shim helpers nobody else may import or call
SHIM_HELPER_NAMES: FrozenSet[str] = frozenset({"warn_deprecated", "_bind_legacy"})

#: deprecated constructor keywords of ``OassisEngine`` — internal callers
#: must pass ``config=EngineConfig(...)`` instead
LEGACY_ENGINE_KWARGS: FrozenSet[str] = frozenset(
    {"templates", "max_values_per_var", "max_more_facts"}
)

#: engine methods with a deprecated positional tail: method name -> how
#: many positional arguments the modern keyword-only signature accepts
LEGACY_POSITIONAL_LIMITS = {
    "execute": 2,
    "execute_single_user": 2,
    "replay": 3,
    "screen_members": 2,
    "queue_manager": 1,
}


# -------------------------------------------------------- error swallowing

#: module prefixes where a broad ``except Exception`` must either log a
#: counter or re-raise — the concurrent serving/fault layer, where a
#: silently swallowed error turns into a wedged session with no trace
SILENT_EXCEPT_MODULE_PREFIXES: Tuple[str, ...] = (
    "repro/service/",
    "repro/faults/",
    "repro/gateway/",
)

#: call names the silent-except rule accepts as "the error was logged"
COUNTER_CALL_NAMES: FrozenSet[str] = frozenset({"count", "_obs_count"})


# ------------------------------------------------------------ fork safety

#: module prefixes imported into the shard worker processes — the spawn
#: closure of ``repro.service.shard.worker`` (the serving layers plus
#: everything a worker rebuilds: datasets, engine, crowd, vocabulary,
#: ontology, observability).  Module-level locks / RNGs / thread-locals
#: there are a process-safety trap: a fork child inherits a lock in
#: whatever state the parent held it, a spawn child silently gets a
#: *fresh* one (so "shared" state diverges), and any object graph that
#: carries one stops pickling across the process boundary.
SHARD_IMPORTED_MODULE_PREFIXES: Tuple[str, ...] = (
    "repro/service/",
    "repro/crowd/",
    "repro/engine/",
    "repro/mining/",
    "repro/datasets/",
    "repro/vocabulary/",
    "repro/ontology/",
    "repro/observability/",
)

#: constructors whose call at *module import time* creates that state
#: (the ``threading``/``multiprocessing`` lock family, RNG instances,
#: thread-locals, and this repo's own named-lock factories)
FORK_UNSAFE_FACTORIES: FrozenSet[str] = frozenset(
    {
        "Barrier",
        "BoundedSemaphore",
        "Condition",
        "Event",
        "Lock",
        "RLock",
        "Random",
        "Semaphore",
        "SystemRandom",
        "local",
        "named_lock",
        "named_rlock",
    }
)

#: methods that mark a class as owning its process-boundary story: a
#: class body may hold fork-unsafe state if it also defines one of these
#: (it decides explicitly what crosses the boundary)
FORK_STATE_EXEMPTING_METHODS: FrozenSet[str] = frozenset(
    {"__getstate__", "__reduce__", "__reduce_ex__"}
)


# ------------------------------------------------------------ determinism

#: module suffixes that must stay deterministic for replay: no global
#: (unseeded) random calls, no wall-clock reads
DETERMINISTIC_MODULE_PREFIXES: Tuple[str, ...] = (
    "repro/mining/",
    "repro/crowd/simulation.py",
)

#: functions of the ``random`` module that use the shared global RNG
GLOBAL_RNG_FUNCTIONS: FrozenSet[str] = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gauss",
        "getrandbits",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
    }
)

#: wall-clock reads banned in deterministic modules (module name -> attrs)
WALL_CLOCK_CALLS = {
    "time": frozenset({"time", "time_ns", "localtime", "ctime", "gmtime"}),
    "datetime": frozenset({"now", "utcnow", "today"}),
    "date": frozenset({"today"}),
}

# ------------------------------------------------------------ async serving

#: module prefixes whose ``async def`` bodies must never block: the
#: gateway multiplexes every connected member over one event loop, so a
#: single blocking call stalls all of them at once
ASYNC_MODULE_PREFIXES: Tuple[str, ...] = ("repro/gateway/",)

#: calls that block the event loop (module name -> attrs), banned inside
#: ``async def`` in the modules above; each has an asyncio-native
#: replacement (asyncio.sleep, open_connection, create_subprocess_exec,
#: run_in_executor)
BLOCKING_CALLS_IN_ASYNC = {
    "time": frozenset({"sleep"}),
    "socket": frozenset({"create_connection", "getaddrinfo", "gethostbyname"}),
    "subprocess": frozenset(
        {"run", "call", "check_call", "check_output", "Popen"}
    ),
    "os": frozenset({"system", "wait", "waitpid"}),
    "requests": frozenset({"get", "post", "put", "delete", "head", "request"}),
}

#: bare builtins that block inside ``async def`` (filesystem and tty I/O)
BLOCKING_BUILTINS_IN_ASYNC: FrozenSet[str] = frozenset({"open", "input"})


# ---------------------------------------------------------------- hygiene

#: builtins worth protecting from shadowing (the usual pylint W0622 set,
#: trimmed to names that actually cause grief in this codebase)
PROTECTED_BUILTINS: FrozenSet[str] = frozenset(
    {
        "all",
        "any",
        "bool",
        "bytes",
        "callable",
        "dict",
        "dir",
        "enumerate",
        "eval",
        "filter",
        "float",
        "format",
        "frozenset",
        "getattr",
        "hasattr",
        "hash",
        "id",
        "input",
        "int",
        "isinstance",
        "iter",
        "len",
        "list",
        "map",
        "max",
        "min",
        "next",
        "object",
        "open",
        "print",
        "property",
        "range",
        "repr",
        "set",
        "setattr",
        "slice",
        "sorted",
        "str",
        "sum",
        "super",
        "tuple",
        "type",
        "vars",
        "zip",
    }
)

#: factory callables whose call as a default argument is a shared-state bug
MUTABLE_DEFAULT_FACTORIES: FrozenSet[str] = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "Counter", "deque"}
)


# ------------------------------------------------------- deep (whole-program)

#: method names the call-graph builder must NEVER resolve by uniqueness
#: alone: they collide with dict/list/set/str/file/thread/queue protocol
#: methods, so ``x.get(...)`` on an untyped receiver stays unresolved
#: rather than aliasing some project method that happens to share the name
COMMON_METHOD_NAMES: FrozenSet[str] = frozenset(
    {name for t in (dict, list, set, tuple, str, bytes, frozenset) for name in dir(t)}
    | {
        "acquire",
        "cancel",
        "close",
        "fileno",
        "flush",
        "get",
        "get_nowait",
        "is_alive",
        "join",
        "notify",
        "notify_all",
        "open",
        "put",
        "put_nowait",
        "read",
        "readline",
        "release",
        "run",
        "send",
        "set",
        "start",
        "stop",
        "submit",
        "wait",
        "write",
    }
)

#: callables whose invocation marks a function with the ``spawn`` effect
SPAWN_FACTORIES: FrozenSet[str] = frozenset(
    {
        "Thread",
        "Process",
        "Pool",
        "ThreadPool",
        "ThreadPoolExecutor",
        "ProcessPoolExecutor",
        "Timer",
        "start_new_thread",
        "fork",
        "spawn",
    }
)

#: module prefixes whose *public* functions are determinism entry points
#: for the transitive pass: the replay/identity oracles re-execute these,
#: so no wall-clock read or unseeded-random call may be reachable.  This
#: is a superset of DETERMINISTIC_MODULE_PREFIXES — the lattice /
#: assignment core is included even though the local (direct-call) rule
#: does not police it
DEEP_DETERMINISM_ENTRY_PREFIXES: Tuple[str, ...] = (
    "repro/mining/",
    "repro/assignments/",
    "repro/crowd/simulation.py",
)

#: lock-role pairs that must never be held together, in either order
#: (mirrors the ``forbid_together`` contract the dynamic checker enforces
#: on the service suite: the manager lock and a session lock held at once
#: is the deadlock recipe documented in docs/SERVICE.md)
FORBIDDEN_LOCK_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("service.manager", "service.session"),
)

#: transport modules whose raw payload dicts are wire-taint sources
WIRE_TAINT_MODULES: Tuple[str, ...] = (
    "repro/gateway/http.py",
    "repro/gateway/mcp.py",
)

#: parameter names that carry raw (undecoded) wire payloads in the
#: transport modules above — MCP hands ``message``/``params``/
#: ``arguments`` dicts straight from JSON-RPC
WIRE_TAINT_PARAM_NAMES: FrozenSet[str] = frozenset(
    {"message", "params", "arguments", "payload"}
)

#: methods whose return value counts as *decoded*: the schema layer's
#: versioned constructors (``XxxRequest.from_wire``)
WIRE_DECODE_METHODS: FrozenSet[str] = frozenset({"from_wire"})

#: classes whose methods are wire-taint sinks: raw payloads must not
#: reach them without passing a schema decode or a scalar validation
WIRE_SINK_CLASSES: FrozenSet[str] = frozenset(
    {"GatewayApp", "SessionManager", "QueueManager"}
)
