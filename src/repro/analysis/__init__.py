"""repro.analysis — static analysis and runtime invariant checking.

Two halves (see ``docs/ANALYSIS.md``):

* **the project linter** (:mod:`repro.analysis.lint`,
  :mod:`repro.analysis.rules`) — an AST-based pass encoding this repo's
  own invariants: the service locking contract, version-stamp
  discipline of the compiled caches, the observability name registry,
  shim-free internal call sites, deterministic core modules, plus the
  usual hygiene rules.  Run it with ``python -m repro.analysis src/``,
  ``repro lint`` or ``make lint``; it exits non-zero on errors and
  honors ``# repro-lint: disable=RULE`` suppressions.
* **the lock-order checker** (:mod:`repro.analysis.lockcheck`) —
  instrumented lock wrappers that record the per-thread acquisition
  graph and raise on cycles (or on forbidden co-holding), switched into
  ``repro.service`` and ``CrowdCache`` under tests.

On top of the per-file linter sits the **whole-program pass**
(``repro lint --deep``): :mod:`repro.analysis.callgraph` builds the
project call graph, :mod:`repro.analysis.effects` infers transitive
effect sets over it, and :mod:`repro.analysis.deep` runs the four deep
rules (async-blocking-transitive, determinism-transitive,
static-lock-order, wire-taint), each finding carrying a witness call
chain.

The package ``__init__`` stays import-light: the core engine imports
:mod:`~repro.analysis.lockcheck` at module load (for the lock
factories), so the heavier lint machinery is loaded lazily on first
attribute access.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List

from .findings import Finding, Severity
from .lockcheck import (
    LockOrderChecker,
    LockOrderError,
    TrackedLock,
    TrackedRLock,
    checking,
    current_checker,
    install,
    named_lock,
    named_rlock,
    uninstall,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .callgraph import CallGraph
    from .deep import DeepResult
    from .effects import EffectAnalysis
    from .lint import LintResult

__all__ = [
    "CallGraph",
    "DeepResult",
    "EffectAnalysis",
    "Finding",
    "LintResult",
    "LockOrderChecker",
    "LockOrderError",
    "Severity",
    "TrackedLock",
    "TrackedRLock",
    "build_callgraph",
    "checking",
    "current_checker",
    "infer_effects",
    "install",
    "main",
    "named_lock",
    "named_rlock",
    "run_deep",
    "run_lint",
    "uninstall",
]

_LAZY_LINT_EXPORTS = frozenset({"LintResult", "main", "run_lint"})
_LAZY_DEEP_EXPORTS = {
    "CallGraph": "callgraph",
    "build_callgraph": "callgraph",
    "EffectAnalysis": "effects",
    "infer_effects": "effects",
    "DeepResult": "deep",
    "run_deep": "deep",
}


def __getattr__(name: str) -> Any:
    """Lazily expose the lint/deep drivers without importing them eagerly."""
    if name in _LAZY_LINT_EXPORTS:
        from . import lint

        return getattr(lint, name)
    if name in _LAZY_DEEP_EXPORTS:
        import importlib

        module = importlib.import_module(
            f".{_LAZY_DEEP_EXPORTS[name]}", __name__
        )
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> List[str]:
    return sorted(__all__)
