"""Documentation cross-link checker (``make doclint``).

The handbook pages reference each other constantly — ``docs/TUNING.md``
points at ``PERFORMANCE.md`` for rationale, README points at every
``docs/*.md`` — and a renamed or deleted page silently strands every
reference to it.  This checker walks the repository's markdown files and
fails on **dangling references**: any markdown link target or inline-code
mention that *looks like* a local ``.md`` path but does not resolve to a
file.

Two reference forms are recognised:

* markdown links — ``[text](ARCHITECTURE.md)`` /
  ``[text](docs/TUNING.md#anchor)`` — resolved relative to the referring
  file (URLs with a scheme are ignored);
* inline code — `` `docs/PERFORMANCE.md` `` or, inside ``docs/``, the
  bare sibling form `` `TUNING.md` `` — resolved relative to the
  referring file first, then the repository root.

Runnable as ``python -m repro.analysis.doclint [root]``; exit status is 0
when every reference resolves, 1 otherwise — ``make doclint`` and the CI
lint job gate on it.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, NamedTuple, Sequence

#: markdown files checked, relative to the repository root
DOC_GLOBS: Sequence[str] = ("*.md", "docs/*.md")

_MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_INLINE_CODE = re.compile(r"`([^`\n]+)`")
#: something that plausibly names a local markdown file
_MD_PATH = re.compile(r"^[A-Za-z0-9_./\-]+\.md$")
_FENCE = re.compile(r"^(```|~~~)")


class DanglingReference(NamedTuple):
    """One unresolvable ``.md`` reference."""

    file: Path
    line: int
    target: str

    def render(self) -> str:
        return f"{self.file}:{self.line}: dangling doc reference {self.target!r}"


def _reference_targets(line: str) -> List[str]:
    """The ``.md`` reference candidates on one line of markdown."""
    targets: List[str] = []
    for match in _MARKDOWN_LINK.finditer(line):
        raw = match.group(1).split("#", 1)[0]
        if "://" in raw or not raw:
            continue
        if raw.endswith(".md"):
            targets.append(raw)
    for match in _INLINE_CODE.finditer(line):
        raw = match.group(1).split("#", 1)[0]
        if _MD_PATH.match(raw):
            targets.append(raw)
    return targets


def _resolves(target: str, referrer: Path, root: Path) -> bool:
    if target.startswith("/"):
        return False  # absolute paths are never portable references
    return (referrer.parent / target).is_file() or (root / target).is_file()


def check_file(path: Path, root: Path) -> List[DanglingReference]:
    """Every dangling ``.md`` reference in one markdown file."""
    dangling: List[DanglingReference] = []
    in_fence = False
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue  # code blocks quote paths illustratively
        for target in _reference_targets(line):
            if not _resolves(target, path, root):
                dangling.append(DanglingReference(path.relative_to(root), number, target))
    return dangling


def check_tree(root: Path) -> List[DanglingReference]:
    """Check every documentation file under ``root`` (sorted, stable)."""
    dangling: List[DanglingReference] = []
    for pattern in DOC_GLOBS:
        for path in sorted(root.glob(pattern)):
            dangling.extend(check_file(path, root))
    return dangling


def main(argv: Sequence[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if len(args) > 1:
        print("usage: python -m repro.analysis.doclint [root]", file=sys.stderr)
        return 2
    root = Path(args[0]) if args else Path(".")
    if not root.is_dir():
        print(f"no such directory: {root}", file=sys.stderr)
        return 2
    findings = check_tree(root.resolve())
    for finding in findings:
        print(finding.render(), file=sys.stderr)
    checked = sum(len(list(root.glob(pattern))) for pattern in DOC_GLOBS)
    if findings:
        print(f"doclint: {len(findings)} dangling reference(s) "
              f"in {checked} file(s)", file=sys.stderr)
        return 1
    print(f"doclint: {checked} markdown file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
