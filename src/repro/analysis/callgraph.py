"""A project-wide call graph over ``src/repro``.

The per-module linter (:mod:`repro.analysis.rules`) can only see one
function at a time; the deep rules (:mod:`repro.analysis.deep`) need to
know *what calls what* across the whole package: a blocking call two
frames below an async handler, a wall-clock read leaking into the mining
core through a helper.  This module builds that graph statically:

* **modules** — every ``.py`` file under a source root, named by its
  dotted path (``src/repro/service/manager.py`` ->
  ``repro.service.manager``);
* **functions** — module-level functions, methods (of arbitrarily
  nested classes) and nested functions, each with a dotted qualname
  (``repro.service.manager.SessionManager.submit``); module-level
  statements are attributed to a synthetic ``<module>`` function so
  import-time calls (including decorator application) have a caller;
* **edges** — one :class:`CallEdge` per resolved call site, tagged with
  how it was resolved (``direct``, ``self``, ``typed``, ``import``,
  ``constructor``, ``by-name``); calls the resolver cannot pin down are
  recorded as explicit :class:`UnresolvedCall` entries with a reason
  (``external``, ``dynamic-receiver``, ``ambiguous-method``) instead of
  being silently dropped.

Resolution is deliberately *best effort* but leans on everything the
source declares:

* import tables per module, following ``from x import y`` re-export
  chains through package ``__init__`` files (with a cycle guard);
* self-dispatch: ``self.m()`` resolves within the enclosing class, then
  through project-resolvable base classes;
* a lightweight local type environment: parameter annotations,
  ``x = ClassName(...)`` constructor assignments, ``self.attr``
  annotations/assignments seen in ``__init__``, and the return
  annotations of already-resolved callees (``Optional[X]`` unwraps to
  ``X``) — so ``manager = self._require_manager()`` followed by
  ``manager.next_batch(...)`` resolves precisely;
* unique-method fallback: ``x.m()`` with an unknown receiver resolves
  only when exactly one project class defines ``m`` *and* ``m`` is not
  a common container/stdlib method name (``get``, ``items``, ``close``,
  ... — the blocklist lives in :mod:`repro.analysis.project`), so dict
  lookups never alias a project method.

The graph is plain data plus BFS helpers (:meth:`CallGraph.reachable`,
:meth:`CallGraph.shortest_chain`) — effect inference and the deep rules
live in :mod:`repro.analysis.effects` / :mod:`repro.analysis.deep`.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from . import project

#: the synthetic function name holding a module's import-time statements
MODULE_BODY = "<module>"


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method known to the graph."""

    qualname: str
    module: str
    name: str
    class_name: Optional[str]
    path: str
    lineno: int
    end_lineno: int
    is_async: bool

    @property
    def is_public(self) -> bool:
        """Public = no leading underscore anywhere past the module path."""
        tail = self.qualname[len(self.module) + 1 :]
        return not any(part.startswith("_") for part in tail.split("."))


@dataclass(frozen=True)
class CallEdge:
    """One resolved call site: ``caller`` invokes ``callee``."""

    caller: str
    callee: str
    lineno: int
    kind: str


@dataclass(frozen=True)
class UnresolvedCall:
    """A call site the resolver could not pin to a project function."""

    caller: str
    target: str
    lineno: int
    reason: str


@dataclass(frozen=True)
class ChainStep:
    """One hop of a witness chain: ``qualname`` called at ``lineno``."""

    qualname: str
    lineno: int


@dataclass
class _ClassInfo:
    qualname: str
    module: str
    name: str
    methods: Dict[str, str] = field(default_factory=dict)
    bases: Tuple[str, ...] = ()
    #: self.attr -> project class qualname (from __init__/annotations)
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class _ModuleInfo:
    name: str
    path: Path
    display: str
    tree: ast.Module
    source: str
    #: local name -> dotted target ("module:<dotted>" or "symbol:<dotted>")
    imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: top-level function name -> qualname
    functions: Dict[str, str] = field(default_factory=dict)
    #: top-level class name -> class qualname
    classes: Dict[str, str] = field(default_factory=dict)


def _module_name(path: Path, root: Path, package: str) -> str:
    relative = path.relative_to(root).with_suffix("")
    parts = list(relative.parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([package] + parts) if parts else package


def _strip_optional(annotation: ast.expr) -> ast.expr:
    """``Optional[X]`` / ``X | None`` / ``"X"`` -> the X expression."""
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return annotation
    if isinstance(annotation, ast.Subscript):
        base = annotation.value
        base_name = base.attr if isinstance(base, ast.Attribute) else (
            base.id if isinstance(base, ast.Name) else None
        )
        if base_name == "Optional":
            return _strip_optional(annotation.slice)
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        left = annotation.left
        right = annotation.right
        if isinstance(right, ast.Constant) and right.value is None:
            return _strip_optional(left)
        if isinstance(left, ast.Constant) and left.value is None:
            return _strip_optional(right)
    return annotation


def _dotted(expr: ast.expr) -> Optional[str]:
    """``a.b.c`` -> ``"a.b.c"`` (None for anything non-dotted)."""
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class CallGraph:
    """The built graph: functions, classes, edges, unresolved calls."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, _ClassInfo] = {}
        self.edges: List[CallEdge] = []
        self.unresolved: List[UnresolvedCall] = []
        self.modules: Dict[str, _ModuleInfo] = {}
        #: qualname -> AST node (kept for effect extraction)
        self.function_asts: Dict[str, ast.AST] = {}
        self._out: Dict[str, List[CallEdge]] = {}
        self._in: Dict[str, List[CallEdge]] = {}

    # ------------------------------------------------------------- accessors

    def add_edge(self, edge: CallEdge) -> None:
        self.edges.append(edge)
        self._out.setdefault(edge.caller, []).append(edge)
        self._in.setdefault(edge.callee, []).append(edge)

    def callees_of(self, qualname: str) -> List[CallEdge]:
        return self._out.get(qualname, [])

    def callers_of(self, qualname: str) -> List[CallEdge]:
        return self._in.get(qualname, [])

    def find(self, needle: str) -> List[FunctionInfo]:
        """Functions whose qualname equals or ends with ``needle``."""
        if needle in self.functions:
            return [self.functions[needle]]
        suffix = needle if needle.startswith(".") else "." + needle
        return sorted(
            (f for q, f in self.functions.items() if q.endswith(suffix)),
            key=lambda f: f.qualname,
        )

    # ------------------------------------------------------------ traversals

    def reachable(self, start: str) -> Set[str]:
        """Every function reachable from ``start`` (inclusive)."""
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for edge in self.callees_of(node):
                if edge.callee not in seen:
                    seen.add(edge.callee)
                    frontier.append(edge.callee)
        return seen

    def shortest_chain(
        self,
        start: str,
        accept: Callable[[str], bool],
        follow: Optional[Callable[[str], bool]] = None,
    ) -> Optional[List[ChainStep]]:
        """BFS for the shortest ``start -> ... -> f`` with ``accept(f)``.

        ``follow`` (when given) prunes the search to nodes it accepts;
        the returned chain starts at ``start`` (lineno 0) and each later
        step carries the call-site line in its *caller*.
        """
        if accept(start):
            return [ChainStep(start, 0)]
        parents: Dict[str, Tuple[str, int]] = {}
        seen = {start}
        frontier = [start]
        while frontier:
            next_frontier: List[str] = []
            for node in frontier:
                for edge in self.callees_of(node):
                    callee = edge.callee
                    if callee in seen:
                        continue
                    if follow is not None and not follow(callee):
                        continue
                    seen.add(callee)
                    parents[callee] = (node, edge.lineno)
                    if accept(callee):
                        chain = [ChainStep(callee, edge.lineno)]
                        current = node
                        while current != start:
                            parent, lineno = parents[current]
                            chain.append(ChainStep(current, lineno))
                            current = parent
                        chain.append(ChainStep(start, 0))
                        chain.reverse()
                        return chain
                    next_frontier.append(callee)
            frontier = next_frontier
        return None


class _SymbolResolver:
    """Resolves ``module``-scoped names through import/re-export chains."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph

    def resolve_symbol(
        self, module: str, name: str, _seen: Optional[Set[Tuple[str, str]]] = None
    ) -> Optional[Tuple[str, str]]:
        """``(kind, qualname)`` for ``name`` in ``module``'s namespace.

        kind is ``"function"``, ``"class"`` or ``"module"``; follows
        ``from x import y`` chains (re-exports) with a cycle guard.
        """
        if _seen is None:
            _seen = set()
        if (module, name) in _seen:
            return None
        _seen.add((module, name))
        info = self.graph.modules.get(module)
        if info is None:
            return None
        if name in info.functions:
            return ("function", info.functions[name])
        if name in info.classes:
            return ("class", info.classes[name])
        imported = info.imports.get(name)
        if imported is None:
            # ``from pkg import submodule`` with no explicit import also
            # works at runtime once the submodule is loaded; model it
            candidate = f"{module}.{name}"
            if candidate in self.graph.modules:
                return ("module", candidate)
            return None
        kind, target = imported
        if kind == "module":
            if target in self.graph.modules:
                return ("module", target)
            return None
        # symbol import: target is "source_module.symbol"
        source, _, symbol = target.rpartition(".")
        if source in self.graph.modules:
            resolved = self.resolve_symbol(source, symbol, _seen)
            if resolved is not None:
                return resolved
            # the source module exists but does not define the symbol
            # statically (e.g. a lazy __getattr__ re-export)
            return None
        if target in self.graph.modules:
            return ("module", target)
        return None

    def resolve_dotted(
        self, module: str, dotted: str
    ) -> Optional[Tuple[str, str]]:
        """Resolve ``a.b.c`` seen in ``module`` to a project symbol."""
        head, _, rest = dotted.partition(".")
        resolved = self.resolve_symbol(module, head)
        if resolved is None:
            return None
        kind, target = resolved
        while rest:
            part, _, rest = rest.partition(".")
            if kind == "module":
                resolved = self.resolve_symbol(target, part)
                if resolved is None:
                    return None
                kind, target = resolved
            elif kind == "class":
                info = self.graph.classes.get(target)
                if info is None or part not in info.methods:
                    return None
                kind, target = "function", info.methods[part]
            else:
                return None
        return (kind, target)


class _FunctionWalker(ast.NodeVisitor):
    """Extracts call edges from one function body."""

    def __init__(
        self,
        builder: "_GraphBuilder",
        module: _ModuleInfo,
        caller: str,
        class_info: Optional[_ClassInfo],
        env: Dict[str, str],
    ) -> None:
        self.builder = builder
        self.module = module
        self.caller = caller
        self.class_info = class_info
        self.env = env  # local name -> project class qualname

    # nested defs are separate graph nodes; do not descend into them here
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        for decorator in node.decorator_list:
            self._record_call_expr(decorator, node.lineno)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        for decorator in node.decorator_list:
            self._record_call_expr(decorator, node.lineno)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        for decorator in node.decorator_list:
            self._record_call_expr(decorator, node.lineno)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._track_assignment(node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            klass = self.builder.annotation_class(self.module, node.annotation)
            if klass is not None:
                self.env[node.target.id] = klass
        if node.value is not None:
            self._track_assignment([node.target], node.value)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        self.builder.resolve_call(
            self.module, self.caller, self.class_info, self.env, node
        )
        self.generic_visit(node)

    # ------------------------------------------------------------ internals

    def _record_call_expr(self, expr: ast.expr, lineno: int) -> None:
        """Decorator application is a call from the enclosing scope."""
        call = expr if isinstance(expr, ast.Call) else ast.Call(
            func=expr, args=[], keywords=[]
        )
        ast.copy_location(call, expr)
        if not hasattr(call, "lineno"):
            call.lineno = lineno  # type: ignore[attr-defined]
        self.builder.resolve_call(
            self.module, self.caller, self.class_info, self.env, call
        )

    def _track_assignment(
        self, targets: Sequence[ast.expr], value: ast.expr
    ) -> None:
        klass = self.builder.value_class(
            self.module, self.class_info, self.env, value
        )
        for target in targets:
            if isinstance(target, ast.Name):
                if klass is not None:
                    self.env[target.id] = klass
                else:
                    self.env.pop(target.id, None)


class _GraphBuilder:
    """Drives the two passes: index every def, then resolve every call."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.resolver = _SymbolResolver(graph)
        #: method name -> class qualnames defining it
        self.method_index: Dict[str, List[str]] = {}

    # ------------------------------------------------------------ pass one

    def index_module(self, info: _ModuleInfo) -> None:
        self.graph.modules[info.name] = info
        self._collect_imports(info)
        self._index_scope(info, info.tree.body, info.name, None)
        # the synthetic module-body function
        body = FunctionInfo(
            qualname=f"{info.name}.{MODULE_BODY}",
            module=info.name,
            name=MODULE_BODY,
            class_name=None,
            path=info.display,
            lineno=1,
            end_lineno=len(info.source.splitlines()) or 1,
            is_async=False,
        )
        self.graph.functions[body.qualname] = body
        self.graph.function_asts[body.qualname] = info.tree

    def _collect_imports(self, info: _ModuleInfo) -> None:
        package = (
            info.name
            if info.path.name == "__init__.py"
            else info.name.rpartition(".")[0]
        )
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    info.imports[bound] = ("module", target)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                if node.level:
                    base = package
                    for _ in range(node.level - 1):
                        base = base.rpartition(".")[0]
                    source = f"{base}.{node.module}" if node.module else base
                else:
                    source = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    info.imports[bound] = ("symbol", f"{source}.{alias.name}")

    def _index_scope(
        self,
        info: _ModuleInfo,
        body: Sequence[ast.stmt],
        prefix: str,
        class_info: Optional[_ClassInfo],
    ) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{node.name}"
                function = FunctionInfo(
                    qualname=qualname,
                    module=info.name,
                    name=node.name,
                    class_name=class_info.qualname if class_info else None,
                    path=info.display,
                    lineno=node.lineno,
                    end_lineno=getattr(node, "end_lineno", node.lineno),
                    is_async=isinstance(node, ast.AsyncFunctionDef),
                )
                # first def wins (overloads/conditional redefinition)
                self.graph.functions.setdefault(qualname, function)
                self.graph.function_asts.setdefault(qualname, node)
                if class_info is not None:
                    class_info.methods.setdefault(node.name, qualname)
                    self.method_index.setdefault(node.name, []).append(
                        class_info.qualname
                    )
                elif prefix == info.name:
                    info.functions.setdefault(node.name, qualname)
                self._index_scope(info, node.body, qualname, None)
            elif isinstance(node, ast.ClassDef):
                qualname = f"{prefix}.{node.name}"
                bases = tuple(
                    dotted
                    for dotted in (_dotted(base) for base in node.bases)
                    if dotted is not None
                )
                klass = _ClassInfo(
                    qualname=qualname,
                    module=info.name,
                    name=node.name,
                    bases=bases,
                )
                self.graph.classes.setdefault(qualname, klass)
                if prefix == info.name:
                    info.classes.setdefault(node.name, qualname)
                self._index_scope(info, node.body, qualname, klass)
            elif isinstance(node, (ast.If, ast.Try, ast.With)):
                # defs guarded by TYPE_CHECKING / try-import still exist
                self._index_scope(
                    info, self._nested_bodies(node), prefix, class_info
                )

    @staticmethod
    def _nested_bodies(node: ast.stmt) -> List[ast.stmt]:
        collected: List[ast.stmt] = []
        for name in ("body", "orelse", "finalbody", "handlers"):
            block = getattr(node, name, None)
            if not block:
                continue
            for item in block:
                if isinstance(item, ast.ExceptHandler):
                    collected.extend(item.body)
                else:
                    collected.append(item)
        return collected

    # ------------------------------------------------------------ pass two

    def finish_index(self) -> None:
        """After every module is indexed: attr types + base resolution."""
        for klass in self.graph.classes.values():
            init = klass.methods.get("__init__")
            node = self.graph.function_asts.get(init) if init else None
            if node is not None:
                self._collect_attr_types(klass, node)

    def _collect_attr_types(self, klass: _ClassInfo, init: ast.AST) -> None:
        module = self.graph.modules[klass.module]
        # annotated __init__ parameters type the names they are assigned
        # from (`self.cache = cache` with `cache: Optional[CrowdCache]`)
        env = self._seed_env(module, klass, init)
        for node in ast.walk(init):
            target: Optional[ast.expr] = None
            annotation: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, annotation, value = node.target, node.annotation, node.value
            else:
                continue
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            resolved: Optional[str] = None
            if annotation is not None:
                resolved = self.annotation_class(module, annotation)
            if resolved is None and value is not None:
                resolved = self.value_class(module, klass, env, value)
            if resolved is not None:
                klass.attr_types.setdefault(target.attr, resolved)

    def annotation_class(
        self, module: _ModuleInfo, annotation: ast.expr
    ) -> Optional[str]:
        stripped = _strip_optional(annotation)
        dotted = _dotted(stripped)
        if dotted is None:
            return None
        resolved = self.resolver.resolve_dotted(module.name, dotted)
        if resolved is not None and resolved[0] == "class":
            return resolved[1]
        return None

    def value_class(
        self,
        module: _ModuleInfo,
        class_info: Optional[_ClassInfo],
        env: Dict[str, str],
        value: ast.expr,
    ) -> Optional[str]:
        """The project class a value expression evaluates to, if known."""
        if isinstance(value, ast.Name):
            return env.get(value.id)
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
            and class_info is not None
        ):
            return self._attr_type(class_info, value.attr)
        if isinstance(value, ast.Call):
            dotted = _dotted(value.func)
            if dotted is not None:
                resolved = self.resolver.resolve_dotted(module.name, dotted)
                if resolved is not None and resolved[0] == "class":
                    return resolved[1]
            # a resolved callee's return annotation, Optional-stripped
            callee = self._callee_of(module, class_info, env, value)
            if callee is not None:
                node = self.graph.function_asts.get(callee)
                returns = getattr(node, "returns", None)
                if returns is not None:
                    callee_module = self.graph.modules.get(
                        self.graph.functions[callee].module
                    )
                    if callee_module is not None:
                        return self.annotation_class(callee_module, returns)
        return None

    def _attr_type(self, klass: _ClassInfo, attr: str) -> Optional[str]:
        seen: Set[str] = set()
        frontier = [klass.qualname]
        while frontier:
            current = self.graph.classes.get(frontier.pop())
            if current is None or current.qualname in seen:
                continue
            seen.add(current.qualname)
            if attr in current.attr_types:
                return current.attr_types[attr]
            frontier.extend(self._base_qualnames(current))
        return None

    def _base_qualnames(self, klass: _ClassInfo) -> List[str]:
        names: List[str] = []
        for base in klass.bases:
            resolved = self.resolver.resolve_dotted(klass.module, base)
            if resolved is not None and resolved[0] == "class":
                names.append(resolved[1])
        return names

    def _method_on(self, class_qualname: str, method: str) -> Optional[str]:
        """Resolve ``method`` on a class, walking project bases."""
        seen: Set[str] = set()
        frontier = [class_qualname]
        while frontier:
            current = self.graph.classes.get(frontier.pop(0))
            if current is None or current.qualname in seen:
                continue
            seen.add(current.qualname)
            if method in current.methods:
                return current.methods[method]
            frontier.extend(self._base_qualnames(current))
        return None

    def _callee_of(
        self,
        module: _ModuleInfo,
        class_info: Optional[_ClassInfo],
        env: Dict[str, str],
        call: ast.Call,
    ) -> Optional[str]:
        """The qualname ``call`` resolves to, or None (no edge recorded)."""
        func = call.func
        if isinstance(func, ast.Name):
            resolved = self.resolver.resolve_symbol(module.name, func.id)
            if resolved is None:
                return None
            kind, target = resolved
            if kind == "function":
                return target
            if kind == "class":
                return self._method_on(target, "__init__")
            return None
        if isinstance(func, ast.Attribute):
            receiver = func.value
            if isinstance(receiver, ast.Name) and receiver.id == "self":
                if class_info is not None:
                    return self._method_on(class_info.qualname, func.attr)
                return None
            receiver_class: Optional[str] = None
            if isinstance(receiver, ast.Name):
                receiver_class = env.get(receiver.id)
            elif (
                isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id == "self"
                and class_info is not None
            ):
                receiver_class = self._attr_type(class_info, receiver.attr)
            if receiver_class is not None:
                return self._method_on(receiver_class, func.attr)
            dotted = _dotted(func)
            if dotted is not None:
                resolved = self.resolver.resolve_dotted(module.name, dotted)
                if resolved is not None:
                    kind, target = resolved
                    if kind == "function":
                        return target
                    if kind == "class":
                        return self._method_on(target, "__init__")
            # unique-method fallback
            owners = self.method_index.get(func.attr, [])
            if (
                len(owners) == 1
                and func.attr not in project.COMMON_METHOD_NAMES
            ):
                return self.graph.classes[owners[0]].methods[func.attr]
        return None

    def resolve_call(
        self,
        module: _ModuleInfo,
        caller: str,
        class_info: Optional[_ClassInfo],
        env: Dict[str, str],
        call: ast.Call,
    ) -> None:
        func = call.func
        lineno = getattr(call, "lineno", 1)
        if isinstance(func, ast.Name):
            resolved = self.resolver.resolve_symbol(module.name, func.id)
            if resolved is not None:
                kind, target = resolved
                if kind == "function":
                    self.graph.add_edge(
                        CallEdge(caller, target, lineno, "direct")
                    )
                    return
                if kind == "class":
                    init = self._method_on(target, "__init__")
                    if init is not None:
                        self.graph.add_edge(
                            CallEdge(caller, init, lineno, "constructor")
                        )
                    return
                return  # calling a module object: not a thing
            if func.id in module.imports or hasattr(builtins, func.id):
                return  # external/builtin call: out of scope for edges
            # a local variable / parameter holding a callable: dynamic
            self.graph.unresolved.append(
                UnresolvedCall(caller, func.id, lineno, "dynamic-receiver")
            )
            return
        if isinstance(func, ast.Attribute):
            receiver = func.value
            if isinstance(receiver, ast.Name) and receiver.id == "self":
                if class_info is not None:
                    target = self._method_on(class_info.qualname, func.attr)
                    if target is not None:
                        self.graph.add_edge(
                            CallEdge(caller, target, lineno, "self")
                        )
                        return
                self.graph.unresolved.append(
                    UnresolvedCall(
                        caller, f"self.{func.attr}", lineno, "dynamic-receiver"
                    )
                )
                return
            receiver_class: Optional[str] = None
            if isinstance(receiver, ast.Name):
                receiver_class = env.get(receiver.id)
            elif (
                isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id == "self"
                and class_info is not None
            ):
                receiver_class = self._attr_type(class_info, receiver.attr)
            if receiver_class is not None:
                target = self._method_on(receiver_class, func.attr)
                if target is not None:
                    self.graph.add_edge(
                        CallEdge(caller, target, lineno, "typed")
                    )
                    return
            dotted = _dotted(func)
            if dotted is not None:
                resolved = self.resolver.resolve_dotted(module.name, dotted)
                if resolved is not None:
                    kind, target_name = resolved
                    if kind == "function":
                        self.graph.add_edge(
                            CallEdge(caller, target_name, lineno, "import")
                        )
                        return
                    if kind == "class":
                        init = self._method_on(target_name, "__init__")
                        if init is not None:
                            self.graph.add_edge(
                                CallEdge(caller, init, lineno, "constructor")
                            )
                        return
                head = dotted.split(".")[0]
                if head in module.imports and module.imports[head][0] == "module":
                    return  # stdlib/external module call
            owners = self.method_index.get(func.attr, [])
            if func.attr in project.COMMON_METHOD_NAMES:
                return  # container-protocol name: never alias a project method
            if len(owners) == 1:
                target = self.graph.classes[owners[0]].methods[func.attr]
                self.graph.add_edge(CallEdge(caller, target, lineno, "by-name"))
                return
            rendered = dotted if dotted is not None else f"?.{func.attr}"
            reason = "ambiguous-method" if len(owners) > 1 else "external"
            self.graph.unresolved.append(
                UnresolvedCall(caller, rendered, lineno, reason)
            )
            return
        # calling the result of an expression (x()() etc.): dynamic
        self.graph.unresolved.append(
            UnresolvedCall(caller, "<expression>", lineno, "dynamic-receiver")
        )

    # ---------------------------------------------------------- pass three

    def walk_bodies(self) -> None:
        for info in self.graph.modules.values():
            self._walk_scope(info, info.tree.body, f"{info.name}.{MODULE_BODY}", None, {})
            self._walk_defs(info, info.tree.body, info.name, None)

    def _walk_defs(
        self,
        info: _ModuleInfo,
        body: Sequence[ast.stmt],
        prefix: str,
        class_info: Optional[_ClassInfo],
    ) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{node.name}"
                if self.graph.function_asts.get(qualname) is node:
                    env = self._seed_env(info, class_info, node)
                    self._walk_scope(info, node.body, qualname, class_info, env)
                self._walk_defs(info, node.body, qualname, None)
            elif isinstance(node, ast.ClassDef):
                qualname = f"{prefix}.{node.name}"
                klass = self.graph.classes.get(qualname)
                self._walk_defs(info, node.body, qualname, klass)
            elif isinstance(node, (ast.If, ast.Try, ast.With)):
                self._walk_defs(
                    info, self._nested_bodies(node), prefix, class_info
                )

    def _seed_env(
        self,
        info: _ModuleInfo,
        class_info: Optional[_ClassInfo],
        node: ast.AST,
    ) -> Dict[str, str]:
        env: Dict[str, str] = {}
        args = getattr(node, "args", None)
        if args is None:
            return env
        every = (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
        )
        for argument in every:
            if argument.annotation is not None:
                klass = self.annotation_class(info, argument.annotation)
                if klass is not None:
                    env[argument.arg] = klass
        return env

    def _walk_scope(
        self,
        info: _ModuleInfo,
        body: Sequence[ast.stmt],
        caller: str,
        class_info: Optional[_ClassInfo],
        env: Dict[str, str],
    ) -> None:
        walker = _FunctionWalker(self, info, caller, class_info, env)
        for statement in body:
            walker.visit(statement)


_SKIP_DIRS = frozenset({"__pycache__", ".git", ".pytest_cache"})


def iter_source_files(root: Path) -> Iterator[Path]:
    for candidate in sorted(root.rglob("*.py")):
        if not _SKIP_DIRS.intersection(candidate.parts):
            yield candidate


def build_callgraph(
    root: Path,
    package: Optional[str] = None,
    display_base: Optional[Path] = None,
) -> CallGraph:
    """Build the project call graph for the package rooted at ``root``.

    ``root`` is the directory that *is* the package (e.g. ``src/repro``);
    ``package`` defaults to the directory name.  Files that fail to parse
    are skipped (the per-module linter reports the syntax error).
    """
    root = Path(root)
    if package is None:
        package = root.name
    graph = CallGraph()
    builder = _GraphBuilder(graph)
    for path in iter_source_files(root):
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError):
            continue
        display = (
            str(path.relative_to(display_base))
            if display_base is not None
            else str(path)
        )
        info = _ModuleInfo(
            name=_module_name(path, root, package),
            path=path,
            display=display,
            tree=tree,
            source=source,
        )
        builder.index_module(info)
    builder.finish_index()
    builder.walk_bodies()
    return graph
