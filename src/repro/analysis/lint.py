"""The lint driver: walk files, run rules, honor suppressions, report.

Runnable as ``python -m repro.analysis [paths...]`` and as ``repro lint``
(see :mod:`repro.cli`).  Exit status is 0 when no error-severity finding
survives suppression filtering, 1 otherwise, and 2 on usage errors —
``make lint`` and CI gate on it.

Suppressions are line-scoped comments on the offending line (the
examples below are prose, not live suppressions — only real ``#``
comment tokens count, which is why the scanner is tokenize-based)::

    eval(user_input)  # repro-lint: disable=RULE-ID
    something()       # repro-lint: disable=rule-a,rule-b
    anything()        # repro-lint: disable=all

or file-scoped, anywhere in the file::

    # repro-lint: disable-file=RULE-ID

A suppression that stops suppressing anything is itself reported
(``stale-suppression``, error severity): dead suppressions hide future
regressions on the lines they squat on.  Staleness is only assessed
when the full rule set runs, and suppressions naming deep rules are
only assessed under ``--deep``.

``--deep`` runs the whole-program rules from
:mod:`repro.analysis.deep` (call-graph effect inference, static
lock-order, wire taint) after the per-file pass; ``--explain FUNC``
prints a function's inferred effects and witness chains.
``--baseline``/``--write-baseline`` let known findings ride while new
code is held to zero.
"""

from __future__ import annotations

import argparse
import ast
import hashlib
import io
import json
import re
import sys
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, TextIO, Tuple

from .findings import Finding, Severity
from .rules import ALL_RULES, RULES_BY_ID, ModuleInfo, Rule

_SUPPRESS_LINE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\- ]+)")
_SUPPRESS_FILE = re.compile(r"#\s*repro-lint:\s*disable-file=([A-Za-z0-9_,\- ]+)")

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".pytest_cache", ".benchmarks"})

#: finding rules that are not in RULES_BY_ID but are still legitimate
#: suppression targets
_SYNTHETIC_RULE_IDS = frozenset({"parse-error", "stale-suppression"})

BASELINE_VERSION = 1


def iter_python_files(paths: Sequence[str]) -> List[Path]:
    """Every ``.py`` file under the given files/directories, sorted."""
    found: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            found.add(path)
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    found.add(candidate)
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
    return sorted(found)


def _parse_rule_list(raw: str) -> Set[str]:
    return {token.strip() for token in raw.split(",") if token.strip()}


@dataclass
class SuppressionComment:
    """One ``repro-lint: disable[-file]=`` token from a real comment."""

    lineno: int
    token: str
    scope: str  # "line" | "file"
    used: bool = False


def collect_suppression_comments(source: str) -> List[SuppressionComment]:
    """Parse suppressions from actual COMMENT tokens.

    Tokenize-based so suppression-shaped text inside docstrings and
    string literals (this module's own docstring, test fixtures) is
    *not* treated as a live suppression; falls back to a line scan when
    the source does not tokenize.
    """
    comments: List[SuppressionComment] = []

    def parse(lineno: int, text: str) -> None:
        match = _SUPPRESS_FILE.search(text)
        if match:
            for token in _parse_rule_list(match.group(1)):
                comments.append(SuppressionComment(lineno, token, "file"))
            return
        match = _SUPPRESS_LINE.search(text)
        if match:
            for token in _parse_rule_list(match.group(1)):
                comments.append(SuppressionComment(lineno, token, "line"))

    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for lineno, line in enumerate(source.splitlines(), start=1):
            if "repro-lint" in line:
                parse(lineno, line)
        return comments
    for token_info in tokens:
        if token_info.type == tokenize.COMMENT and "repro-lint" in token_info.string:
            parse(token_info.start[0], token_info.string)
    return comments


class SuppressionIndex:
    """Lookup + usage tracking over one file's suppression comments."""

    def __init__(self, comments: List[SuppressionComment]) -> None:
        self.comments = comments
        self._by_line: Dict[int, List[SuppressionComment]] = {}
        self._file_scope: List[SuppressionComment] = []
        for comment in comments:
            if comment.scope == "file":
                self._file_scope.append(comment)
            else:
                self._by_line.setdefault(comment.lineno, []).append(comment)

    def suppresses(self, finding: Finding) -> bool:
        """True when a comment covers ``finding`` (marks it as used)."""
        hit = False
        for comment in self._file_scope:
            if comment.token == "all" or comment.token == finding.rule:
                comment.used = True
                hit = True
        for comment in self._by_line.get(finding.line, []):
            if comment.token == "all" or comment.token == finding.rule:
                comment.used = True
                hit = True
        return hit

    def filter(self, findings: Iterable[Finding]) -> Tuple[List[Finding], int]:
        kept: List[Finding] = []
        suppressed = 0
        for finding in findings:
            if self.suppresses(finding):
                suppressed += 1
            else:
                kept.append(finding)
        return kept, suppressed


def collect_suppressions(
    source: str,
) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Per-line and per-file suppression sets (compatibility view)."""
    by_line: Dict[int, Set[str]] = {}
    whole_file: Set[str] = set()
    for comment in collect_suppression_comments(source):
        if comment.scope == "file":
            whole_file.add(comment.token)
        else:
            by_line.setdefault(comment.lineno, set()).add(comment.token)
    return by_line, whole_file


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0
    baselined: int = 0
    deep_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no error-severity finding survived suppression."""
        return not self.errors

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "findings": [f.as_dict() for f in self.findings],
        }


def _parse_module(
    path: Path, shown: str
) -> Tuple[Optional[ModuleInfo], Optional[Finding]]:
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as error:
        return None, Finding(
            path=shown,
            line=1,
            col=0,
            rule="parse-error",
            severity=Severity.ERROR,
            message=f"cannot read file: {error}",
        )
    try:
        tree = ast.parse(source, filename=shown)
    except SyntaxError as error:
        return None, Finding(
            path=shown,
            line=error.lineno or 1,
            col=error.offset or 0,
            rule="parse-error",
            severity=Severity.ERROR,
            message=f"syntax error: {error.msg}",
        )
    return ModuleInfo(path=path, display=shown, tree=tree, source=source), None


def _lint_file_indexed(
    path: Path,
    rules: Sequence[Rule],
    display: Optional[str] = None,
) -> Tuple[List[Finding], int, Optional[SuppressionIndex]]:
    shown = display if display is not None else str(path)
    module, parse_finding = _parse_module(path, shown)
    if module is None:
        failure = parse_finding if parse_finding is not None else Finding(
            path=shown,
            line=1,
            col=0,
            rule="parse-error",
            severity=Severity.ERROR,
            message="cannot parse file",
        )
        return [failure], 0, None
    index = SuppressionIndex(collect_suppression_comments(module.source))
    raw: List[Finding] = []
    for rule in rules:
        raw.extend(rule.check(module))
    kept, suppressed = index.filter(raw)
    return kept, suppressed, index


def lint_file(
    path: Path,
    rules: Sequence[Rule],
    display: Optional[str] = None,
) -> Tuple[List[Finding], int]:
    """Lint one file; returns (surviving findings, suppressed count)."""
    kept, suppressed, _ = _lint_file_indexed(path, rules, display)
    return kept, suppressed


def _stale_findings(
    indexes: Dict[str, SuppressionIndex],
    deep_ran: bool,
) -> List[Finding]:
    """Unused suppression comments -> ``stale-suppression`` findings.

    Only called when the full shallow rule set ran.  Tokens naming deep
    rules (and the catch-``all`` token, which might exist for one) are
    only assessed when the deep pass also ran.
    """
    from .deep import DEEP_RULE_IDS

    findings: List[Finding] = []
    known = set(RULES_BY_ID) | _SYNTHETIC_RULE_IDS
    for path, index in sorted(indexes.items()):
        for comment in index.comments:
            if comment.used:
                continue
            token = comment.token
            if token in DEEP_RULE_IDS or token == "all":
                if not deep_ran:
                    continue
                message = (
                    f"suppression 'disable={token}' no longer suppresses "
                    "any finding; remove it"
                )
            elif token in known:
                message = (
                    f"suppression 'disable={token}' no longer suppresses "
                    "any finding; remove it"
                )
            else:
                message = (
                    f"suppression 'disable={token}' references an unknown "
                    "rule; fix the rule id or remove it"
                )
            if comment.scope == "file":
                message = message.replace("disable=", "disable-file=", 1)
            findings.append(
                Finding(
                    path=path,
                    line=comment.lineno,
                    col=0,
                    rule="stale-suppression",
                    severity=Severity.ERROR,
                    message=message,
                )
            )
    return findings


def run_lint(
    paths: Sequence[str],
    rule_ids: Optional[Iterable[str]] = None,
    *,
    deep: bool = False,
    deep_cache: Optional[Path] = None,
) -> LintResult:
    """Lint every Python file under ``paths`` with the selected rules.

    With ``deep=True`` the whole-program pass from
    :mod:`repro.analysis.deep` runs as well; its findings honor the
    same per-line/per-file suppression comments.
    """
    if rule_ids is None:
        rules: Sequence[Rule] = ALL_RULES
    else:
        unknown = set(rule_ids) - set(RULES_BY_ID)
        if unknown:
            raise KeyError(f"unknown rule ids: {sorted(unknown)}")
        rules = [RULES_BY_ID[rule_id] for rule_id in rule_ids]
    result = LintResult()
    indexes: Dict[str, SuppressionIndex] = {}
    for path in iter_python_files(paths):
        findings, suppressed, index = _lint_file_indexed(path, rules)
        if index is not None:
            indexes[str(path)] = index
        result.findings.extend(findings)
        result.suppressed += suppressed
        result.files_checked += 1
    if deep:
        from .deep import run_deep

        deep_result = run_deep([str(p) for p in paths], cache_path=deep_cache)
        result.deep_stats = dict(deep_result.stats)
        extra_indexes: Dict[str, SuppressionIndex] = {}
        for finding in deep_result.findings:
            index = indexes.get(finding.path)
            if index is None:
                index = extra_indexes.get(finding.path)
            if index is None:
                try:
                    source = Path(finding.path).read_text(encoding="utf-8")
                except OSError:
                    source = ""
                index = SuppressionIndex(
                    collect_suppression_comments(source)
                )
                extra_indexes[finding.path] = index
            if index.suppresses(finding):
                result.suppressed += 1
            else:
                result.findings.append(finding)
    if rule_ids is None:
        result.findings.extend(_stale_findings(indexes, deep_ran=deep))
    result.findings.sort()
    return result


# ---------------------------------------------------------------- baseline


def finding_fingerprint(finding: Finding) -> str:
    """A stable id for baselining: path + rule + message (line-free, so
    unrelated edits shifting line numbers don't un-baseline a finding —
    but witness chains embed line numbers, so any change to the chain
    itself does)."""
    blob = f"{finding.path}|{finding.rule}|{finding.message}"
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Record the current findings as the accepted baseline."""
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {
                "fingerprint": finding_fingerprint(finding),
                "path": finding.path,
                "rule": finding.rule,
                "line": finding.line,
                "message": finding.message,
            }
            for finding in sorted(findings)
        ],
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def load_baseline(path: Path) -> Set[str]:
    """The fingerprint set from a baseline file written above."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise ValueError(f"{path}: not a lint baseline file")
    entries = payload.get("findings")
    if not isinstance(entries, list):
        raise ValueError(f"{path}: malformed baseline")
    fingerprints: Set[str] = set()
    for entry in entries:
        if isinstance(entry, dict) and isinstance(entry.get("fingerprint"), str):
            fingerprints.add(entry["fingerprint"])
    return fingerprints


def apply_baseline(result: LintResult, fingerprints: Set[str]) -> None:
    """Drop baselined findings from ``result`` (counts them instead)."""
    kept: List[Finding] = []
    for finding in result.findings:
        if finding_fingerprint(finding) in fingerprints:
            result.baselined += 1
        else:
            kept.append(finding)
    result.findings = kept


# -------------------------------------------------------------------- main


def _print_rule_table(stream: TextIO) -> None:
    from .deep import DEEP_RULES

    width = max(
        max(len(rule.id) for rule in ALL_RULES),
        max(len(rule.id) for rule in DEEP_RULES),
    )
    for rule in ALL_RULES:
        stream.write(
            f"{rule.id:<{width}}  {rule.severity}  {rule.summary}\n"
        )
    for deep_rule in DEEP_RULES:
        stream.write(
            f"{deep_rule.id:<{width}}  {deep_rule.severity}  "
            f"(deep) {deep_rule.summary}\n"
        )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="project-invariant linter for the OASSIS reproduction "
        "(see docs/ANALYSIS.md for the rule catalogue)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable report instead of text",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--deep",
        action="store_true",
        help="also run the whole-program rules (call-graph effects, "
        "static lock-order, wire taint; docs/ANALYSIS.md)",
    )
    parser.add_argument(
        "--cache",
        metavar="PATH",
        help="hash-keyed cache file for --deep results "
        "(e.g. .deep-analysis-cache.json)",
    )
    parser.add_argument(
        "--explain",
        metavar="FUNC",
        help="print inferred effects and witness chains for a function "
        "(qualname or suffix, e.g. SessionManager.submit) and exit",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="suppress findings recorded in this baseline JSON; only new "
        "findings affect the exit code",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        help="record the current findings as the accepted baseline and exit",
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        _print_rule_table(sys.stdout)
        return 0
    if args.explain:
        from .deep import explain_function

        return explain_function(args.paths, args.explain)
    rule_ids = sorted(_parse_rule_list(args.rules)) if args.rules else None
    try:
        result = run_lint(
            args.paths,
            rule_ids,
            deep=args.deep,
            deep_cache=Path(args.cache) if args.cache else None,
        )
    except FileNotFoundError as error:
        print(str(error), file=sys.stderr)
        return 2
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    if args.write_baseline:
        write_baseline(Path(args.write_baseline), result.findings)
        print(
            f"wrote baseline with {len(result.findings)} finding(s) to "
            f"{args.write_baseline}"
        )
        return 0
    if args.baseline:
        try:
            fingerprints = load_baseline(Path(args.baseline))
        except (OSError, ValueError) as error:
            print(str(error), file=sys.stderr)
            return 2
        apply_baseline(result, fingerprints)
    if args.json:
        print(json.dumps(result.as_dict(), indent=2, sort_keys=True))
    else:
        for finding in result.findings:
            print(finding.render())
        summary = (
            f"{result.files_checked} file(s) checked: "
            f"{len(result.errors)} error(s), "
            f"{len(result.warnings)} warning(s)"
        )
        if result.suppressed:
            summary += f", {result.suppressed} suppressed"
        if result.baselined:
            summary += f", {result.baselined} baselined"
        if result.deep_stats:
            summary += (
                f" [deep: {result.deep_stats.get('functions', 0)} functions, "
                f"{result.deep_stats.get('edges', 0)} edges]"
            )
        print(summary)
    return 0 if result.ok else 1
