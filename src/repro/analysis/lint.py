"""The lint driver: walk files, run rules, honor suppressions, report.

Runnable as ``python -m repro.analysis [paths...]`` and as ``repro lint``
(see :mod:`repro.cli`).  Exit status is 0 when no error-severity finding
survives suppression filtering, 1 otherwise, and 2 on usage errors —
``make lint`` and CI gate on it.

Suppressions are line-scoped comments on the offending line::

    eval(user_input)  # repro-lint: disable=RULE-ID
    something()       # repro-lint: disable=rule-a,rule-b
    anything()        # repro-lint: disable=all

or file-scoped, anywhere in the file::

    # repro-lint: disable-file=RULE-ID
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, TextIO, Tuple

from .findings import Finding, Severity
from .rules import ALL_RULES, RULES_BY_ID, ModuleInfo, Rule

_SUPPRESS_LINE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\- ]+)")
_SUPPRESS_FILE = re.compile(r"#\s*repro-lint:\s*disable-file=([A-Za-z0-9_,\- ]+)")

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".pytest_cache", ".benchmarks"})


def iter_python_files(paths: Sequence[str]) -> List[Path]:
    """Every ``.py`` file under the given files/directories, sorted."""
    found: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            found.add(path)
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    found.add(candidate)
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
    return sorted(found)


def _parse_rule_list(raw: str) -> Set[str]:
    return {token.strip() for token in raw.split(",") if token.strip()}


def collect_suppressions(
    source: str,
) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Per-line and per-file suppression sets parsed from comments."""
    by_line: Dict[int, Set[str]] = {}
    whole_file: Set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "repro-lint" not in line:
            continue
        match = _SUPPRESS_FILE.search(line)
        if match:
            whole_file.update(_parse_rule_list(match.group(1)))
            continue
        match = _SUPPRESS_LINE.search(line)
        if match:
            by_line.setdefault(lineno, set()).update(
                _parse_rule_list(match.group(1))
            )
    return by_line, whole_file


def _suppressed(
    finding: Finding,
    by_line: Dict[int, Set[str]],
    whole_file: Set[str],
) -> bool:
    if "all" in whole_file or finding.rule in whole_file:
        return True
    rules = by_line.get(finding.line)
    if rules is None:
        return False
    return "all" in rules or finding.rule in rules


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no error-severity finding survived suppression."""
        return not self.errors

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "suppressed": self.suppressed,
            "findings": [f.as_dict() for f in self.findings],
        }


def lint_file(
    path: Path,
    rules: Sequence[Rule],
    display: Optional[str] = None,
) -> Tuple[List[Finding], int]:
    """Lint one file; returns (surviving findings, suppressed count)."""
    shown = display if display is not None else str(path)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as error:
        return (
            [
                Finding(
                    path=shown,
                    line=1,
                    col=0,
                    rule="parse-error",
                    severity=Severity.ERROR,
                    message=f"cannot read file: {error}",
                )
            ],
            0,
        )
    try:
        tree = ast.parse(source, filename=shown)
    except SyntaxError as error:
        return (
            [
                Finding(
                    path=shown,
                    line=error.lineno or 1,
                    col=error.offset or 0,
                    rule="parse-error",
                    severity=Severity.ERROR,
                    message=f"syntax error: {error.msg}",
                )
            ],
            0,
        )
    module = ModuleInfo(path=path, display=shown, tree=tree, source=source)
    by_line, whole_file = collect_suppressions(source)
    kept: List[Finding] = []
    suppressed = 0
    for rule in rules:
        for finding in rule.check(module):
            if _suppressed(finding, by_line, whole_file):
                suppressed += 1
            else:
                kept.append(finding)
    return kept, suppressed


def run_lint(
    paths: Sequence[str],
    rule_ids: Optional[Iterable[str]] = None,
) -> LintResult:
    """Lint every Python file under ``paths`` with the selected rules."""
    if rule_ids is None:
        rules: Sequence[Rule] = ALL_RULES
    else:
        unknown = set(rule_ids) - set(RULES_BY_ID)
        if unknown:
            raise KeyError(f"unknown rule ids: {sorted(unknown)}")
        rules = [RULES_BY_ID[rule_id] for rule_id in rule_ids]
    result = LintResult()
    for path in iter_python_files(paths):
        findings, suppressed = lint_file(path, rules)
        result.findings.extend(findings)
        result.suppressed += suppressed
        result.files_checked += 1
    result.findings.sort()
    return result


def _print_rule_table(stream: TextIO) -> None:
    width = max(len(rule.id) for rule in ALL_RULES)
    for rule in ALL_RULES:
        stream.write(
            f"{rule.id:<{width}}  {rule.severity}  {rule.summary}\n"
        )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="project-invariant linter for the OASSIS reproduction "
        "(see docs/ANALYSIS.md for the rule catalogue)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable report instead of text",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        _print_rule_table(sys.stdout)
        return 0
    rule_ids = sorted(_parse_rule_list(args.rules)) if args.rules else None
    try:
        result = run_lint(args.paths, rule_ids)
    except FileNotFoundError as error:
        print(str(error), file=sys.stderr)
        return 2
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result.as_dict(), indent=2, sort_keys=True))
    else:
        for finding in result.findings:
            print(finding.render())
        summary = (
            f"{result.files_checked} file(s) checked: "
            f"{len(result.errors)} error(s), "
            f"{len(result.warnings)} warning(s)"
        )
        if result.suppressed:
            summary += f", {result.suppressed} suppressed"
        print(summary)
    return 0 if result.ok else 1
