"""The whole-program ("deep") rules: ``repro lint --deep``.

Where :mod:`repro.analysis.rules` inspects one function at a time, the
four rules here run over the project call graph
(:mod:`repro.analysis.callgraph`) and the inferred effect sets
(:mod:`repro.analysis.effects`), so they see violations that are only
visible across call boundaries.  **Every finding carries a witness call
chain** — the shortest ``entry -> ... -> offending call`` path the
analysis found — so a report is a debugging head start, not a puzzle.

``async-blocking-transitive``
    No ``blocking-io`` (or ``fsync``) effect may be *reachable* from an
    ``async def`` in the gateway.  The local ``async-blocking-io`` rule
    already flags direct calls; this one follows the call graph, so a
    ``time.sleep`` two helpers below ``_handle_connection`` still
    surfaces.  Chains of length one are left to the local rule.

``determinism-transitive``
    No ``wall-clock`` or ``unseeded-random`` effect may be reachable
    from the public entry points of the mining / lattice / crowd core
    (``DEEP_DETERMINISM_ENTRY_PREFIXES``): the replay and serial-MSP
    identity oracles re-execute these and compare outputs bit-for-bit.

``static-lock-order``
    Builds the role-level lock acquisition graph *statically*: role A
    -> role B when some function acquires B (possibly transitively)
    while holding A.  Flags same-role nesting, cycles, and the
    forbidden pairs from ``FORBIDDEN_LOCK_PAIRS`` (manager + session
    held together — the contract the dynamic
    :mod:`repro.analysis.lockcheck` enforces at runtime).  The edge set
    is exposed for cross-validation: every edge the dynamic checker
    observes must appear here.

``wire-taint``
    Raw wire payloads (``request.json()`` results, MCP
    ``message``/``params``/``arguments`` dicts) must pass through a
    ``repro.gateway.schema`` decode (``*.from_wire``) or an explicit
    scalar validation (``isinstance`` / ``int()``/``float()``/``str()``)
    before reaching ``GatewayApp`` / ``SessionManager`` methods.
    Intra-procedural, per transport function, with the taint's
    source-to-sink path in the message.

Results are cached (``--cache``): the key hashes every analyzed file,
so an unchanged tree re-reports instantly and any edit invalidates.
"""

from __future__ import annotations

import hashlib
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, TextIO, Tuple

import ast

from . import project
from .callgraph import (
    MODULE_BODY,
    CallEdge,
    FunctionInfo,
    build_callgraph,
    iter_source_files,
)
from .effects import (
    EFFECT_BLOCKING_IO,
    EFFECT_FSYNC,
    EFFECT_UNSEEDED_RANDOM,
    EFFECT_WALL_CLOCK,
    EffectAnalysis,
    infer_effects,
    lock_effect,
    lock_role_of,
)
from .findings import Finding, Severity

#: bump when the analysis logic changes so stale caches self-invalidate
ANALYSIS_VERSION = 1

RULE_ASYNC_BLOCKING = "async-blocking-transitive"
RULE_DETERMINISM = "determinism-transitive"
RULE_LOCK_ORDER = "static-lock-order"
RULE_WIRE_TAINT = "wire-taint"
RULE_ANNOTATION = "effect-annotation"


@dataclass(frozen=True)
class DeepRule:
    """Catalogue row for ``--list-rules`` (the logic lives below)."""

    id: str
    severity: Severity
    summary: str


DEEP_RULES: Tuple[DeepRule, ...] = (
    DeepRule(
        RULE_ASYNC_BLOCKING,
        Severity.ERROR,
        "no blocking-io/fsync effect reachable from gateway async handlers",
    ),
    DeepRule(
        RULE_DETERMINISM,
        Severity.ERROR,
        "no wall-clock/unseeded-random reachable from mining/lattice/crowd "
        "core entry points",
    ),
    DeepRule(
        RULE_LOCK_ORDER,
        Severity.ERROR,
        "static lock-role graph: no cycles, no forbidden pairs "
        "(manager+session) held together",
    ),
    DeepRule(
        RULE_WIRE_TAINT,
        Severity.ERROR,
        "raw HTTP/MCP payloads must pass schema decode before GatewayApp/"
        "SessionManager",
    ),
    DeepRule(
        RULE_ANNOTATION,
        Severity.ERROR,
        "a '# repro-effects: allow=' annotation names an unknown effect",
    ),
)

DEEP_RULE_IDS: FrozenSet[str] = frozenset(rule.id for rule in DEEP_RULES)


def _path_matches(path: str, prefix: str) -> bool:
    """Same semantics as ModuleInfo.matches: trailing '/' means contains."""
    posix = path.replace("\\", "/")
    if prefix.endswith("/"):
        return f"/{prefix}" in f"/{posix}"
    return posix == prefix or posix.endswith(f"/{prefix}")


def _in_any(path: str, prefixes: Sequence[str]) -> bool:
    return any(_path_matches(path, prefix) for prefix in prefixes)


@dataclass(frozen=True)
class LockEdge:
    """Role A held while role B is acquired, with the static witness."""

    holder: str
    acquired: str
    witness: str
    path: str
    lineno: int


@dataclass
class DeepResult:
    """Everything one deep run produced."""

    findings: List[Finding] = field(default_factory=list)
    lock_edges: List[LockEdge] = field(default_factory=list)
    analysis: Optional[EffectAnalysis] = None
    from_cache: bool = False
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def lock_pairs(self) -> Set[Tuple[str, str]]:
        return {(edge.holder, edge.acquired) for edge in self.lock_edges}


def discover_package_root(paths: Sequence[str]) -> Optional[Path]:
    """The ``repro`` package directory implied by the lint paths.

    ``src`` / ``src/repro`` / any path inside them all resolve to the
    same package root; for fixture trees, a directory that *is* a
    package (has ``__init__.py``) is accepted as-is.
    """
    candidates: List[Path] = []
    for raw in paths:
        path = Path(raw)
        candidates.append(path if path.is_dir() else path.parent)
    candidates.append(Path("src"))
    for candidate in candidates:
        probe = candidate
        for _ in range(6):
            if probe.name == "repro" and (probe / "__init__.py").is_file():
                return probe
            nested = probe / "repro"
            if (nested / "__init__.py").is_file():
                return nested
            srced = probe / "src" / "repro"
            if (srced / "__init__.py").is_file():
                return srced
            if probe.parent == probe:
                break
            probe = probe.parent
    for candidate in candidates:
        if (candidate / "__init__.py").is_file():
            return candidate
    return None


def analyze(root: Path) -> EffectAnalysis:
    """Build the call graph for ``root`` and run effect inference."""
    graph = build_callgraph(root)
    return infer_effects(graph)


# --------------------------------------------------------------- the rules


def _chain_or_fallback(
    analysis: EffectAnalysis, start: str, effect: str
) -> str:
    links = analysis.witness_chain(start, effect)
    if links is None:
        return f"(effect inherited through the call graph from {start})"
    return analysis.render_chain(links)


def _check_async_blocking(
    analysis: EffectAnalysis, findings: List[Finding]
) -> None:
    for info in analysis.graph.functions.values():
        if not info.is_async:
            continue
        if not _in_any(info.path, project.ASYNC_MODULE_PREFIXES):
            continue
        for effect in (EFFECT_BLOCKING_IO, EFFECT_FSYNC):
            if effect not in analysis.effects_of(info.qualname):
                continue
            links = analysis.witness_chain(info.qualname, effect)
            if links is not None and len(links) == 1:
                continue  # direct call: the local async-blocking-io rule owns it
            chain = (
                analysis.render_chain(links)
                if links is not None
                else f"(chain through unresolved edges from {info.qualname})"
            )
            findings.append(
                Finding(
                    path=info.path,
                    line=info.lineno,
                    col=0,
                    rule=RULE_ASYNC_BLOCKING,
                    severity=Severity.ERROR,
                    message=(
                        f"async handler reaches a {effect} call; "
                        f"witness: {chain}"
                    ),
                )
            )


def _check_determinism(
    analysis: EffectAnalysis, findings: List[Finding]
) -> None:
    local_prefixes = project.DETERMINISTIC_MODULE_PREFIXES
    for info in analysis.graph.functions.values():
        if info.name == MODULE_BODY or not info.is_public:
            continue
        if not _in_any(info.path, project.DEEP_DETERMINISM_ENTRY_PREFIXES):
            continue
        for effect in (EFFECT_WALL_CLOCK, EFFECT_UNSEEDED_RANDOM):
            if effect not in analysis.effects_of(info.qualname):
                continue
            links = analysis.witness_chain(info.qualname, effect)
            if (
                links is not None
                and len(links) == 1
                and _in_any(info.path, local_prefixes)
            ):
                continue  # direct call: the local determinism rules own it
            chain = (
                analysis.render_chain(links)
                if links is not None
                else f"(chain through unresolved edges from {info.qualname})"
            )
            findings.append(
                Finding(
                    path=info.path,
                    line=info.lineno,
                    col=0,
                    rule=RULE_DETERMINISM,
                    severity=Severity.ERROR,
                    message=(
                        f"replay entry point reaches a {effect} call; "
                        f"witness: {chain}"
                    ),
                )
            )


def compute_lock_edges(analysis: EffectAnalysis) -> List[LockEdge]:
    """The static role-level acquisition graph, with witnesses."""
    edges: Dict[Tuple[str, str], LockEdge] = {}
    graph = analysis.graph
    for qualname, acquisitions in analysis.acquisitions.items():
        info = graph.functions.get(qualname)
        if info is None:
            continue
        call_edges = graph.callees_of(qualname)
        reentrant = analysis.reentrant_roles
        for acquisition in acquisitions:
            held = acquisition.role
            # nested direct acquisitions inside this block
            for other in acquisitions:
                if other is acquisition:
                    continue
                if held == other.role and held in reentrant:
                    continue  # rlock re-entry: not an ordering event
                if acquisition.body_start < other.lineno <= acquisition.body_end:
                    witness = (
                        f"{qualname}: with <{held}> at line "
                        f"{acquisition.lineno} -> with <{other.role}> at "
                        f"line {other.lineno}"
                    )
                    edges.setdefault(
                        (held, other.role),
                        LockEdge(
                            held,
                            other.role,
                            witness,
                            info.path,
                            acquisition.lineno,
                        ),
                    )
            # calls made while the lock is held
            for call in call_edges:
                if not (
                    acquisition.body_start
                    < call.lineno
                    <= acquisition.body_end
                ):
                    continue
                for effect in analysis.effects_of(call.callee):
                    role = lock_role_of(effect)
                    if role is None:
                        continue
                    if role == held and held in reentrant:
                        continue  # rlock re-entry: not an ordering event
                    links = analysis.witness_chain(
                        call.callee, lock_effect(role)
                    )
                    tail = (
                        analysis.render_chain(links)
                        if links is not None
                        else call.callee
                    )
                    witness = (
                        f"{qualname}: with <{held}> at line "
                        f"{acquisition.lineno} -> {tail}"
                    )
                    edges.setdefault(
                        (held, role),
                        LockEdge(
                            held, role, witness, info.path, acquisition.lineno
                        ),
                    )
    return list(edges.values())


def _check_lock_order(
    analysis: EffectAnalysis,
    lock_edges: List[LockEdge],
    findings: List[Finding],
) -> None:
    by_pair = {(edge.holder, edge.acquired): edge for edge in lock_edges}
    # same-role nesting is an immediate deadlock on a non-reentrant lock
    for (held, acquired), edge in sorted(by_pair.items()):
        if held == acquired:
            findings.append(
                Finding(
                    path=edge.path,
                    line=edge.lineno,
                    col=0,
                    rule=RULE_LOCK_ORDER,
                    severity=Severity.ERROR,
                    message=(
                        f"same-role lock nesting on <{held}>; "
                        f"witness: {edge.witness}"
                    ),
                )
            )
    # forbidden pairs, in either order
    for first, second in project.FORBIDDEN_LOCK_PAIRS:
        for held, acquired in ((first, second), (second, first)):
            edge = by_pair.get((held, acquired))
            if edge is not None:
                findings.append(
                    Finding(
                        path=edge.path,
                        line=edge.lineno,
                        col=0,
                        rule=RULE_LOCK_ORDER,
                        severity=Severity.ERROR,
                        message=(
                            f"forbidden lock pair: <{held}> held while "
                            f"acquiring <{acquired}>; witness: {edge.witness}"
                        ),
                    )
                )
    # cycles (beyond self-loops, reported above)
    adjacency: Dict[str, List[str]] = {}
    for held, acquired in by_pair:
        if held != acquired:
            adjacency.setdefault(held, []).append(acquired)
    reported: Set[FrozenSet[str]] = set()
    for start in sorted(adjacency):
        stack = [(start, [start])]
        while stack:
            node, trail = stack.pop()
            for neighbour in adjacency.get(node, []):
                if neighbour == start and len(trail) > 1:
                    cycle = frozenset(trail)
                    if cycle in reported:
                        continue
                    reported.add(cycle)
                    edge = by_pair[(trail[0], trail[1])]
                    rendered = " -> ".join(trail + [start])
                    findings.append(
                        Finding(
                            path=edge.path,
                            line=edge.lineno,
                            col=0,
                            rule=RULE_LOCK_ORDER,
                            severity=Severity.ERROR,
                            message=(
                                f"lock-order cycle: {rendered}; "
                                f"witness for first edge: {edge.witness}"
                            ),
                        )
                    )
                elif neighbour not in trail:
                    stack.append((neighbour, trail + [neighbour]))


class _TaintWalker:
    """Intra-procedural wire-taint tracking for one transport function."""

    def __init__(
        self,
        analysis: EffectAnalysis,
        info: FunctionInfo,
        node: ast.AST,
        findings: List[Finding],
    ) -> None:
        self.analysis = analysis
        self.info = info
        self.node = node
        self.findings = findings
        #: name -> provenance ("request.json():376 -> payload:377")
        self.taint: Dict[str, str] = {}
        self.edges_by_line: Dict[int, List[CallEdge]] = {}
        for edge in analysis.graph.callees_of(info.qualname):
            self.edges_by_line.setdefault(edge.lineno, []).append(edge)

    def run(self) -> None:
        args = getattr(self.node, "args", None)
        if args is not None:
            names = [
                argument.arg
                for argument in (
                    list(args.posonlyargs)
                    + list(args.args)
                    + list(args.kwonlyargs)
                )
            ]
            for name in names:
                if name in project.WIRE_TAINT_PARAM_NAMES:
                    self.taint[name] = f"wire parameter '{name}'"
        for statement in getattr(self.node, "body", []):
            self._walk(statement)

    # ------------------------------------------------------------ traversal

    def _walk(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs are analyzed as their own functions
        if isinstance(node, ast.Assign):
            self._scan_expr(node.value)
            provenance = self._expr_taint(node.value)
            for target in node.targets:
                self._assign(target, provenance, node.lineno)
            return
        if isinstance(node, ast.AnnAssign) and node.value is not None:
            self._scan_expr(node.value)
            self._assign(node.target, self._expr_taint(node.value), node.lineno)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._scan_expr(child)
            else:
                self._walk(child)

    def _assign(
        self, target: ast.expr, provenance: Optional[str], lineno: int
    ) -> None:
        if not isinstance(target, ast.Name):
            return
        if provenance is None:
            self.taint.pop(target.id, None)
        else:
            self.taint[target.id] = f"{provenance} -> {target.id}:{lineno}"

    def _scan_expr(self, expr: ast.expr) -> None:
        """Find isinstance validations and sink calls anywhere in ``expr``."""
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id == "isinstance"
                and node.args
                and isinstance(node.args[0], ast.Name)
            ):
                # an isinstance check is the scalar validation contract
                self.taint.pop(node.args[0].id, None)
                continue
            self._check_sink(node)

    def _check_sink(self, call: ast.Call) -> None:
        sink = self._sink_target(call)
        if sink is None:
            return
        arguments = list(call.args) + [kw.value for kw in call.keywords]
        for position, argument in enumerate(arguments, start=1):
            provenance = self._expr_taint(argument)
            if provenance is None:
                continue
            self.findings.append(
                Finding(
                    path=self.info.path,
                    line=call.lineno,
                    col=call.col_offset,
                    rule=RULE_WIRE_TAINT,
                    severity=Severity.ERROR,
                    message=(
                        f"raw wire payload reaches {sink} (arg {position}) "
                        f"without a repro.gateway.schema decode; "
                        f"witness: {provenance} -> {sink}:{call.lineno}"
                    ),
                )
            )

    def _sink_target(self, call: ast.Call) -> Optional[str]:
        for edge in self.edges_by_line.get(call.lineno, []):
            callee = self.analysis.graph.functions.get(edge.callee)
            if callee is None or callee.class_name is None:
                continue
            class_short = callee.class_name.rsplit(".", 1)[-1]
            if class_short in project.WIRE_SINK_CLASSES:
                expected = callee.name
                func = call.func
                if isinstance(func, ast.Attribute) and func.attr == expected:
                    return f"{class_short}.{callee.name}()"
                if isinstance(func, ast.Name) and func.id == expected:
                    return f"{class_short}.{callee.name}()"
        return None

    # ---------------------------------------------------------- taint logic

    def _expr_taint(self, expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Name):
            return self.taint.get(expr.id)
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Attribute):
                if func.attr in project.WIRE_DECODE_METHODS:
                    return None  # schema decode: clean by definition
                if func.attr == "json":
                    receiver = func.value
                    rendered = (
                        receiver.id
                        if isinstance(receiver, ast.Name)
                        else "<expr>"
                    )
                    return f"{rendered}.json():{expr.lineno}"
                if func.attr in ("get", "pop", "setdefault"):
                    return self._expr_taint(func.value)
            if isinstance(func, ast.Name):
                if func.id in ("int", "float", "str", "bool", "len"):
                    return None  # scalar coercion validates the value
                if func.id == "dict":
                    for keyword in expr.keywords:
                        provenance = self._expr_taint(keyword.value)
                        if provenance is not None:
                            return provenance
                    for argument in expr.args:
                        provenance = self._expr_taint(argument)
                        if provenance is not None:
                            return provenance
            return None
        if isinstance(expr, ast.Subscript):
            return self._expr_taint(expr.value)
        if isinstance(expr, ast.Attribute):
            return self._expr_taint(expr.value)
        if isinstance(expr, ast.Dict):
            for value in list(expr.values) + [
                key for key in expr.keys if key is not None
            ]:
                provenance = self._expr_taint(value)
                if provenance is not None:
                    return provenance
            return None
        if isinstance(expr, ast.BoolOp):
            for value in expr.values:
                provenance = self._expr_taint(value)
                if provenance is not None:
                    return provenance
            return None
        if isinstance(expr, ast.IfExp):
            return self._expr_taint(expr.body) or self._expr_taint(expr.orelse)
        if isinstance(expr, (ast.Await, ast.Starred)):
            return self._expr_taint(expr.value)
        return None


def _check_wire_taint(
    analysis: EffectAnalysis, findings: List[Finding]
) -> None:
    for qualname, node in analysis.graph.function_asts.items():
        info = analysis.graph.functions.get(qualname)
        if info is None or info.name == MODULE_BODY:
            continue
        if not _in_any(info.path, project.WIRE_TAINT_MODULES):
            continue
        _TaintWalker(analysis, info, node, findings).run()


def _check_annotations(
    analysis: EffectAnalysis, findings: List[Finding]
) -> None:
    for error in analysis.annotation_errors:
        findings.append(
            Finding(
                path=error.path,
                line=error.lineno,
                col=0,
                rule=RULE_ANNOTATION,
                severity=Severity.ERROR,
                message=(
                    f"unknown effect '{error.token}' in a "
                    "'# repro-effects: allow=' annotation (known: "
                    + ", ".join(
                        sorted(
                            {
                                EFFECT_BLOCKING_IO,
                                EFFECT_WALL_CLOCK,
                                EFFECT_UNSEEDED_RANDOM,
                                "spawn",
                                "fsync",
                            }
                        )
                    )
                    + ", lock-acquire[ROLE])"
                ),
            )
        )


# ------------------------------------------------------------------ driver


def _tree_key(root: Path) -> str:
    digest = hashlib.sha256()
    digest.update(f"analysis-version={ANALYSIS_VERSION}\n".encode())
    for path in iter_source_files(root):
        content = path.read_bytes()
        digest.update(str(path).encode())
        digest.update(b"\x00")
        digest.update(hashlib.sha256(content).digest())
        digest.update(b"\n")
    return digest.hexdigest()


def _load_cache(cache_path: Path, key: str) -> Optional[DeepResult]:
    try:
        payload = json.loads(cache_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or payload.get("key") != key:
        return None
    if payload.get("version") != ANALYSIS_VERSION:
        return None
    try:
        findings = [
            Finding(
                path=str(entry["path"]),
                line=int(entry["line"]),
                col=int(entry["col"]),
                rule=str(entry["rule"]),
                severity=Severity(str(entry["severity"])),
                message=str(entry["message"]),
            )
            for entry in payload["findings"]
        ]
        lock_edges = [
            LockEdge(
                holder=str(entry["holder"]),
                acquired=str(entry["acquired"]),
                witness=str(entry["witness"]),
                path=str(entry["path"]),
                lineno=int(entry["lineno"]),
            )
            for entry in payload["lock_edges"]
        ]
        stats = {
            str(name): int(value)
            for name, value in payload.get("stats", {}).items()
        }
    except (KeyError, TypeError, ValueError):
        return None
    return DeepResult(
        findings=findings,
        lock_edges=lock_edges,
        analysis=None,
        from_cache=True,
        stats=stats,
    )


def _write_cache(cache_path: Path, key: str, result: DeepResult) -> None:
    payload = {
        "version": ANALYSIS_VERSION,
        "key": key,
        "findings": [finding.as_dict() for finding in result.findings],
        "lock_edges": [
            {
                "holder": edge.holder,
                "acquired": edge.acquired,
                "witness": edge.witness,
                "path": edge.path,
                "lineno": edge.lineno,
            }
            for edge in result.lock_edges
        ],
        "stats": result.stats,
    }
    try:
        cache_path.parent.mkdir(parents=True, exist_ok=True)
        cache_path.write_text(
            json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8"
        )
    except OSError:
        pass  # a cache that cannot be written is just a cache miss next time


def run_deep(
    paths: Sequence[str],
    cache_path: Optional[Path] = None,
) -> DeepResult:
    """Run the four deep rules for the package implied by ``paths``."""
    root = discover_package_root(paths)
    if root is None:
        raise FileNotFoundError(
            "cannot locate a package root (looked for repro/__init__.py "
            f"near {list(paths)!r})"
        )
    key = _tree_key(root) if cache_path is not None else ""
    if cache_path is not None:
        cached = _load_cache(cache_path, key)
        if cached is not None:
            return cached
    analysis = analyze(root)
    findings: List[Finding] = []
    lock_edges = compute_lock_edges(analysis)
    _check_async_blocking(analysis, findings)
    _check_determinism(analysis, findings)
    _check_lock_order(analysis, lock_edges, findings)
    _check_wire_taint(analysis, findings)
    _check_annotations(analysis, findings)
    findings.sort()
    result = DeepResult(
        findings=findings,
        lock_edges=lock_edges,
        analysis=analysis,
        from_cache=False,
        stats={
            "functions": len(analysis.graph.functions),
            "edges": len(analysis.graph.edges),
            "unresolved": len(analysis.graph.unresolved),
            "lock_edges": len(lock_edges),
        },
    )
    if cache_path is not None:
        _write_cache(cache_path, key, result)
    return result


# ----------------------------------------------------------------- explain


def explain_function(
    paths: Sequence[str], needle: str, stream: TextIO = sys.stdout
) -> int:
    """``repro lint --explain FUNC``: effects + witness chains for FUNC."""
    root = discover_package_root(paths)
    if root is None:
        print("cannot locate a package root", file=sys.stderr)
        return 2
    analysis = analyze(root)
    matches = analysis.graph.find(needle)
    if not matches:
        print(f"no function matches {needle!r}", file=sys.stderr)
        return 2
    for info in matches:
        stream.write(f"{info.qualname}  ({info.path}:{info.lineno})\n")
        direct = sorted(analysis.direct_of(info.qualname))
        visible = sorted(analysis.effects_of(info.qualname))
        allows = sorted(analysis.allows.get(info.qualname, frozenset()))
        stream.write(f"  direct effects:  {', '.join(direct) or '(none)'}\n")
        stream.write(f"  visible effects: {', '.join(visible) or '(none)'}\n")
        if allows:
            stream.write(f"  allowed (masked): {', '.join(allows)}\n")
        for effect in visible:
            links = analysis.witness_chain(info.qualname, effect)
            if links is not None:
                stream.write(
                    f"    {effect}: {analysis.render_chain(links)}\n"
                )
        callers = analysis.graph.callers_of(info.qualname)
        if callers:
            names = sorted({edge.caller for edge in callers})
            preview = ", ".join(names[:6])
            if len(names) > 6:
                preview += f", ... ({len(names)} total)"
            stream.write(f"  called by: {preview}\n")
        unresolved = [
            entry
            for entry in analysis.graph.unresolved
            if entry.caller == info.qualname
        ]
        for entry in unresolved:
            stream.write(
                f"  unresolved call: {entry.target} at line "
                f"{entry.lineno} ({entry.reason})\n"
            )
        stream.write("\n")
    return 0
