"""The lint rules: generic hygiene plus this repo's own invariants.

Every rule is a small AST pass over one module.  The generic rules
(``bare-except``, ``mutable-default``, ``shadowed-builtin``,
``unused-import``, ``unreachable-code``) are ordinary Python hygiene;
the project rules read their configuration from
:mod:`repro.analysis.project` and encode invariants that are otherwise
only documented prose:

* ``lock-nesting`` — the manager lock and a session lock are never held
  together (``docs/SERVICE.md``);
* ``version-stamp`` — mutators of version-stamped structures bump the
  stamp (``docs/PERFORMANCE.md``);
* ``cache-guard`` — stamp-keyed memo caches are revalidated at every
  public entry point;
* ``tracer-name`` — counter/span names are registered in
  :mod:`repro.observability.names`;
* ``shim-caller`` — internal code never calls the PR-3 deprecation
  shims;
* ``silent-except`` — broad excepts in the serving/fault layer must log
  a counter or re-raise (``docs/RELIABILITY.md``);
* ``unseeded-random`` / ``wall-clock`` — core algorithm modules stay
  deterministic for replay;
* ``fork-unsafe-state`` — modules imported into shard worker processes
  hold no import-time locks/RNGs/thread-locals (``docs/SHARDING.md``):
  build such state in a factory called after spawn, or own the process
  boundary with ``__getstate__``.

Rule ids double as suppression keys: ``# repro-lint: disable=RULE``.
See ``docs/ANALYSIS.md`` for the full catalogue.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from . import project
from .findings import Finding, Severity


@dataclass
class ModuleInfo:
    """One parsed source file handed to every rule."""

    path: Path
    display: str
    tree: ast.Module
    source: str

    @property
    def posix(self) -> str:
        return self.path.as_posix()

    def matches(self, suffix: str) -> bool:
        """Does this file's path end with (or contain) ``suffix``?"""
        if suffix.endswith("/"):
            return suffix in self.posix
        return self.posix.endswith(suffix)

    def in_any(self, suffixes: Sequence[str]) -> bool:
        return any(self.matches(suffix) for suffix in suffixes)


# ------------------------------------------------------------- AST helpers


def _receiver_root_attr(node: ast.expr) -> Optional[str]:
    """The ``X`` of a ``self.X[...].method`` chain, if rooted at self."""
    current = node
    while isinstance(current, ast.Subscript):
        current = current.value
    if isinstance(current, ast.Attribute) and isinstance(current.value, ast.Name):
        if current.value.id == "self":
            return current.attr
    return None


def _last_component(node: ast.expr) -> Optional[str]:
    """The final name of a dotted expression (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _mentions_attr(node: ast.expr, attr: str) -> bool:
    """Does any sub-expression read ``.<attr>`` or the name ``attr``?"""
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute) and child.attr == attr:
            return True
        if isinstance(child, ast.Name) and child.id == attr:
            return True
    return False


def _store_names(target: ast.expr) -> Iterator[ast.Name]:
    """All Name nodes bound by an assignment target."""
    if isinstance(target, ast.Name):
        yield target
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _store_names(element)
    elif isinstance(target, ast.Starred):
        yield from _store_names(target.value)


_DOTTED_NAME = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")

#: container methods that mutate their receiver in place
_MUTATOR_METHODS = frozenset(
    {
        "add",
        "append",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "update",
    }
)


class Rule:
    """Base class: one lint pass over one module."""

    id: str = ""
    severity: Severity = Severity.ERROR
    summary: str = ""

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: ModuleInfo, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=module.display,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            severity=self.severity,
            message=message,
        )


# ============================================================ hygiene rules


class BareExceptRule(Rule):
    id = "bare-except"
    severity = Severity.ERROR
    summary = "bare `except:` swallows SystemExit/KeyboardInterrupt"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare `except:`; catch a specific exception "
                    "(or `Exception` at the very least)",
                )


class MutableDefaultRule(Rule):
    id = "mutable-default"
    severity = Severity.ERROR
    summary = "mutable default argument shared across calls"

    def _is_mutable(self, default: ast.expr) -> bool:
        if isinstance(default, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(default, ast.Call):
            name = _last_component(default.func)
            return name in project.MUTABLE_DEFAULT_FACTORIES
        return False

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        module,
                        default,
                        f"mutable default argument in {node.name}(); "
                        "use None and create it inside the function",
                    )


class ShadowedBuiltinRule(Rule):
    id = "shadowed-builtin"
    severity = Severity.ERROR
    summary = "binding shadows a builtin name"

    def _flag(
        self, module: ModuleInfo, node: ast.AST, name: str, what: str
    ) -> Finding:
        return self.finding(
            module, node, f"{what} {name!r} shadows the builtin; rename it"
        )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        builtins = project.PROTECTED_BUILTINS
        # manual walk so method names (harmless class-namespace shadowing)
        # can be skipped while module-level defs are still flagged
        stack: List[Tuple[ast.AST, bool]] = [(module.tree, False)]
        while stack:
            node, in_class = stack.pop()
            for child in ast.iter_child_nodes(node):
                child_in_class = isinstance(node, ast.ClassDef)
                stack.append((child, child_in_class))
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not in_class and node.name in builtins:
                    yield self._flag(module, node, node.name, "function")
                args = node.args
                every = (
                    list(args.posonlyargs)
                    + list(args.args)
                    + list(args.kwonlyargs)
                    + ([args.vararg] if args.vararg else [])
                    + ([args.kwarg] if args.kwarg else [])
                )
                for argument in every:
                    if argument.arg in builtins:
                        yield self._flag(
                            module, argument, argument.arg, "parameter"
                        )
            elif isinstance(node, ast.ClassDef):
                if node.name in builtins:
                    yield self._flag(module, node, node.name, "class")
            elif isinstance(node, ast.Assign):
                if in_class:
                    # class attributes live in the class namespace; an
                    # ``id = "..."`` attribute does not shadow builtins
                    # for any other code
                    continue
                for target in node.targets:
                    for bound in _store_names(target):
                        if bound.id in builtins:
                            yield self._flag(module, bound, bound.id, "variable")
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for bound in _store_names(node.target):
                    if bound.id in builtins:
                        yield self._flag(module, bound, bound.id, "loop variable")
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for comp in node.generators:
                    for bound in _store_names(comp.target):
                        if bound.id in builtins:
                            yield self._flag(
                                module, bound, bound.id, "comprehension variable"
                            )
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        for bound in _store_names(item.optional_vars):
                            if bound.id in builtins:
                                yield self._flag(
                                    module, bound, bound.id, "context variable"
                                )
            elif isinstance(node, ast.ExceptHandler):
                if node.name and node.name in builtins:
                    yield self._flag(module, node, node.name, "exception variable")
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    bound_name = alias.asname or alias.name.split(".")[0]
                    if bound_name in builtins:
                        yield self._flag(module, node, bound_name, "import")


class UnusedImportRule(Rule):
    id = "unused-import"
    severity = Severity.ERROR
    summary = "imported name is never used"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        is_package_init = module.path.name == "__init__.py"
        exported: Set[str] = set()
        has_all = False
        for node in module.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == "__all__":
                        has_all = True
                        if isinstance(node.value, (ast.List, ast.Tuple)):
                            for element in node.value.elts:
                                if isinstance(element, ast.Constant) and isinstance(
                                    element.value, str
                                ):
                                    exported.add(element.value)
        if is_package_init and not has_all:
            # no __all__: every import is a potential re-export
            return
        used: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Name):
                used.add(node.id)
        # names referenced only inside string annotations
        # (``engine: "OassisEngine"``) are uses too
        for node in ast.walk(module.tree):
            annotation = None
            if isinstance(node, ast.arg):
                annotation = node.annotation
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                annotation = node.returns
            elif isinstance(node, ast.AnnAssign):
                annotation = node.annotation
            if annotation is None:
                continue
            for sub in ast.walk(annotation):
                if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                    used.update(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", sub.value))
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                aliases = node.names
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                aliases = node.names
            else:
                continue
            for alias in aliases:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name.split(".")[0]
                if bound in used or bound in exported:
                    continue
                yield self.finding(
                    module,
                    node,
                    f"{bound!r} is imported but never used",
                )


class UnreachableCodeRule(Rule):
    id = "unreachable-code"
    severity = Severity.ERROR
    summary = "statement after return/raise/break/continue"

    _TERMINAL = (ast.Return, ast.Raise, ast.Break, ast.Continue)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            for field in ("body", "orelse", "finalbody"):
                statements = getattr(node, field, None)
                if not isinstance(statements, list):
                    continue
                terminated = False
                for statement in statements:
                    if terminated:
                        yield self.finding(
                            module,
                            statement,
                            "unreachable code (dead statement after "
                            "return/raise/break/continue)",
                        )
                        break
                    if isinstance(statement, self._TERMINAL):
                        terminated = True


# ============================================================ project rules


class LockNestingRule(Rule):
    id = "lock-nesting"
    severity = Severity.ERROR
    summary = "manager and session locks held together"

    def _lock_role(self, expr: ast.expr) -> Optional[str]:
        """Classify a with-item as acquiring a manager or session lock."""
        if isinstance(expr, ast.Call):
            # e.g. `self._lock.acquire()` style is not a with-item we
            # classify; only direct lock context managers
            return None
        name = _last_component(expr)
        if name == project.MANAGER_LOCK_ATTR:
            return "manager"
        if name == project.SESSION_LOCK_ATTR:
            return "session"
        return None

    def _session_call(self, call: ast.Call) -> bool:
        """Is ``call`` a session-locked method on a session object?"""
        func = call.func
        if not isinstance(func, ast.Attribute):
            return False
        if func.attr not in project.SESSION_LOCKED_METHODS:
            return False
        receiver = func.value
        if isinstance(receiver, ast.Name):
            return receiver.id in project.SESSION_RECEIVER_NAMES
        return _mentions_attr(receiver, "_sessions")

    def _manager_call(self, call: ast.Call) -> bool:
        """Is ``call`` a manager-locked method on the manager?"""
        func = call.func
        if not isinstance(func, ast.Attribute):
            return False
        if func.attr not in project.MANAGER_LOCKED_METHODS:
            return False
        receiver = func.value
        if isinstance(receiver, ast.Name):
            return receiver.id in project.MANAGER_RECEIVER_NAMES
        return _mentions_attr(receiver, "manager")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if "repro/service/" not in module.posix and not module.in_any(
            (project.MANAGER_MODULE, project.SESSION_MODULE)
        ):
            return
        yield from self._visit(module, module.tree, held=None)

    def _visit(
        self, module: ModuleInfo, node: ast.AST, held: Optional[str]
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            inner_held = held
            if isinstance(child, (ast.With, ast.AsyncWith)):
                for item in child.items:
                    role = self._lock_role(item.context_expr)
                    if role is None:
                        continue
                    if held is not None and role != held:
                        yield self.finding(
                            module,
                            item.context_expr,
                            f"{role} lock acquired while holding the "
                            f"{held} lock; the locking contract "
                            "(docs/SERVICE.md) forbids holding both",
                        )
                    inner_held = role
            elif isinstance(child, ast.Call) and held == "manager":
                if self._session_call(child):
                    yield self.finding(
                        module,
                        child,
                        f"session method `{child.func.attr}` called while "  # type: ignore[union-attr]
                        "holding the manager lock; it takes the session "
                        "lock, so both would be held together",
                    )
            elif isinstance(child, ast.Call) and held == "session":
                if self._manager_call(child):
                    yield self.finding(
                        module,
                        child,
                        f"manager method `{child.func.attr}` called while "  # type: ignore[union-attr]
                        "holding a session lock; it takes the manager "
                        "lock, so both would be held together",
                    )
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # a nested function body runs later, outside the lock
                inner_held = None
            yield from self._visit(module, child, inner_held)


class VersionStampRule(Rule):
    id = "version-stamp"
    severity = Severity.ERROR
    summary = "mutator skips the version stamp"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for spec in project.VERSION_STAMPED_CLASSES:
            if not module.matches(spec.module_suffix):
                continue
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef) and node.name == spec.class_name:
                    yield from self._check_class(module, node, spec)

    def _check_class(
        self,
        module: ModuleInfo,
        class_node: ast.ClassDef,
        spec: "project.VersionStampedClass",
    ) -> Iterator[Finding]:
        for method in class_node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__" or method.name in spec.touch_calls:
                continue
            mutation = self._first_mutation(method, spec.guarded_attrs)
            if mutation is None:
                continue
            if self._touches_stamp(method, spec):
                continue
            node, attr = mutation
            yield self.finding(
                module,
                node,
                f"{spec.class_name}.{method.name}() mutates version-stamped "
                f"`self.{attr}` without bumping the version stamp "
                f"(assign `self.version` or call one of "
                f"{sorted(spec.touch_calls) or ['self.version += 1']})",
            )

    def _first_mutation(
        self, method: ast.AST, guarded: FrozenSet[str]
    ) -> Optional[Tuple[ast.AST, str]]:
        for node in ast.walk(method):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    root = _receiver_root_attr(target)
                    if root in guarded:
                        # plain `self.attr = ...` rebinds are mutations too
                        return (node, root)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    root = _receiver_root_attr(target)
                    if root in guarded:
                        return (node, root)
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in _MUTATOR_METHODS:
                    root = _receiver_root_attr(node.func.value)
                    if root in guarded:
                        return (node, root)
        return None

    def _touches_stamp(
        self, method: ast.AST, spec: "project.VersionStampedClass"
    ) -> bool:
        for node in ast.walk(method):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and target.attr in spec.touch_attrs
                    ):
                        return True
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                func = node.func
                if (
                    isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                    and func.attr in spec.touch_calls
                ):
                    return True
        return False


class CacheGuardRule(Rule):
    id = "cache-guard"
    severity = Severity.ERROR
    summary = "public entry point skips the stamp-guard call"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for spec in project.STAMP_GUARDED_CLASSES:
            if not module.matches(spec.module_suffix):
                continue
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef) and node.name == spec.class_name:
                    yield from self._check_class(module, node, spec)

    def _check_class(
        self,
        module: ModuleInfo,
        class_node: ast.ClassDef,
        spec: "project.StampGuardedClass",
    ) -> Iterator[Finding]:
        for method in class_node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name.startswith("_") or method.name in spec.exempt:
                continue
            if self._calls_guard(method, spec.guard_call):
                continue
            yield self.finding(
                module,
                method,
                f"{spec.class_name}.{method.name}() is a public entry point "
                f"but never calls self.{spec.guard_call}(); its stamp-keyed "
                "caches may serve stale results after a mutation",
            )

    def _calls_guard(self, method: ast.AST, guard: str) -> bool:
        for node in ast.walk(method):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == guard
            ):
                return True
        return False


class TracerNameRule(Rule):
    id = "tracer-name"
    severity = Severity.ERROR
    summary = "counter/span name missing from the registry"

    _COUNTER_FUNCS = frozenset({"count", "_obs_count"})
    _SPAN_FUNCS = frozenset({"span", "_obs_span"})
    _HIST_FUNCS = frozenset({"observe", "_obs_observe"})

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        from ..observability.names import (
            COUNTER_NAMES,
            HISTOGRAM_NAMES,
            SPAN_NAMES,
        )

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            if isinstance(func, ast.Name):
                func_name = func.id
            elif isinstance(func, ast.Attribute):
                func_name = func.attr
            else:
                continue
            if func_name in self._COUNTER_FUNCS:
                kind, registry = "counter", COUNTER_NAMES
            elif func_name in self._SPAN_FUNCS:
                kind, registry = "span", SPAN_NAMES
            elif func_name in self._HIST_FUNCS:
                kind, registry = "histogram", HISTOGRAM_NAMES
            else:
                continue
            first = node.args[0]
            if not isinstance(first, ast.Constant) or not isinstance(
                first.value, str
            ):
                continue  # dynamic names are out of static reach
            name = first.value
            if not _DOTTED_NAME.match(name):
                continue  # not a dotted instrumentation name (e.g. str.count)
            if name not in registry:
                yield self.finding(
                    module,
                    first,
                    f"{kind} name {name!r} is not registered in "
                    "repro.observability.names; register it (or fix the "
                    "drifted name)",
                )


class ShimCallerRule(Rule):
    id = "shim-caller"
    severity = Severity.ERROR
    summary = "internal caller uses a deprecation shim"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.in_any(sorted(project.SHIM_HOME_MODULES)):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name in project.SHIM_HELPER_NAMES:
                        yield self.finding(
                            module,
                            node,
                            f"importing shim helper {alias.name!r}; only "
                            "the engine facade may use the deprecation "
                            "machinery",
                        )
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node)

    def _check_call(self, module: ModuleInfo, node: ast.Call) -> Iterator[Finding]:
        func = node.func
        name = _last_component(func)
        if name in project.SHIM_HELPER_NAMES:
            yield self.finding(
                module,
                node,
                f"call to shim helper {name!r}; only the engine facade "
                "may use the deprecation machinery",
            )
            return
        if name == "OassisEngine":
            legacy = [
                kw.arg
                for kw in node.keywords
                if kw.arg in project.LEGACY_ENGINE_KWARGS
            ]
            if legacy:
                yield self.finding(
                    module,
                    node,
                    f"OassisEngine({', '.join(sorted(legacy))}=...) uses the "
                    "deprecated constructor shim; pass "
                    "config=EngineConfig(...) instead",
                )
            return
        if isinstance(func, ast.Attribute):
            limit = project.LEGACY_POSITIONAL_LIMITS.get(func.attr)
            if limit is not None and len(node.args) > limit:
                if any(isinstance(arg, ast.Starred) for arg in node.args):
                    return
                yield self.finding(
                    module,
                    node,
                    f"`{func.attr}` called with {len(node.args)} positional "
                    f"arguments (the modern signature takes {limit}); the "
                    "positional tail goes through a deprecation shim — "
                    "pass keywords instead",
                )


class SilentExceptRule(Rule):
    id = "silent-except"
    severity = Severity.ERROR
    summary = "broad except swallows the error silently"

    _BROAD = frozenset({"Exception", "BaseException"})

    def _is_broad(self, type_expr: Optional[ast.expr]) -> bool:
        if type_expr is None:
            return True  # bare except is the broadest catch of all
        elements = (
            list(type_expr.elts)
            if isinstance(type_expr, ast.Tuple)
            else [type_expr]
        )
        return any(_last_component(e) in self._BROAD for e in elements)

    def _accounts_for_error(self, handler: ast.ExceptHandler) -> bool:
        """Does the handler re-raise or log an observability counter?"""
        for statement in handler.body:
            for node in ast.walk(statement):
                if isinstance(node, ast.Raise):
                    return True
                if isinstance(node, ast.Call):
                    name = _last_component(node.func)
                    if name in project.COUNTER_CALL_NAMES:
                        return True
        return False

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_any(project.SILENT_EXCEPT_MODULE_PREFIXES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if self._accounts_for_error(node):
                continue
            yield self.finding(
                module,
                node,
                "broad except swallows the error without logging a counter "
                "or re-raising; in the serving layer a silent failure turns "
                "into a wedged session with no trace — count it "
                "(repro.observability.count) or re-raise",
            )


class UnseededRandomRule(Rule):
    id = "unseeded-random"
    severity = Severity.ERROR
    summary = "global random calls break deterministic replay"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_any(project.DETERMINISTIC_MODULE_PREFIXES):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name in project.GLOBAL_RNG_FUNCTIONS:
                        yield self.finding(
                            module,
                            node,
                            f"`from random import {alias.name}` pulls in the "
                            "global RNG; use a seeded random.Random instance",
                        )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                func = node.func
                if (
                    isinstance(func.value, ast.Name)
                    and func.value.id == "random"
                    and func.attr in project.GLOBAL_RNG_FUNCTIONS
                ):
                    yield self.finding(
                        module,
                        node,
                        f"random.{func.attr}() uses the global unseeded RNG; "
                        "deterministic modules must thread a seeded "
                        "random.Random instance",
                    )


class WallClockRule(Rule):
    id = "wall-clock"
    severity = Severity.ERROR
    summary = "wall-clock read breaks deterministic replay"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_any(project.DETERMINISTIC_MODULE_PREFIXES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Attribute
            ):
                continue
            func = node.func
            base = _last_component(func.value)
            banned = project.WALL_CLOCK_CALLS.get(base or "")
            if banned and func.attr in banned:
                yield self.finding(
                    module,
                    node,
                    f"{base}.{func.attr}() reads the wall clock; "
                    "deterministic modules must take time as a parameter "
                    "(injectable clock)",
                )


class ForkUnsafeStateRule(Rule):
    id = "fork-unsafe-state"
    severity = Severity.ERROR
    summary = "import-time lock/RNG state breaks process shards"

    def _unsafe_factory(self, value: Optional[ast.expr]) -> Optional[str]:
        """The offending factory name, if ``value`` calls one."""
        if not isinstance(value, ast.Call):
            return None
        name = _last_component(value.func)
        if name in project.FORK_UNSAFE_FACTORIES:
            return name
        return None

    def _assigned_values(
        self, statements: Sequence[ast.stmt]
    ) -> Iterator[Tuple[ast.stmt, Optional[ast.expr]]]:
        for statement in statements:
            if isinstance(statement, ast.Assign):
                yield statement, statement.value
            elif isinstance(statement, ast.AnnAssign):
                yield statement, statement.value

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_any(project.SHARD_IMPORTED_MODULE_PREFIXES):
            return
        for statement, value in self._assigned_values(module.tree.body):
            factory = self._unsafe_factory(value)
            if factory:
                yield self.finding(
                    module,
                    statement,
                    f"module-level {factory}() runs at import time in a "
                    "shard-imported module: a fork child inherits it in the "
                    "parent's state, a spawn child silently gets a fresh "
                    "one, and objects carrying it stop pickling — create "
                    "it in a factory called after the worker process starts",
                )
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if methods & project.FORK_STATE_EXEMPTING_METHODS:
                continue  # the class owns its process-boundary story
            for statement, value in self._assigned_values(node.body):
                factory = self._unsafe_factory(value)
                if factory:
                    yield self.finding(
                        module,
                        statement,
                        f"class-level {factory}() is created at import time "
                        "and shared by every instance; in a shard-imported "
                        "module either move it into __init__ (per-instance, "
                        "post-spawn) or define __getstate__ so the class "
                        "owns what crosses the process boundary",
                    )


class AsyncBlockingRule(Rule):
    id = "async-blocking-io"
    severity = Severity.ERROR
    summary = "blocking call inside async def stalls the event loop"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_any(project.ASYNC_MODULE_PREFIXES):
            return
        reported: Set[int] = set()
        for outer in ast.walk(module.tree):
            if not isinstance(outer, ast.AsyncFunctionDef):
                continue
            for node in ast.walk(outer):
                if not isinstance(node, ast.Call) or id(node) in reported:
                    continue
                func = node.func
                if isinstance(func, ast.Name):
                    if func.id not in project.BLOCKING_BUILTINS_IN_ASYNC:
                        continue
                    reported.add(id(node))
                    yield self.finding(
                        module,
                        node,
                        f"{func.id}() blocks the event loop inside an async "
                        "def; every connected client stalls behind it — use "
                        "the asyncio equivalent or run_in_executor",
                    )
                elif isinstance(func, ast.Attribute):
                    base = _last_component(func.value)
                    banned = project.BLOCKING_CALLS_IN_ASYNC.get(base or "")
                    if not banned or func.attr not in banned:
                        continue
                    reported.add(id(node))
                    yield self.finding(
                        module,
                        node,
                        f"{base}.{func.attr}() blocks the event loop inside "
                        "an async def; every connected client stalls behind "
                        "it — use the asyncio equivalent (e.g. "
                        "asyncio.sleep, loop.run_in_executor)",
                    )


# -------------------------------------------------------------- the registry

ALL_RULES: Tuple[Rule, ...] = (
    BareExceptRule(),
    MutableDefaultRule(),
    ShadowedBuiltinRule(),
    UnusedImportRule(),
    UnreachableCodeRule(),
    LockNestingRule(),
    VersionStampRule(),
    CacheGuardRule(),
    TracerNameRule(),
    ShimCallerRule(),
    SilentExceptRule(),
    UnseededRandomRule(),
    WallClockRule(),
    ForkUnsafeStateRule(),
    AsyncBlockingRule(),
)

RULES_BY_ID: Dict[str, Rule] = {rule.id: rule for rule in ALL_RULES}
