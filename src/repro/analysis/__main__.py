"""``python -m repro.analysis`` — run the project linter."""

from __future__ import annotations

import sys

from .lint import main

if __name__ == "__main__":
    sys.exit(main())
