"""Fixpoint effect inference over the project call graph.

Every function in the :class:`~repro.analysis.callgraph.CallGraph` gets
a *direct* effect set (what its own body does) and a *visible* effect
set (direct plus everything reachable through resolved call edges),
computed as a worklist fixpoint so recursion and cycles converge.

Effects tracked:

``blocking-io``
    A call that stalls the calling thread on the outside world: the
    blocking-call table from :mod:`repro.analysis.project`
    (``time.sleep``, ``socket.*``, ``subprocess.*``, ``requests.*``)
    plus the ``open``/``input`` builtins.
``wall-clock``
    A non-deterministic clock read (``time.time``, ``datetime.now``,
    ... — ``perf_counter``/``monotonic`` are fine, replay never
    compares them).
``unseeded-random``
    A call into the shared global RNG (``random.random`` and friends);
    seeded ``random.Random`` instances don't count.
``lock-acquire[ROLE]``
    Entering a lock created by ``named_lock(ROLE)`` /
    ``named_rlock(ROLE)`` (the :mod:`repro.analysis.lockcheck` role
    factories) via ``with`` or ``.acquire()``.
``spawn``
    Creating a thread/process (``Thread(...)``, ``Process(...)``,
    executors, ``os.fork``).
``fsync``
    ``os.fsync`` — a durability barrier worth seeing across call
    chains because it is orders of magnitude slower than a write.

Functions can declare **audited exceptions** with a comment on (or
immediately above) their ``def`` line::

    def flush_wal(self) -> None:  # repro-effects: allow=fsync,blocking-io

An allowed effect is masked from the function's *visible* set: callers
no longer inherit it, so the deep rules stop reporting chains through
that function.  The function's own direct effects are still recorded
(``repro lint --explain`` shows both).  Unknown effect names in an
``allow=`` list are collected in :attr:`EffectAnalysis.annotation_errors`
and surfaced as findings by :mod:`repro.analysis.deep`.

Lock *acquisition sites* (which ``with`` block in which function covers
which source lines) are preserved so the static lock-order pass in
:mod:`repro.analysis.deep` can ask "which roles does this function
acquire while already holding role A?".
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from . import project
from .callgraph import CallGraph, FunctionInfo

EFFECT_BLOCKING_IO = "blocking-io"
EFFECT_WALL_CLOCK = "wall-clock"
EFFECT_UNSEEDED_RANDOM = "unseeded-random"
EFFECT_SPAWN = "spawn"
EFFECT_FSYNC = "fsync"

#: plain (non-parameterised) effect names accepted by ``allow=``
PLAIN_EFFECTS: FrozenSet[str] = frozenset(
    {
        EFFECT_BLOCKING_IO,
        EFFECT_WALL_CLOCK,
        EFFECT_UNSEEDED_RANDOM,
        EFFECT_SPAWN,
        EFFECT_FSYNC,
    }
)

_LOCK_EFFECT = re.compile(r"^lock-acquire\[([A-Za-z0-9_.\-]+)\]$")

_ALLOW_COMMENT = re.compile(
    r"#\s*repro-effects:\s*allow=([A-Za-z0-9_.\-\[\],]+)"
)


def lock_effect(role: str) -> str:
    """The effect name for acquiring the lock role ``role``."""
    return f"lock-acquire[{role}]"


def lock_role_of(effect: str) -> Optional[str]:
    """``lock-acquire[x]`` -> ``x`` (None for non-lock effects)."""
    match = _LOCK_EFFECT.match(effect)
    return match.group(1) if match else None


@dataclass(frozen=True)
class EffectSite:
    """Where a direct effect enters a function body."""

    qualname: str
    effect: str
    lineno: int
    detail: str


@dataclass(frozen=True)
class Acquisition:
    """One static lock acquisition: a ``with`` block (or ``.acquire()``)."""

    qualname: str
    role: str
    lineno: int
    #: source range of the block body during which the lock is held;
    #: for bare ``.acquire()`` calls the range extends to function end
    body_start: int
    body_end: int


@dataclass(frozen=True)
class AnnotationError:
    """A malformed ``# repro-effects: allow=`` annotation."""

    path: str
    lineno: int
    token: str


@dataclass
class EffectAnalysis:
    """The result bundle: graph + direct/visible effects + lock sites."""

    graph: CallGraph
    direct: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    visible: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    allows: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    sites: Dict[Tuple[str, str], EffectSite] = field(default_factory=dict)
    acquisitions: Dict[str, List[Acquisition]] = field(default_factory=dict)
    #: lock attribute bindings: (class qualname, attr) -> role
    class_lock_roles: Dict[Tuple[str, str], str] = field(default_factory=dict)
    #: attr name -> all roles bound to that attribute anywhere
    attr_lock_roles: Dict[str, Set[str]] = field(default_factory=dict)
    #: roles created via ``named_rlock`` — same-role re-entry is legal
    reentrant_roles: Set[str] = field(default_factory=set)
    annotation_errors: List[AnnotationError] = field(default_factory=list)

    def effects_of(self, qualname: str) -> FrozenSet[str]:
        return self.visible.get(qualname, frozenset())

    def direct_of(self, qualname: str) -> FrozenSet[str]:
        return self.direct.get(qualname, frozenset())

    def site_of(self, qualname: str, effect: str) -> Optional[EffectSite]:
        return self.sites.get((qualname, effect))

    def witness_chain(
        self, start: str, effect: str
    ) -> Optional[List["ChainLink"]]:
        """Shortest ``start -> ... -> f`` where ``f`` *directly* causes
        ``effect`` and no hop masks it with an ``allow=`` annotation."""

        def carries(qualname: str) -> bool:
            return effect in self.visible.get(qualname, frozenset())

        def terminal(qualname: str) -> bool:
            return (
                effect in self.direct.get(qualname, frozenset())
                and effect not in self.allows.get(qualname, frozenset())
            )

        chain = self.graph.shortest_chain(start, terminal, follow=carries)
        if chain is None:
            return None
        links = [
            ChainLink(step.qualname, step.lineno) for step in chain
        ]
        site = self.site_of(links[-1].qualname, effect)
        if site is not None:
            links[-1] = ChainLink(
                links[-1].qualname,
                links[-1].call_lineno,
                site.detail,
                site.lineno,
            )
        return links

    def render_chain(self, links: List["ChainLink"]) -> str:
        """``a.f -> b.g:120 -> c.h:44 [time.sleep@51]`` (short modules)."""
        parts: List[str] = []
        for index, link in enumerate(links):
            name = _short(link.qualname)
            if index > 0 and link.call_lineno:
                name = f"{name}:{link.call_lineno}"
            parts.append(name)
        rendered = " -> ".join(parts)
        last = links[-1]
        if last.detail:
            rendered += f" [{last.detail}@{last.site_lineno}]"
        return rendered


@dataclass(frozen=True)
class ChainLink:
    """One hop of a rendered witness chain."""

    qualname: str
    call_lineno: int
    detail: str = ""
    site_lineno: int = 0


def _short(qualname: str) -> str:
    """Drop the shared package prefix for readable chains."""
    return qualname[6:] if qualname.startswith("repro.") else qualname


class _DirectEffectCollector:
    """Extracts direct effects + lock acquisitions for every function."""

    def __init__(self, analysis: EffectAnalysis) -> None:
        self.analysis = analysis
        self.graph = analysis.graph

    # -------------------------------------------------- lock role discovery

    def collect_lock_roles(self) -> None:
        for qualname, node in self.graph.function_asts.items():
            info = self.graph.functions.get(qualname)
            if info is None:
                continue
            for statement in ast.walk(node):
                if not isinstance(statement, ast.Assign):
                    continue
                bound = self._named_lock_role(statement.value)
                if bound is None:
                    continue
                role, reentrant = bound
                if reentrant:
                    self.analysis.reentrant_roles.add(role)
                for target in statement.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and info.class_name is not None
                    ):
                        key = (info.class_name, target.attr)
                        self.analysis.class_lock_roles.setdefault(key, role)
                        self.analysis.attr_lock_roles.setdefault(
                            target.attr, set()
                        ).add(role)
                    elif isinstance(target, ast.Name):
                        self.analysis.attr_lock_roles.setdefault(
                            target.id, set()
                        ).add(role)

    @staticmethod
    def _named_lock_role(value: ast.expr) -> Optional[Tuple[str, bool]]:
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        if name not in ("named_lock", "named_rlock"):
            return None
        if value.args and isinstance(value.args[0], ast.Constant):
            role = value.args[0].value
            if isinstance(role, str):
                return role, name == "named_rlock"
        return None

    # ----------------------------------------------------- per-function walk

    def collect(self) -> None:
        self.collect_lock_roles()
        for qualname, node in self.graph.function_asts.items():
            info = self.graph.functions.get(qualname)
            if info is None:
                continue
            self._collect_function(info, node)
            self._collect_allows(info, node)

    def _collect_function(self, info: FunctionInfo, node: ast.AST) -> None:
        effects: Set[str] = set()
        body = getattr(node, "body", [])
        for statement in body:
            self._walk(info, statement, effects)
        if effects:
            self.analysis.direct[info.qualname] = frozenset(effects)

    def _walk(self, info: FunctionInfo, node: ast.AST, effects: Set[str]) -> None:
        # nested defs are their own graph nodes
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                role = self._lock_role_of_expr(info, item.context_expr)
                if role is not None:
                    self._record_acquisition(info, node, role, effects)
                self._walk(info, item.context_expr, effects)
            for child in node.body:
                self._walk(info, child, effects)
            return
        if isinstance(node, ast.Call):
            self._classify_call(info, node, effects)
        for child in ast.iter_child_nodes(node):
            self._walk(info, child, effects)

    def _record_acquisition(
        self,
        info: FunctionInfo,
        with_node: "ast.With | ast.AsyncWith",
        role: str,
        effects: Set[str],
    ) -> None:
        effect = lock_effect(role)
        effects.add(effect)
        lineno = with_node.lineno
        self.analysis.sites.setdefault(
            (info.qualname, effect),
            EffectSite(info.qualname, effect, lineno, f"with <{role}>"),
        )
        body_end = getattr(with_node, "end_lineno", info.end_lineno)
        self.analysis.acquisitions.setdefault(info.qualname, []).append(
            Acquisition(info.qualname, role, lineno, lineno, body_end)
        )

    def _lock_role_of_expr(
        self, info: FunctionInfo, expr: ast.expr
    ) -> Optional[str]:
        """``self._lock`` / ``session.lock`` -> a role, when resolvable."""
        if not isinstance(expr, ast.Attribute):
            return None
        attr = expr.attr
        receiver = expr.value
        if isinstance(receiver, ast.Name) and receiver.id == "self":
            if info.class_name is not None:
                role = self._class_attr_role(info.class_name, attr)
                if role is not None:
                    return role
        roles = self.analysis.attr_lock_roles.get(attr)
        if roles is not None and len(roles) == 1:
            return next(iter(roles))
        return None

    def _class_attr_role(self, class_qualname: str, attr: str) -> Optional[str]:
        seen: Set[str] = set()
        frontier = [class_qualname]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            role = self.analysis.class_lock_roles.get((current, attr))
            if role is not None:
                return role
            klass = self.graph.classes.get(current)
            if klass is not None:
                for base in klass.bases:
                    resolved_base = f"{klass.module}.{base}"
                    if resolved_base in self.graph.classes:
                        frontier.append(resolved_base)
        return None

    def _classify_call(
        self, info: FunctionInfo, call: ast.Call, effects: Set[str]
    ) -> None:
        func = call.func
        module_info = self.graph.modules.get(info.module)
        imports = module_info.imports if module_info is not None else {}
        name: Optional[str] = None
        dotted_parts: List[str] = []
        if isinstance(func, ast.Name):
            name = func.id
            bound = imports.get(name)
            if bound is not None and bound[0] == "symbol":
                dotted_parts = bound[1].split(".")
            else:
                dotted_parts = [name]
        elif isinstance(func, ast.Attribute):
            node: ast.expr = func
            while isinstance(node, ast.Attribute):
                dotted_parts.append(node.attr)
                node = node.value
            if isinstance(node, ast.Name):
                dotted_parts.append(node.id)
                dotted_parts.reverse()
                name = dotted_parts[-1]
            else:
                dotted_parts = []
                name = func.attr
        if name is None:
            return
        if len(dotted_parts) >= 2:
            # normalise module aliases: ``import time as t`` -> t.sleep
            bound = imports.get(dotted_parts[0])
            if bound is not None and bound[0] == "module":
                dotted_parts = bound[1].split(".") + dotted_parts[1:]
        detail = ".".join(dotted_parts) if dotted_parts else name

        def record(effect: str) -> None:
            effects.add(effect)
            self.analysis.sites.setdefault(
                (info.qualname, effect),
                EffectSite(info.qualname, effect, call.lineno, detail),
            )

        # blocking builtins (open/input) — bare names only
        if isinstance(func, ast.Name) and name in project.BLOCKING_BUILTINS_IN_ASYNC:
            if name not in imports:
                record(EFFECT_BLOCKING_IO)
            return
        if len(dotted_parts) >= 2:
            head, last = dotted_parts[-2], dotted_parts[-1]
            blocked = project.BLOCKING_CALLS_IN_ASYNC.get(head)
            if blocked is not None and last in blocked:
                record(EFFECT_BLOCKING_IO)
            clocks = project.WALL_CLOCK_CALLS.get(head)
            if clocks is not None and last in clocks:
                record(EFFECT_WALL_CLOCK)
            if head == "random" and last in project.GLOBAL_RNG_FUNCTIONS:
                record(EFFECT_UNSEEDED_RANDOM)
            if head == "os" and last == "fsync":
                record(EFFECT_FSYNC)
            if last == "acquire":
                role = self._lock_role_of_expr(
                    info,
                    func.value if isinstance(func, ast.Attribute) else func,
                )
                if role is not None:
                    effect = lock_effect(role)
                    effects.add(effect)
                    self.analysis.sites.setdefault(
                        (info.qualname, effect),
                        EffectSite(
                            info.qualname, effect, call.lineno, detail
                        ),
                    )
                    self.analysis.acquisitions.setdefault(
                        info.qualname, []
                    ).append(
                        Acquisition(
                            info.qualname,
                            role,
                            call.lineno,
                            call.lineno,
                            info.end_lineno,
                        )
                    )
        if name in project.SPAWN_FACTORIES:
            record(EFFECT_SPAWN)

    # --------------------------------------------------------- allow parsing

    def _collect_allows(self, info: FunctionInfo, node: ast.AST) -> None:
        module_info = self.graph.modules.get(info.module)
        if module_info is None:
            return
        lines = module_info.source.splitlines()
        first_body = getattr(node, "body", None)
        body_lineno = (
            first_body[0].lineno if first_body else info.lineno + 1
        )
        candidates = range(max(info.lineno - 1, 1), body_lineno)
        allowed: Set[str] = set()
        for lineno in candidates:
            if lineno - 1 >= len(lines):
                continue
            match = _ALLOW_COMMENT.search(lines[lineno - 1])
            if match is None:
                continue
            for token in match.group(1).split(","):
                token = token.strip()
                if not token:
                    continue
                if token in PLAIN_EFFECTS or _LOCK_EFFECT.match(token):
                    allowed.add(token)
                else:
                    self.analysis.annotation_errors.append(
                        AnnotationError(info.path, lineno, token)
                    )
        if allowed:
            self.analysis.allows[info.qualname] = frozenset(allowed)


def _propagate(analysis: EffectAnalysis) -> None:
    """Worklist fixpoint: visible = (direct ∪ callees' visible) − allows."""
    graph = analysis.graph
    visible: Dict[str, Set[str]] = {}
    for qualname in graph.functions:
        base = set(analysis.direct.get(qualname, frozenset()))
        base -= analysis.allows.get(qualname, frozenset())
        visible[qualname] = base
    worklist = list(graph.functions)
    queued = set(worklist)
    while worklist:
        qualname = worklist.pop()
        queued.discard(qualname)
        combined = set(analysis.direct.get(qualname, frozenset()))
        for edge in graph.callees_of(qualname):
            combined |= visible.get(edge.callee, set())
        combined -= analysis.allows.get(qualname, frozenset())
        if combined != visible.get(qualname, set()):
            visible[qualname] = combined
            for edge in graph.callers_of(qualname):
                if edge.caller not in queued:
                    queued.add(edge.caller)
                    worklist.append(edge.caller)
    analysis.visible = {
        qualname: frozenset(effects) for qualname, effects in visible.items()
    }


def infer_effects(graph: CallGraph) -> EffectAnalysis:
    """Run direct extraction + the propagation fixpoint over ``graph``."""
    analysis = EffectAnalysis(graph=graph)
    _DirectEffectCollector(analysis).collect()
    _propagate(analysis)
    return analysis
