"""Finding and Severity: what a lint rule reports.

A :class:`Finding` pins one rule violation to a ``file:line:col``
location.  Findings are plain data — rendering, suppression filtering
and exit-code policy live in :mod:`repro.analysis.lint`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict


class Severity(enum.Enum):
    """How bad a finding is; only errors fail the lint run."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    severity: Severity
    message: str

    def render(self) -> str:
        """The classic compiler-style one-liner."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity} [{self.rule}] {self.message}"
        )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (``--json`` output)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
        }
