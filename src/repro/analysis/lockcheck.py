"""Runtime lock-order checking: instrumented locks + acquisition graph.

The static ``lock-nesting`` rule catches *syntactic* violations of the
service locking contract; this module verifies the claim dynamically.
Lock-owning classes (:class:`~repro.service.manager.SessionManager`,
:class:`~repro.service.session.QuerySession`,
:class:`~repro.crowd.cache.CrowdCache`) create their locks through
:func:`named_lock` / :func:`named_rlock` with a *role* name.  With no
checker installed those factories return plain :mod:`threading` locks —
zero overhead in production.  Under tests, :func:`install` (or the
:func:`checking` context manager) swaps in tracked wrappers that record
the per-thread acquisition graph:

* whenever a thread acquires lock *B* while holding lock *A*, the edge
  ``A.role -> B.role`` is recorded;
* an edge that closes a cycle in the role graph (including the length-1
  cycle of two *different* instances of the same role) raises
  :class:`LockOrderError` **before blocking**, so a potential deadlock
  is reported instead of hung;
* reentrant re-acquisition of the *same* instance (RLocks) is not an
  edge;
* roles listed in ``forbid_together`` may never be co-held in either
  order — the stronger "never held together" contract of
  ``docs/SERVICE.md`` — and raise immediately on any nesting.

The service test suite runs with a checker installed (see
``tests/test_service.py``), so "deadlock-free by construction" is
machine-checked on every run, not just asserted in a docstring.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)


class LockOrderError(RuntimeError):
    """A lock acquisition violated the recorded ordering contract."""


class _TrackedLockBase:
    """Wraps a real lock; reports acquisitions/releases to the checker."""

    _reentrant = False

    def __init__(self, role: str, checker: "LockOrderChecker") -> None:
        self.role = role
        self._checker = checker
        self._real = (
            threading.RLock() if self._reentrant else threading.Lock()
        )

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._checker.before_acquire(self)
        acquired = self._real.acquire(blocking, timeout)
        if acquired:
            self._checker.on_acquired(self)
        return acquired

    def release(self) -> None:
        self._real.release()
        self._checker.on_released(self)

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.role!r}, id=0x{id(self):x})"


class TrackedLock(_TrackedLockBase):
    """An instrumented non-reentrant lock."""

    _reentrant = False


class TrackedRLock(_TrackedLockBase):
    """An instrumented reentrant lock."""

    _reentrant = True


def _normalize_pair(pair: Tuple[str, str]) -> FrozenSet[str]:
    return frozenset(pair)


class LockOrderChecker:
    """Records the cross-thread lock acquisition graph; fails on cycles.

    ``forbid_together`` lists role pairs that may never be co-held at
    all, regardless of order.  The graph, observed edges and violation
    count stay readable after :func:`uninstall` for test assertions.
    """

    def __init__(
        self,
        forbid_together: Iterable[Tuple[str, str]] = (),
    ) -> None:
        self._mutex = threading.Lock()
        self._held = threading.local()
        #: role -> set of roles acquired while this role was held
        self.edges: Dict[str, Set[str]] = {}
        #: (held_role, acquired_role) pairs actually observed, for tests
        self.observed: Set[Tuple[str, str]] = set()
        self.violations: List[str] = []
        self._forbidden = {_normalize_pair(p) for p in forbid_together}

    # ----------------------------------------------------------- held stack

    def _stack(self) -> List[_TrackedLockBase]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = self._held.stack = []
        return stack

    def held_roles(self) -> List[str]:
        """Roles currently held by the calling thread, outermost first."""
        return [lock.role for lock in self._stack()]

    # -------------------------------------------------------------- events

    def before_acquire(self, lock: _TrackedLockBase) -> None:
        stack = self._stack()
        if any(held is lock for held in stack):
            if lock._reentrant:
                return  # reentrant re-acquisition: not an ordering event
            self._fail(
                f"non-reentrant lock {lock!r} re-acquired by the same "
                f"thread {threading.current_thread().name!r} (self-deadlock)"
            )
        for held in stack:
            pair = frozenset({held.role, lock.role})
            if pair in self._forbidden:
                self._fail(
                    f"{lock.role!r} acquired while holding {held.role!r} in "
                    f"thread {threading.current_thread().name!r}; these "
                    "locks must never be held together "
                    "(docs/SERVICE.md locking contract)"
                )
            self._record_edge(held, lock)

    def on_acquired(self, lock: _TrackedLockBase) -> None:
        self._stack().append(lock)

    def on_released(self, lock: _TrackedLockBase) -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is lock:
                del stack[index]
                return

    # --------------------------------------------------------------- graph

    def _record_edge(self, held: _TrackedLockBase, nxt: _TrackedLockBase) -> None:
        if held.role == nxt.role:
            # two different instances of the same role have no defined
            # order between them: a length-1 cycle
            self._fail(
                f"{nxt!r} acquired while holding {held!r} — two instances "
                f"of role {nxt.role!r} nested with no defined order "
                f"(thread {threading.current_thread().name!r})"
            )
        with self._mutex:
            self.observed.add((held.role, nxt.role))
            targets = self.edges.setdefault(held.role, set())
            if nxt.role in targets:
                return
            cycle = self._path(nxt.role, held.role)
            targets.add(nxt.role)
        if cycle is not None:
            self._fail(
                f"acquiring {nxt.role!r} while holding {held.role!r} closes "
                f"the lock-order cycle {' -> '.join(cycle + [nxt.role])} "
                f"(thread {threading.current_thread().name!r}); this "
                "ordering can deadlock"
            )

    def _path(self, src: str, dst: str) -> Optional[List[str]]:
        """A path ``src -> ... -> dst`` in the edge graph, if one exists.

        Caller holds ``_mutex``.
        """
        parents: Dict[str, Optional[str]] = {src: None}
        frontier = [src]
        while frontier:
            node = frontier.pop()
            if node == dst:
                path = [node]
                while parents[path[-1]] is not None:
                    path.append(parents[path[-1]])  # type: ignore[arg-type]
                path.reverse()
                return path
            for nxt in self.edges.get(node, ()):
                if nxt not in parents:
                    parents[nxt] = node
                    frontier.append(nxt)
        return None

    def _fail(self, message: str) -> None:
        with self._mutex:
            self.violations.append(message)
        raise LockOrderError(message)

    def edge_list(self) -> List[Tuple[str, str]]:
        """The observed (held, acquired) role pairs, sorted."""
        with self._mutex:
            return sorted(self.observed)


# ------------------------------------------------------- the global factory

_installed: Optional[LockOrderChecker] = None
_install_mutex = threading.Lock()


def install(checker: Optional[LockOrderChecker] = None) -> LockOrderChecker:
    """Route :func:`named_lock`/:func:`named_rlock` through ``checker``.

    Installation is global (not per-thread): locks are created in
    constructors and shared across worker threads, so one checker must
    see them all.  Returns the installed checker.
    """
    global _installed
    if checker is None:
        checker = LockOrderChecker()
    with _install_mutex:
        if _installed is not None:
            raise RuntimeError("a LockOrderChecker is already installed")
        _installed = checker
    return checker


def uninstall() -> Optional[LockOrderChecker]:
    """Remove the installed checker; returns it (graph stays readable).

    Already-created tracked locks keep reporting to the checker they
    were born with — only *new* locks revert to plain threading locks.
    """
    global _installed
    with _install_mutex:
        checker = _installed
        _installed = None
    return checker


def current_checker() -> Optional[LockOrderChecker]:
    """The installed checker, or None."""
    return _installed


@contextmanager
def checking(
    forbid_together: Iterable[Tuple[str, str]] = (),
) -> Iterator[LockOrderChecker]:
    """Scope-local installation::

        with lockcheck.checking() as checker:
            run_scenario()
        assert ("service.manager", "service.session") not in checker.observed
    """
    checker = install(LockOrderChecker(forbid_together=forbid_together))
    try:
        yield checker
    finally:
        uninstall()


def named_lock(role: str) -> Any:
    """A mutex for ``role``: plain, or tracked when a checker is installed.

    Typed ``Any`` because :class:`threading.Lock`/:class:`TrackedLock`
    share no nominal base; both satisfy the with-statement protocol.
    """
    checker = _installed
    if checker is None:
        return threading.Lock()
    return TrackedLock(role, checker)


def named_rlock(role: str) -> Any:
    """A reentrant lock for ``role``; tracked when a checker is installed."""
    checker = _installed
    if checker is None:
        return threading.RLock()
    return TrackedRLock(role, checker)
