"""Fluent construction of vocabularies and taxonomies.

:class:`VocabularyBuilder` offers a compact way to declare element and
relation taxonomies, used heavily by the domain datasets and the tests::

    vocab = (VocabularyBuilder()
             .element_tree("Thing", {
                 "Activity": {"Sport": {"Biking": {}, "Ball Game": {"Basketball": {}}}},
                 "Place": {"City": {"NYC": {}}},
             })
             .relation("doAt")
             .relation_chain("nearBy", "inside")
             .build())
"""

from __future__ import annotations

from typing import Mapping, Optional

from .vocabulary import Vocabulary

#: Nested-dict taxonomy spec: name -> spec of children (empty dict = leaf).
TreeSpec = Mapping[str, "TreeSpec"]


class VocabularyBuilder:
    """Incrementally assemble a :class:`~repro.vocabulary.Vocabulary`."""

    def __init__(self, vocabulary: Optional[Vocabulary] = None):
        self._vocab = vocabulary if vocabulary is not None else Vocabulary()

    def element(self, name: str, parent: Optional[str] = None) -> "VocabularyBuilder":
        """Declare an element, optionally under ``parent``."""
        self._vocab.add_element(name)
        if parent is not None:
            self._vocab.specialize_element(parent, name)
        return self

    def relation(self, name: str, parent: Optional[str] = None) -> "VocabularyBuilder":
        """Declare a relation, optionally under ``parent``."""
        self._vocab.add_relation(name)
        if parent is not None:
            self._vocab.specialize_relation(parent, name)
        return self

    def element_tree(self, root: str, spec: TreeSpec) -> "VocabularyBuilder":
        """Declare a whole element taxonomy from a nested mapping."""
        self._vocab.add_element(root)
        self._add_tree(root, spec)
        return self

    def _add_tree(self, parent: str, spec: TreeSpec) -> None:
        for name, children in spec.items():
            self._vocab.specialize_element(parent, name)
            if children:
                self._add_tree(name, children)

    def element_chain(self, *names: str) -> "VocabularyBuilder":
        """Declare ``names[0] ≤ names[1] ≤ ...`` as a chain of elements."""
        for general, specific in zip(names, names[1:]):
            self._vocab.specialize_element(general, specific)
        if len(names) == 1:
            self._vocab.add_element(names[0])
        return self

    def relation_chain(self, *names: str) -> "VocabularyBuilder":
        """Declare ``names[0] ≤ names[1] ≤ ...`` as a chain of relations."""
        for general, specific in zip(names, names[1:]):
            self._vocab.specialize_relation(general, specific)
        if len(names) == 1:
            self._vocab.add_relation(names[0])
        return self

    def build(self) -> Vocabulary:
        """The assembled vocabulary (further builder calls keep extending it)."""
        return self._vocab
