"""Partial orders over terms (the ``≤E`` and ``≤R`` of Definition 2.1).

The paper orders terms by *reversed subsumption*: ``a ≤ b`` means that *b is
more specific than a* (``Sport ≤ Biking`` because biking is a sport).  We
represent such an order as a DAG whose edges point from a term to its
*immediate specializations* (children).  Reachability gives the full order.

The structure supports the operations the mining algorithms need:

* ``leq(a, b)`` — is ``a ≤ b``?  (a single bit test on compiled closures)
* ``children(a)`` / ``parents(a)`` — immediate specializations /
  generalizations, the ``⋖`` steps of the assignment lattice;
* ``descendants`` / ``ancestors`` — reflexive-transitive closures, used by
  ``subClassOf*`` path evaluation and by up-set/down-set classification;
* ``roots()`` / ``leaves()`` — extremes of the order;
* ``depth(a)`` — longest chain from a root, used by synthetic-DAG shaping.

Closures are *bitset-compiled*: every term is interned to a dense integer
id on registration, and on first query after a mutation the full
reflexive-transitive closure is computed in one topological sweep as a
list of Python-int bitsets (``descendants_bits(t)`` has bit ``i`` set iff
``t ≤ term_of_id(i)``).  ``leq`` is then one shift-and-mask, and set
algebra over closures (the ``∩`` of witness search, the ``∪`` of up-set
accumulation) becomes bitwise AND/OR on machine words.  The historical
frozenset API (``descendants``/``ancestors``) is preserved as thin views
materialized lazily from the bitsets and memoized until the next edit.

Compilation is version-stamped: every structural change bumps
:attr:`PartialOrder.version`, and compiled state is rebuilt on the next
query when its stamp no longer matches (see ``docs/PERFORMANCE.md`` for
the invalidation contract).  The pre-compilation DFS implementations are
retained as ``*_reference`` methods; the randomized equivalence suite
(``tests/test_bitset_equivalence.py``) asserts both paths agree.

Cycles are rejected on insertion (a partial order must be acyclic).
"""

from __future__ import annotations

import hashlib
import struct
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..observability import count as _obs_count
from .terms import Term

#: header of a packed-closure blob: (term count, row stride in bytes)
_CLOSURE_HEADER = struct.Struct("!II")
#: length of the structural signature embedded after the header
_CLOSURE_SIG_LEN = 20


class CycleError(ValueError):
    """Raised when an edge insertion would create a cycle in the order."""


class PartialOrder:
    """A partial order over :class:`~repro.vocabulary.terms.Term` objects.

    Stored as an explicit Hasse-like DAG.  Edges need not form a transitive
    reduction — redundant edges are tolerated and ignored by reachability —
    but :meth:`children` only reports direct edges, so builders should add
    immediate-specialization edges only.
    """

    def __init__(self) -> None:
        self._children: Dict[Term, Set[Term]] = {}
        self._parents: Dict[Term, Set[Term]] = {}
        # interning: term <-> dense id.  Ids are assigned on registration
        # and never reused or invalidated (terms cannot be removed), so
        # bitset layouts stay aligned across recompilations.
        self._ids: Dict[Term, int] = {}
        self._terms_by_id: List[Term] = []
        # compiled closures: id -> reflexive-transitive bitset, rebuilt
        # lazily when the version stamp moves
        self._desc_bits: List[int] = []
        self._anc_bits: List[int] = []
        self._desc_compiled_at = -1
        self._anc_compiled_at = -1
        # lazily-materialized frozenset views over the compiled bitsets
        self._desc_view: Dict[Term, FrozenSet[Term]] = {}
        self._anc_view: Dict[Term, FrozenSet[Term]] = {}
        self._depth_cache: Dict[Term, int] = {}
        self._chain_pos: Dict[Term, Tuple[int, int]] = {}
        self._chain_compiled_at = -1
        self._closure_stats: Tuple[int, int, float] = (0, 0, 0.0)
        self._closure_stats_at = -1
        self._sorted_children: Dict[Term, Tuple[Term, ...]] = {}
        self._sorted_parents: Dict[Term, Tuple[Term, ...]] = {}
        self._edge_count = 0
        #: bumped on every structural change; cheap cache-invalidation stamp
        self.version = 0

    @property
    def edge_count(self) -> int:
        """Number of immediate edges (used for cache invalidation stamps)."""
        return self._edge_count

    # ------------------------------------------------------------------ edit

    def add_term(self, term: Term) -> None:
        """Register ``term`` as a member of the order (idempotent)."""
        if term not in self._children:
            self._children[term] = set()
            self._parents[term] = set()
            self._ids[term] = len(self._terms_by_id)
            self._terms_by_id.append(term)
            self._invalidate()

    def add_edge(self, general: Term, specific: Term) -> None:
        """Record ``general ≤ specific`` as an immediate edge.

        Raises :class:`CycleError` if the edge would make the relation
        cyclic (including self-loops).
        """
        if general == specific:
            raise CycleError(f"self-loop on {general!r}")
        self.add_term(general)
        self.add_term(specific)
        if self._reaches(specific, general):
            raise CycleError(f"edge {general!r} -> {specific!r} would create a cycle")
        self._children[general].add(specific)
        self._parents[specific].add(general)
        self._edge_count += 1
        self._invalidate()

    def _invalidate(self) -> None:
        self.version += 1
        self._desc_view.clear()
        self._anc_view.clear()
        self._depth_cache.clear()
        self._sorted_children.clear()
        self._sorted_parents.clear()

    # ----------------------------------------------------------- compilation

    def _topological_ids(self) -> List[int]:
        """All term ids in a parents-before-children order (Kahn)."""
        indegree = {
            term: len(parents) for term, parents in self._parents.items()
        }
        queue: List[Term] = [t for t, d in indegree.items() if d == 0]
        order: List[int] = []
        head = 0
        while head < len(queue):
            term = queue[head]
            head += 1
            order.append(self._ids[term])
            for child in self._children[term]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    queue.append(child)
        return order

    def _ensure_desc_compiled(self) -> None:
        if self._desc_compiled_at == self.version:
            return
        ids = self._ids
        bits = [0] * len(self._terms_by_id)
        for tid in reversed(self._topological_ids()):
            acc = 1 << tid
            for child in self._children[self._terms_by_id[tid]]:
                acc |= bits[ids[child]]
            bits[tid] = acc
        self._desc_bits = bits
        self._desc_compiled_at = self.version
        _obs_count("orders.closure.desc_compiles")

    def _ensure_anc_compiled(self) -> None:
        if self._anc_compiled_at == self.version:
            return
        ids = self._ids
        bits = [0] * len(self._terms_by_id)
        for tid in self._topological_ids():
            acc = 1 << tid
            for parent in self._parents[self._terms_by_id[tid]]:
                acc |= bits[ids[parent]]
            bits[tid] = acc
        self._anc_bits = bits
        self._anc_compiled_at = self.version
        _obs_count("orders.closure.anc_compiles")

    # ----------------------------------------------------------- bitset API

    def term_id(self, term: Term) -> Optional[int]:
        """The dense interned id of ``term`` (None if unregistered)."""
        return self._ids.get(term)

    def term_of_id(self, term_id: int) -> Term:
        """The term interned at ``term_id``."""
        return self._terms_by_id[term_id]

    def descendants_bits(self, term: Term) -> int:
        """Reflexive-transitive specializations of ``term`` as a bitset.

        Bit ``i`` is set iff ``term ≤ term_of_id(i)``.  Unregistered terms
        yield 0 (they have no interned id to set).
        """
        tid = self._ids.get(term)
        if tid is None:
            return 0
        self._ensure_desc_compiled()
        return self._desc_bits[tid]

    def ancestors_bits(self, term: Term) -> int:
        """Reflexive-transitive generalizations of ``term`` as a bitset."""
        tid = self._ids.get(term)
        if tid is None:
            return 0
        self._ensure_anc_compiled()
        return self._anc_bits[tid]

    def terms_of_bits(self, bits: int) -> FrozenSet[Term]:
        """Materialize a bitset over interned ids back into terms."""
        terms_by_id = self._terms_by_id
        out = []
        while bits:
            low = bits & -bits
            out.append(terms_by_id[low.bit_length() - 1])
            bits ^= low
        return frozenset(out)

    # ------------------------------------------------- closure import/export

    def closure_signature(self) -> bytes:
        """A digest of the order's structure (terms in id order + edges).

        Two orders built by the same deterministic construction sequence
        have equal signatures; the signature travels with exported closure
        blobs so an adopting process can prove its own order is aligned
        (same interning layout, same edges) before trusting foreign bits.
        """
        digest = hashlib.sha1()
        for term in self._terms_by_id:
            digest.update(term.name.encode("utf-8"))
            digest.update(b"\x00")
        digest.update(b"\x01")
        for general in self._terms_by_id:
            for child in sorted(self._children[general]):
                digest.update(general.name.encode("utf-8"))
                digest.update(b"\x00")
                digest.update(child.name.encode("utf-8"))
                digest.update(b"\x00")
        return digest.digest()

    def export_closures(self) -> bytes:
        """Serialize both compiled closures as one read-only byte blob.

        Layout: a ``(term count, row stride)`` header, the structural
        signature, then the descendant rows followed by the ancestor rows,
        each row the fixed-stride little-endian encoding of that term's
        closure bitset.  The blob is position-independent — built for
        shipping through ``multiprocessing.shared_memory`` to shard worker
        processes so they can serve ``leq``/closure queries without ever
        compiling (see :mod:`repro.service.shard.closures`).
        """
        self._ensure_desc_compiled()
        self._ensure_anc_compiled()
        nterms = len(self._terms_by_id)
        stride = max(1, (nterms + 7) // 8)
        out = bytearray(_CLOSURE_HEADER.pack(nterms, stride))
        out += self.closure_signature()
        for bits in self._desc_bits:
            out += bits.to_bytes(stride, "little")
        for bits in self._anc_bits:
            out += bits.to_bytes(stride, "little")
        return bytes(out)

    def adopt_closures(self, blob: bytes) -> None:
        """Install closures exported by an identically built order.

        The inverse of :meth:`export_closures`: validates the embedded
        term count and structural signature against *this* order, then
        installs the decoded bitsets and stamps them current — so the
        first ``leq``/``descendants`` query does a bit test instead of a
        topological sweep, and ``orders.closure.*_compiles`` stays at
        zero in the adopting process.  Raises ``ValueError`` on any
        mismatch (adopting foreign closures would silently corrupt every
        downstream classification).
        """
        header_len = _CLOSURE_HEADER.size
        if len(blob) < header_len + _CLOSURE_SIG_LEN:
            raise ValueError("closure blob too short for header + signature")
        nterms, stride = _CLOSURE_HEADER.unpack_from(blob, 0)
        if nterms != len(self._terms_by_id):
            raise ValueError(
                f"closure blob describes {nterms} terms, "
                f"this order has {len(self._terms_by_id)}"
            )
        sig_end = header_len + _CLOSURE_SIG_LEN
        if blob[header_len:sig_end] != self.closure_signature():
            raise ValueError("closure blob signature does not match this order")
        expected = sig_end + 2 * nterms * stride
        if len(blob) != expected:
            raise ValueError(
                f"closure blob is {len(blob)} bytes, expected {expected}"
            )
        desc: List[int] = []
        anc: List[int] = []
        offset = sig_end
        for _ in range(nterms):
            desc.append(int.from_bytes(blob[offset : offset + stride], "little"))
            offset += stride
        for _ in range(nterms):
            anc.append(int.from_bytes(blob[offset : offset + stride], "little"))
            offset += stride
        self._desc_bits = desc
        self._anc_bits = anc
        self._desc_compiled_at = self.version
        self._anc_compiled_at = self.version

    # ----------------------------------------------------------------- query

    def __contains__(self, term: Term) -> bool:
        return term in self._children

    def __len__(self) -> int:
        return len(self._children)

    def __iter__(self) -> Iterator[Term]:
        return iter(self._children)

    def terms(self) -> FrozenSet[Term]:
        """All terms registered in the order."""
        return frozenset(self._children)

    def children(self, term: Term) -> FrozenSet[Term]:
        """Immediate specializations of ``term`` (empty if unknown)."""
        return frozenset(self._children.get(term, ()))

    def parents(self, term: Term) -> FrozenSet[Term]:
        """Immediate generalizations of ``term`` (empty if unknown)."""
        return frozenset(self._parents.get(term, ()))

    def children_sorted(self, term: Term) -> Tuple[Term, ...]:
        """Immediate specializations in deterministic (sorted) order.

        Memoized until the next edit — traversal inner loops call this once
        per expansion step instead of materializing and re-sorting a
        frozenset every time.
        """
        cached = self._sorted_children.get(term)
        if cached is None:
            cached = tuple(sorted(self._children.get(term, ())))
            self._sorted_children[term] = cached
        return cached

    def parents_sorted(self, term: Term) -> Tuple[Term, ...]:
        """Immediate generalizations in deterministic (sorted) order."""
        cached = self._sorted_parents.get(term)
        if cached is None:
            cached = tuple(sorted(self._parents.get(term, ())))
            self._sorted_parents[term] = cached
        return cached

    def _reaches(self, src: Term, dst: Term) -> bool:
        """Uncached reachability used during edits (cache may be stale)."""
        if src == dst:
            return True
        seen = {src}
        stack = [src]
        while stack:
            node = stack.pop()
            for child in self._children.get(node, ()):
                if child == dst:
                    return True
                if child not in seen:
                    seen.add(child)
                    stack.append(child)
        return False

    def leq(self, general: Term, specific: Term) -> bool:
        """Is ``general ≤ specific`` (reflexive)?

        Terms not registered in the order are only related to themselves,
        mirroring the paper's treatment of vocabulary terms that appear in
        transactions but not in the ontology (e.g. ``Boathouse``).
        """
        if general == specific:
            return True
        gid = self._ids.get(general)
        if gid is None:
            return False
        sid = self._ids.get(specific)
        if sid is None:
            return False
        if self._desc_compiled_at != self.version:
            self._ensure_desc_compiled()
        return (self._desc_bits[gid] >> sid) & 1 == 1

    def comparable(self, a: Term, b: Term) -> bool:
        """Are ``a`` and ``b`` related in either direction?"""
        return self.leq(a, b) or self.leq(b, a)

    def descendants(self, term: Term) -> FrozenSet[Term]:
        """Reflexive-transitive specializations of ``term``.

        A thin frozenset view over :meth:`descendants_bits`, materialized
        lazily and memoized until the next edit.
        """
        cached = self._desc_view.get(term)
        if cached is not None:
            return cached
        tid = self._ids.get(term)
        if tid is None:
            result: FrozenSet[Term] = frozenset({term})
        else:
            self._ensure_desc_compiled()
            result = self.terms_of_bits(self._desc_bits[tid])
        self._desc_view[term] = result
        _obs_count("orders.closure.desc_views")
        return result

    def ancestors(self, term: Term) -> FrozenSet[Term]:
        """Reflexive-transitive generalizations of ``term`` (thin view)."""
        cached = self._anc_view.get(term)
        if cached is not None:
            return cached
        tid = self._ids.get(term)
        if tid is None:
            result: FrozenSet[Term] = frozenset({term})
        else:
            self._ensure_anc_compiled()
            result = self.terms_of_bits(self._anc_bits[tid])
        self._anc_view[term] = result
        _obs_count("orders.closure.anc_views")
        return result

    def strict_descendants(self, term: Term) -> FrozenSet[Term]:
        """Transitive (non-reflexive) specializations."""
        return self.descendants(term) - {term}

    def strict_ancestors(self, term: Term) -> FrozenSet[Term]:
        """Transitive (non-reflexive) generalizations."""
        return self.ancestors(term) - {term}

    # ------------------------------------------------- reference (uncompiled)

    def leq_reference(self, general: Term, specific: Term) -> bool:
        """Pre-compilation ``leq`` via DFS reachability.

        Retained as the ground truth for the randomized equivalence suite
        and the ``make bench`` reference path; never used on hot paths.
        """
        if general == specific:
            return True
        if general not in self._children or specific not in self._children:
            return False
        return self._reaches(general, specific)

    def descendants_reference(self, term: Term) -> FrozenSet[Term]:
        """Pre-compilation descendant closure via DFS (ground truth)."""
        seen: Set[Term] = {term}
        stack = [term]
        while stack:
            node = stack.pop()
            for child in self._children.get(node, ()):
                if child not in seen:
                    seen.add(child)
                    stack.append(child)
        return frozenset(seen)

    def ancestors_reference(self, term: Term) -> FrozenSet[Term]:
        """Pre-compilation ancestor closure via DFS (ground truth)."""
        seen: Set[Term] = {term}
        stack = [term]
        while stack:
            node = stack.pop()
            for parent in self._parents.get(node, ()):
                if parent not in seen:
                    seen.add(parent)
                    stack.append(parent)
        return frozenset(seen)

    # -------------------------------------------------------------- extremes

    def roots(self) -> FrozenSet[Term]:
        """Terms with no parent (the most general terms)."""
        return frozenset(t for t, ps in self._parents.items() if not ps)

    def leaves(self) -> FrozenSet[Term]:
        """Terms with no child (the most specific terms)."""
        return frozenset(t for t, cs in self._children.items() if not cs)

    def depth(self, term: Term) -> int:
        """Length of the longest chain from a root to ``term`` (roots: 0)."""
        cached = self._depth_cache.get(term)
        if cached is not None:
            return cached
        # iterative longest-path on a DAG via memoized DFS
        order = self._topo_from_ancestors(term)
        for node in order:
            parents = self._parents.get(node, ())
            if not parents:
                self._depth_cache[node] = 0
            else:
                self._depth_cache[node] = 1 + max(self._depth_cache[p] for p in parents)
        return self._depth_cache[term]

    def _topo_from_ancestors(self, term: Term) -> List[Term]:
        """Topological order of ``term``'s ancestors, parents first."""
        visited: Set[Term] = set()
        order: List[Term] = []
        stack: List[Tuple[Term, bool]] = [(term, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if node in visited:
                continue
            visited.add(node)
            stack.append((node, True))
            for parent in self._parents.get(node, ()):
                if parent not in visited:
                    stack.append((parent, False))
        return order

    def height(self) -> int:
        """Longest chain length in the whole order (0 for flat orders)."""
        if not self._children:
            return 0
        return max(self.depth(t) for t in self._children)

    def closure_stats(self) -> Tuple[int, int, float]:
        """``(terms, height, average closure size)`` of the order.

        The average reflexive-descendant-closure size is one popcount per
        compiled bitset — the width/depth shape signal the adaptive
        support backend feeds its cost model (a term's closure size is
        exactly the union work the TID index spends on a novel query fact
        touching it).  Memoized per version stamp.
        """
        if self._closure_stats_at == self.version:
            return self._closure_stats
        n = len(self._terms_by_id)
        if n == 0:
            stats = (0, 0, 0.0)
        else:
            self._ensure_desc_compiled()
            mass = sum(bits.bit_count() for bits in self._desc_bits)
            stats = (n, self.height(), mass / n)
        self._closure_stats = stats
        self._closure_stats_at = self.version
        return stats

    def chain_partition(self) -> Dict[Term, Tuple[int, int]]:
        """Greedy chain decomposition: term -> (chain id, position).

        Partitions the order into maximal chains by a deterministic
        top-down sweep: each term extends the chain of the first parent
        (in sorted order) whose chain it can still prolong, otherwise it
        starts a new chain.  The companion complexity paper shows crowd
        question cost is governed by the chain structure of the taxonomy;
        traversals use this partition to ask questions chain-by-chain so
        one insignificant answer prunes a whole suffix.  Memoized until
        the next structural edit.
        """
        if self._chain_compiled_at == self.version:
            return self._chain_pos
        pos: Dict[Term, Tuple[int, int]] = {}
        tails: Dict[int, Term] = {}
        chains = 0
        # deterministic topological sweep (sorted roots, sorted children)
        indegree = {t: len(ps) for t, ps in self._parents.items()}
        queue = sorted(t for t, d in indegree.items() if d == 0)
        head = 0
        while head < len(queue):
            term = queue[head]
            head += 1
            extended = None
            for parent in self.parents_sorted(term):
                parent_pos = pos.get(parent)
                if parent_pos is not None and tails.get(parent_pos[0]) == parent:
                    extended = parent_pos
                    break
            if extended is None:
                pos[term] = (chains, 0)
                tails[chains] = term
                chains += 1
            else:
                chain_id, depth = extended
                pos[term] = (chain_id, depth + 1)
                tails[chain_id] = term
            for child in self.children_sorted(term):
                indegree[child] -= 1
                if indegree[child] == 0:
                    queue.append(child)
        self._chain_pos = pos
        self._chain_compiled_at = self.version
        _obs_count("orders.chain_partitions")
        return pos

    def minimal_generalization_steps(self, general: Term, specific: Term) -> int:
        """Shortest edge distance from ``general`` down to ``specific``.

        Used by the synthetic MSP placement policies ("nearby" vs "far"
        MSPs, Section 6.4).  Raises ``ValueError`` if not ``general ≤
        specific``.
        """
        if general == specific:
            return 0
        if not self.leq(general, specific):
            raise ValueError(f"{general!r} is not ≤ {specific!r}")
        frontier = {general}
        dist = 0
        while frontier:
            dist += 1
            nxt: Set[Term] = set()
            for node in frontier:
                for child in self._children.get(node, ()):
                    if child == specific:
                        return dist
                    nxt.add(child)
            frontier = nxt
        raise AssertionError("unreachable: leq held but BFS did not find target")

    def copy(self) -> "PartialOrder":
        """An independent deep copy of the order."""
        dup = PartialOrder()
        for term in self._terms_by_id:
            dup.add_term(term)
        for term, children in self._children.items():
            for child in children:
                dup._children[term].add(child)
                dup._parents[child].add(term)
        dup._edge_count = self._edge_count
        dup.version += 1  # edges were added behind add_edge's back
        return dup

    def edges(self) -> Iterator[Tuple[Term, Term]]:
        """Iterate over all (general, specific) immediate edges."""
        for term, children in self._children.items():
            for child in children:
                yield (term, child)
