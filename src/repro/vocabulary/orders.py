"""Partial orders over terms (the ``≤E`` and ``≤R`` of Definition 2.1).

The paper orders terms by *reversed subsumption*: ``a ≤ b`` means that *b is
more specific than a* (``Sport ≤ Biking`` because biking is a sport).  We
represent such an order as a DAG whose edges point from a term to its
*immediate specializations* (children).  Reachability gives the full order.

The structure supports the operations the mining algorithms need:

* ``leq(a, b)`` — is ``a ≤ b``?  (memoized reachability)
* ``children(a)`` / ``parents(a)`` — immediate specializations /
  generalizations, the ``⋖`` steps of the assignment lattice;
* ``descendants`` / ``ancestors`` — reflexive-transitive closures, used by
  ``subClassOf*`` path evaluation and by up-set/down-set classification;
* ``roots()`` / ``leaves()`` — extremes of the order;
* ``depth(a)`` — longest chain from a root, used by synthetic-DAG shaping.

Cycles are rejected on insertion (a partial order must be acyclic).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Set, Tuple

from .terms import Term


class CycleError(ValueError):
    """Raised when an edge insertion would create a cycle in the order."""


class PartialOrder:
    """A partial order over :class:`~repro.vocabulary.terms.Term` objects.

    Stored as an explicit Hasse-like DAG.  Edges need not form a transitive
    reduction — redundant edges are tolerated and ignored by reachability —
    but :meth:`children` only reports direct edges, so builders should add
    immediate-specialization edges only.
    """

    def __init__(self) -> None:
        self._children: Dict[Term, Set[Term]] = {}
        self._parents: Dict[Term, Set[Term]] = {}
        # memoized reflexive-transitive descendant sets, invalidated on edit
        self._desc_cache: Dict[Term, FrozenSet[Term]] = {}
        self._anc_cache: Dict[Term, FrozenSet[Term]] = {}
        self._depth_cache: Dict[Term, int] = {}
        self._edge_count = 0
        #: bumped on every structural change; cheap cache-invalidation stamp
        self.version = 0

    @property
    def edge_count(self) -> int:
        """Number of immediate edges (used for cache invalidation stamps)."""
        return self._edge_count

    # ------------------------------------------------------------------ edit

    def add_term(self, term: Term) -> None:
        """Register ``term`` as a member of the order (idempotent)."""
        if term not in self._children:
            self._children[term] = set()
            self._parents[term] = set()
            self._invalidate()

    def add_edge(self, general: Term, specific: Term) -> None:
        """Record ``general ≤ specific`` as an immediate edge.

        Raises :class:`CycleError` if the edge would make the relation
        cyclic (including self-loops).
        """
        if general == specific:
            raise CycleError(f"self-loop on {general!r}")
        self.add_term(general)
        self.add_term(specific)
        if self._reaches(specific, general):
            raise CycleError(f"edge {general!r} -> {specific!r} would create a cycle")
        self._children[general].add(specific)
        self._parents[specific].add(general)
        self._edge_count += 1
        self._invalidate()

    def _invalidate(self) -> None:
        self.version += 1
        self._desc_cache.clear()
        self._anc_cache.clear()
        self._depth_cache.clear()

    # ----------------------------------------------------------------- query

    def __contains__(self, term: Term) -> bool:
        return term in self._children

    def __len__(self) -> int:
        return len(self._children)

    def __iter__(self) -> Iterator[Term]:
        return iter(self._children)

    def terms(self) -> FrozenSet[Term]:
        """All terms registered in the order."""
        return frozenset(self._children)

    def children(self, term: Term) -> FrozenSet[Term]:
        """Immediate specializations of ``term`` (empty if unknown)."""
        return frozenset(self._children.get(term, ()))

    def parents(self, term: Term) -> FrozenSet[Term]:
        """Immediate generalizations of ``term`` (empty if unknown)."""
        return frozenset(self._parents.get(term, ()))

    def _reaches(self, src: Term, dst: Term) -> bool:
        """Uncached reachability used during edits (cache may be stale)."""
        if src == dst:
            return True
        seen = {src}
        stack = [src]
        while stack:
            node = stack.pop()
            for child in self._children.get(node, ()):
                if child == dst:
                    return True
                if child not in seen:
                    seen.add(child)
                    stack.append(child)
        return False

    def leq(self, general: Term, specific: Term) -> bool:
        """Is ``general ≤ specific`` (reflexive)?

        Terms not registered in the order are only related to themselves,
        mirroring the paper's treatment of vocabulary terms that appear in
        transactions but not in the ontology (e.g. ``Boathouse``).
        """
        if general == specific:
            return True
        if general not in self._children or specific not in self._children:
            return False
        return specific in self.descendants(general)

    def comparable(self, a: Term, b: Term) -> bool:
        """Are ``a`` and ``b`` related in either direction?"""
        return self.leq(a, b) or self.leq(b, a)

    def descendants(self, term: Term) -> FrozenSet[Term]:
        """Reflexive-transitive specializations of ``term``."""
        cached = self._desc_cache.get(term)
        if cached is not None:
            return cached
        seen: Set[Term] = {term}
        stack = [term]
        while stack:
            node = stack.pop()
            for child in self._children.get(node, ()):
                if child not in seen:
                    seen.add(child)
                    stack.append(child)
        result = frozenset(seen)
        self._desc_cache[term] = result
        return result

    def ancestors(self, term: Term) -> FrozenSet[Term]:
        """Reflexive-transitive generalizations of ``term``."""
        cached = self._anc_cache.get(term)
        if cached is not None:
            return cached
        seen: Set[Term] = {term}
        stack = [term]
        while stack:
            node = stack.pop()
            for parent in self._parents.get(node, ()):
                if parent not in seen:
                    seen.add(parent)
                    stack.append(parent)
        result = frozenset(seen)
        self._anc_cache[term] = result
        return result

    def strict_descendants(self, term: Term) -> FrozenSet[Term]:
        """Transitive (non-reflexive) specializations."""
        return self.descendants(term) - {term}

    def strict_ancestors(self, term: Term) -> FrozenSet[Term]:
        """Transitive (non-reflexive) generalizations."""
        return self.ancestors(term) - {term}

    def roots(self) -> FrozenSet[Term]:
        """Terms with no parent (the most general terms)."""
        return frozenset(t for t, ps in self._parents.items() if not ps)

    def leaves(self) -> FrozenSet[Term]:
        """Terms with no child (the most specific terms)."""
        return frozenset(t for t, cs in self._children.items() if not cs)

    def depth(self, term: Term) -> int:
        """Length of the longest chain from a root to ``term`` (roots: 0)."""
        cached = self._depth_cache.get(term)
        if cached is not None:
            return cached
        # iterative longest-path on a DAG via memoized DFS
        order = self._topo_from_ancestors(term)
        for node in order:
            parents = self._parents.get(node, ())
            if not parents:
                self._depth_cache[node] = 0
            else:
                self._depth_cache[node] = 1 + max(self._depth_cache[p] for p in parents)
        return self._depth_cache[term]

    def _topo_from_ancestors(self, term: Term) -> List[Term]:
        """Topological order of ``term``'s ancestors, parents first."""
        visited: Set[Term] = set()
        order: List[Term] = []
        stack: List[Tuple[Term, bool]] = [(term, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if node in visited:
                continue
            visited.add(node)
            stack.append((node, True))
            for parent in self._parents.get(node, ()):
                if parent not in visited:
                    stack.append((parent, False))
        return order

    def height(self) -> int:
        """Longest chain length in the whole order (0 for flat orders)."""
        if not self._children:
            return 0
        return max(self.depth(t) for t in self._children)

    def minimal_generalization_steps(self, general: Term, specific: Term) -> int:
        """Shortest edge distance from ``general`` down to ``specific``.

        Used by the synthetic MSP placement policies ("nearby" vs "far"
        MSPs, Section 6.4).  Raises ``ValueError`` if not ``general ≤
        specific``.
        """
        if general == specific:
            return 0
        if not self.leq(general, specific):
            raise ValueError(f"{general!r} is not ≤ {specific!r}")
        frontier = {general}
        dist = 0
        while frontier:
            dist += 1
            nxt: Set[Term] = set()
            for node in frontier:
                for child in self._children.get(node, ()):
                    if child == specific:
                        return dist
                    nxt.add(child)
            frontier = nxt
        raise AssertionError("unreachable: leq held but BFS did not find target")

    def copy(self) -> "PartialOrder":
        """An independent deep copy of the order."""
        dup = PartialOrder()
        for term, children in self._children.items():
            dup.add_term(term)
            for child in children:
                dup._children.setdefault(term, set()).add(child)
                dup._parents.setdefault(child, set()).add(term)
                dup.add_term(child)
        dup._edge_count = self._edge_count
        return dup

    def edges(self) -> Iterator[Tuple[Term, Term]]:
        """Iterate over all (general, specific) immediate edges."""
        for term, children in self._children.items():
            for child in children:
                yield (term, child)
