"""The vocabulary of Definition 2.1: ``V = (E, ≤E, R, ≤R)``.

A :class:`Vocabulary` bundles the element and relation universes together
with their partial orders and exposes the semantic comparisons the rest of
the system builds on (term lookup, ``leq`` dispatching on term kind,
immediate specializations for lattice traversal).
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from .orders import PartialOrder
from .terms import Element, Relation, Term


class UnknownTermError(KeyError):
    """Raised when a name does not resolve to a vocabulary term."""


class Vocabulary:
    """Element and relation universes with their specialization orders."""

    def __init__(self) -> None:
        self.element_order = PartialOrder()
        self.relation_order = PartialOrder()
        self._elements: Dict[str, Element] = {}
        self._relations: Dict[str, Relation] = {}

    # ------------------------------------------------------------- mutation

    def add_element(self, name: str) -> Element:
        """Register (or fetch) the element called ``name``."""
        elem = self._elements.get(name)
        if elem is None:
            elem = Element(name)
            self._elements[name] = elem
            self.element_order.add_term(elem)
        return elem

    def add_relation(self, name: str) -> Relation:
        """Register (or fetch) the relation called ``name``."""
        rel = self._relations.get(name)
        if rel is None:
            rel = Relation(name)
            self._relations[name] = rel
            self.relation_order.add_term(rel)
        return rel

    def specialize_element(self, general: str, specific: str) -> None:
        """Record ``general ≤E specific`` (e.g. ``Sport ≤ Biking``)."""
        self.element_order.add_edge(self.add_element(general), self.add_element(specific))

    def specialize_relation(self, general: str, specific: str) -> None:
        """Record ``general ≤R specific`` (e.g. ``nearBy ≤ inside``)."""
        self.relation_order.add_edge(self.add_relation(general), self.add_relation(specific))

    # --------------------------------------------------------------- lookup

    def element(self, name: str) -> Element:
        """The element called ``name``; raises :class:`UnknownTermError`."""
        try:
            return self._elements[name]
        except KeyError:
            raise UnknownTermError(f"unknown element {name!r}") from None

    def relation(self, name: str) -> Relation:
        """The relation called ``name``; raises :class:`UnknownTermError`."""
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownTermError(f"unknown relation {name!r}") from None

    def has_element(self, name: str) -> bool:
        return name in self._elements

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    @property
    def elements(self) -> FrozenSet[Element]:
        return frozenset(self._elements.values())

    @property
    def relations(self) -> FrozenSet[Relation]:
        return frozenset(self._relations.values())

    def __len__(self) -> int:
        """|E| + |R| — the vocabulary size used in Proposition 4.7."""
        return len(self._elements) + len(self._relations)

    # ------------------------------------------------------------ semantics

    def _order_for(self, term: Term) -> PartialOrder:
        if isinstance(term, Element):
            return self.element_order
        if isinstance(term, Relation):
            return self.relation_order
        raise TypeError(f"not a vocabulary term: {term!r}")

    def leq(self, general: Term, specific: Term) -> bool:
        """Dispatching ``≤``: elements via ``≤E``, relations via ``≤R``.

        Terms of different kinds are incomparable.  This is the innermost
        loop of support computation; the orders compile their closures to
        bitsets, so a comparison is a dispatch plus one bit test (no
        per-pair memo needed).
        """
        if general is specific:
            return True
        if type(general) is not type(specific):
            return False
        return self._order_for(general).leq(general, specific)

    def comparable(self, a: Term, b: Term) -> bool:
        """Are ``a`` and ``b`` related in either direction (or equal)?"""
        return self.leq(a, b) or self.leq(b, a)

    def children(self, term: Term) -> FrozenSet[Term]:
        """Immediate specializations of ``term`` in its order."""
        return self._order_for(term).children(term)

    def parents(self, term: Term) -> FrozenSet[Term]:
        """Immediate generalizations of ``term`` in its order."""
        return self._order_for(term).parents(term)

    def children_sorted(self, term: Term):
        """Immediate specializations, deterministically ordered (memoized)."""
        return self._order_for(term).children_sorted(term)

    def parents_sorted(self, term: Term):
        """Immediate generalizations, deterministically ordered (memoized)."""
        return self._order_for(term).parents_sorted(term)

    def descendants(self, term: Term) -> FrozenSet[Term]:
        """Reflexive-transitive specializations of ``term``."""
        return self._order_for(term).descendants(term)

    def ancestors(self, term: Term) -> FrozenSet[Term]:
        """Reflexive-transitive generalizations of ``term``."""
        return self._order_for(term).ancestors(term)

    def copy(self) -> "Vocabulary":
        dup = Vocabulary()
        dup._elements = dict(self._elements)
        dup._relations = dict(self._relations)
        dup.element_order = self.element_order.copy()
        dup.relation_order = self.relation_order.copy()
        return dup

    def __repr__(self) -> str:
        return (
            f"Vocabulary(|E|={len(self._elements)}, |R|={len(self._relations)}, "
            f"element_edges={sum(1 for _ in self.element_order.edges())}, "
            f"relation_edges={sum(1 for _ in self.relation_order.edges())})"
        )
