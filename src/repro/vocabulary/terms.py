"""Terms: the atomic names of the OASSIS data model.

The paper's vocabulary (Definition 2.1) consists of two disjoint universes:
*elements* (nouns and actions such as ``Place``, ``NYC`` or ``Biking``) and
*relations* (``inside``, ``nearBy``, ``doAt`` ...).  Both are plain
interned strings at heart, but we wrap them in small value types so that a
fact ``<Biking, doAt, Central Park>`` cannot accidentally be built with a
relation in an element slot.

Terms are immutable, hashable and cheap: equality is by kind and name.
"""

from __future__ import annotations

from typing import Iterable, Union


class Term:
    """Base class for :class:`Element` and :class:`Relation`.

    A term is identified by its ``name``.  Two terms are equal iff they have
    the same concrete class and the same name, so terms can be used freely
    as dictionary keys and set members.
    """

    __slots__ = ("name", "_hash")

    #: short tag used in ``repr`` and serialization ("elem" / "rel")
    kind = "term"

    def __init__(self, name: str):
        if not isinstance(name, str):
            raise TypeError(f"term name must be a string, got {type(name).__name__}")
        if not name:
            raise ValueError("term name must be non-empty")
        self.name = name
        # terms are hashed on every index lookup; precompute once
        self._hash = hash((self.kind, name))

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.name == other.name  # type: ignore[attr-defined]

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Term") -> bool:
        # Lexicographic tie-breaking so sorted() on terms is deterministic.
        # This is *not* the semantic order; see repro.vocabulary.orders.
        if not isinstance(other, Term):
            return NotImplemented
        return (self.kind, self.name) < (other.kind, other.name)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"

    def __str__(self) -> str:
        return self.name


class Element(Term):
    """A vocabulary element: an entity, class or action name."""

    __slots__ = ()
    kind = "elem"


class Relation(Term):
    """A vocabulary relation name (an RDF-style predicate)."""

    __slots__ = ()
    kind = "rel"


#: Anything accepted where an element is expected by convenience APIs.
ElementLike = Union[Element, str]
#: Anything accepted where a relation is expected by convenience APIs.
RelationLike = Union[Relation, str]


def as_element(value: ElementLike) -> Element:
    """Coerce ``value`` to an :class:`Element` (strings are wrapped)."""
    if isinstance(value, Element):
        return value
    if isinstance(value, Relation):
        raise TypeError(f"expected an element, got relation {value.name!r}")
    return Element(value)


def as_relation(value: RelationLike) -> Relation:
    """Coerce ``value`` to a :class:`Relation` (strings are wrapped)."""
    if isinstance(value, Relation):
        return value
    if isinstance(value, Element):
        raise TypeError(f"expected a relation, got element {value.name!r}")
    return Relation(value)


def as_elements(values: Iterable[ElementLike]) -> tuple:
    """Coerce an iterable of element-likes to a tuple of :class:`Element`."""
    return tuple(as_element(v) for v in values)


#: The designated most-general element.  Ontologies are not required to use
#: it, but builders root their taxonomy here by default (mirroring the
#: "Thing" node of Figure 1 in the paper).
THING = Element("Thing")

#: The designated most-general relation, used by the MORE construct where a
#: completely unconstrained predicate is required.
ANY_RELATION = Relation("anyRelation")

#: Wildcard element standing for the paper's ``[]`` ("anything, as long as
#: one exists").  Facts with a wildcard component are treated as more
#: general than any fact agreeing on the other components — see
#: :meth:`repro.ontology.facts.Fact.leq`.
ANY_ELEMENT = Element("__any__")

#: Wildcard relation counterpart of :data:`ANY_ELEMENT`.
ANY_RELATION_WILDCARD = Relation("__anyrel__")
