"""Vocabulary layer: terms and the semantic partial orders of Def. 2.1."""

from .builders import VocabularyBuilder
from .orders import CycleError, PartialOrder
from .terms import (
    ANY_RELATION,
    THING,
    Element,
    Relation,
    Term,
    as_element,
    as_relation,
)
from .vocabulary import UnknownTermError, Vocabulary

__all__ = [
    "ANY_RELATION",
    "THING",
    "CycleError",
    "Element",
    "PartialOrder",
    "Relation",
    "Term",
    "UnknownTermError",
    "Vocabulary",
    "VocabularyBuilder",
    "as_element",
    "as_relation",
]
