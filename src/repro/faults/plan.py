"""FaultPlan: a seedable, deterministic schedule of injected faults.

A :class:`FaultPlan` is consulted at *named sites* inside the serving
layer (:data:`SITES`).  Each call to :meth:`FaultPlan.decide` either
returns a :class:`FaultKind` to inject right now or ``None``.  Decisions
are a pure function of ``(seed, site, member, event counter)`` — two
plans built from the same specs and seed make identical decisions in
identical order, across processes and regardless of thread interleaving
for any single ``(site, member)`` stream.  That is what makes a chaos
campaign *replayable*: a failing seed is a bug report.

Determinism is achieved without Python's salted ``hash()``: each
decision hashes its identity with BLAKE2 and compares the digest against
the spec's rate.  No global RNG is touched.

Injection sites (the serving layer's failure surface):

``member.answer``
    consulted by :class:`~repro.service.runner.MemberScript` once per
    delivered question; can inject ``TIMEOUT`` (the member goes silent
    and the question must be reaped), ``DEPART`` (the member leaves),
    ``MALFORMED`` (an out-of-range support value the manager must
    reject) and ``DUPLICATE`` (the answer is delivered twice).
``runner.worker``
    consulted by a :class:`~repro.service.runner.ServiceRunner` worker
    thread once per member checkout; ``CRASH`` raises
    :class:`InjectedCrash`, killing the thread while it holds a member.
``manager.dispatch``
    consulted by :meth:`~repro.service.manager.SessionManager.next_batch`
    before assembling a batch; ``TIMEOUT`` stalls the dispatch (the
    member gets an empty batch this round).
``manager.submit``
    consulted by :meth:`~repro.service.manager.SessionManager.submit`
    after an answer arrives; ``DUPLICATE`` re-applies the same answer a
    second time (the second application must come back ``STALE``).
``gateway.request``
    consulted by the HTTP gateway (:mod:`repro.gateway`) once per parsed
    request, before dispatch; ``DISCONNECT`` drops the connection without
    a response (the client must retry idempotently) and ``SLOW_CLIENT``
    delays the response past the configured stall, probing client
    timeout handling.
"""

from __future__ import annotations

import enum
import hashlib
import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..observability import count as _obs_count

#: the named injection points wired through repro.service
SITES = frozenset(
    {
        "member.answer",
        "runner.worker",
        "manager.dispatch",
        "manager.submit",
        "gateway.request",
    }
)


class FaultKind(enum.Enum):
    """What kind of failure to inject."""

    #: the member goes silent; the question must hit its deadline
    TIMEOUT = "timeout"
    #: the member departs abruptly mid-session
    DEPART = "departure"
    #: the same answer is delivered twice (idempotence probe)
    DUPLICATE = "duplicate"
    #: an out-of-range / NaN support value (input validation probe)
    MALFORMED = "malformed"
    #: the worker thread dies while holding a member checkout
    CRASH = "crash"
    #: the gateway drops the connection before writing a response
    DISCONNECT = "disconnect"
    #: the gateway stalls the response past the configured delay
    SLOW_CLIENT = "slow_client"


class InjectedCrash(RuntimeError):
    """Raised at a crash site to kill the current worker thread."""


class DuplicateDelivery:
    """A member answer that must be submitted twice by the runner."""

    __slots__ = ("support",)

    def __init__(self, support: float) -> None:
        self.support = support

    def __repr__(self) -> str:
        return f"DuplicateDelivery({self.support!r})"


#: the support value malformed answers carry (far outside [0, 1])
MALFORMED_SUPPORT = 7.5


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: where, what, to whom, how often.

    ``rate`` is the per-event injection probability (1.0 = always).
    ``member`` restricts the spec to one member id (``None`` = anyone).
    ``after`` skips the first N matching events; ``limit`` caps the
    total number of injections from this spec (``None`` = unbounded).
    """

    site: str
    kind: FaultKind
    rate: float = 1.0
    member: Optional[str] = None
    after: int = 0
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r}; pick from {sorted(SITES)}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.after < 0:
            raise ValueError("after must be non-negative")
        if self.limit is not None and self.limit < 0:
            raise ValueError("limit must be non-negative")


def _roll(seed: int, site: str, member: str, kind: str, event: int) -> float:
    """A deterministic pseudo-random draw in [0, 1) for one decision."""
    identity = f"{seed}:{site}:{member}:{kind}:{event}".encode("utf-8")
    digest = hashlib.blake2b(identity, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2**64


class FaultPlan:
    """A deterministic schedule of faults, consulted at named sites.

    Thread-safe: per-``(spec, member)`` event counters are guarded by an
    internal leaf lock (never held while any other lock is acquired).
    """

    def __init__(self, specs: Iterable[FaultSpec] = (), *, seed: int = 0) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.seed = seed
        self._lock = threading.Lock()
        # sites at least one spec targets: decide() short-circuits the
        # rest without locking, so a dormant plan costs one set lookup
        self._active_sites = frozenset(spec.site for spec in self.specs)
        # (spec index, member) -> events seen / injections fired
        self._events: Dict[Tuple[int, str], int] = {}
        self._fired: Dict[int, int] = {}
        self._injected: Dict[str, int] = {}

    def decide(self, site: str, member: Optional[str] = None) -> Optional[FaultKind]:
        """The fault to inject at ``site`` for ``member`` right now, if any.

        The first matching spec (in declaration order) that fires wins;
        every matching spec's event counter advances regardless, so
        adding a low-rate spec never perturbs the decisions of specs
        declared before it.
        """
        if site not in SITES:
            raise ValueError(f"unknown fault site {site!r}")
        if site not in self._active_sites:
            # no spec targets this site: counters would not advance anyway
            return None
        who = member if member is not None else ""
        winner: Optional[FaultKind] = None
        with self._lock:
            for index, spec in enumerate(self.specs):
                if spec.site != site:
                    continue
                if spec.member is not None and spec.member != member:
                    continue
                counter_key = (index, who)
                event = self._events.get(counter_key, 0)
                self._events[counter_key] = event + 1
                if winner is not None:
                    continue
                if event < spec.after:
                    continue
                if spec.limit is not None and self._fired.get(index, 0) >= spec.limit:
                    continue
                if _roll(self.seed, site, who, spec.kind.value, event) < spec.rate:
                    self._fired[index] = self._fired.get(index, 0) + 1
                    name = spec.kind.value
                    self._injected[name] = self._injected.get(name, 0) + 1
                    winner = spec.kind
        if winner is not None:
            _obs_count(f"faults.injected.{winner.value}")
        return winner

    def maybe_crash(self, site: str, member: Optional[str] = None) -> None:
        """Raise :class:`InjectedCrash` when the plan schedules one here."""
        if self.decide(site, member) is FaultKind.CRASH:
            raise InjectedCrash(f"injected crash at {site} (member={member!r})")

    def injected(self) -> Dict[str, int]:
        """How many faults of each kind have been injected so far."""
        with self._lock:
            return dict(sorted(self._injected.items()))

    def total_injected(self) -> int:
        with self._lock:
            return sum(self._injected.values())

    def __repr__(self) -> str:
        kinds = [spec.kind.value for spec in self.specs]
        return f"FaultPlan(seed={self.seed}, specs={kinds})"


def chaos_plan(
    *,
    seed: int,
    bad_member: Optional[str] = None,
    departing_member: Optional[str] = None,
    timeout_rate: float = 0.1,
    duplicate_rate: float = 0.08,
    depart_after: int = 6,
    crashes: int = 0,
    crash_every: int = 40,
) -> FaultPlan:
    """The standard chaos mix: timeouts + duplicates everywhere, one
    always-malformed member, one departure, optionally worker crashes.

    Used by :mod:`repro.faults.chaos` and the ``repro chaos`` CLI; kept
    here so tests can build the same plan the campaign runs.
    """
    specs: List[FaultSpec] = []
    if bad_member is not None:
        specs.append(
            FaultSpec("member.answer", FaultKind.MALFORMED, member=bad_member)
        )
    if departing_member is not None:
        specs.append(
            FaultSpec(
                "member.answer",
                FaultKind.DEPART,
                member=departing_member,
                after=depart_after,
                limit=1,
            )
        )
    specs.append(FaultSpec("member.answer", FaultKind.TIMEOUT, rate=timeout_rate))
    specs.append(FaultSpec("member.answer", FaultKind.DUPLICATE, rate=duplicate_rate))
    if crashes > 0:
        specs.append(
            FaultSpec(
                "runner.worker",
                FaultKind.CRASH,
                after=crash_every,
                limit=crashes,
                rate=0.2,
            )
        )
    return FaultPlan(specs, seed=seed)
