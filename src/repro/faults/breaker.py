"""Per-member circuit breaker: quarantine instead of burning retries.

The :class:`~repro.service.manager.SessionManager` keeps one
:class:`CircuitBreaker` per attached member.  Every dispatch outcome
feeds it: a recorded/pruned/passed answer is a success, a reaped timeout
or a rejected (malformed) answer is a failure.  When the failure rate
over a sliding window crosses the threshold the breaker *opens*: the
member is quarantined — ``next_batch`` short-circuits to an empty batch
— so their questions are reassigned to healthy members instead of being
retried against a black hole.  After a cooldown the breaker goes
*half-open* and admits exactly one probe question; a success closes the
breaker, a failure re-opens it for another cooldown.

The state machine is pure and clock-injected (every transition takes an
explicit ``now``), so tests drive it deterministically.  Transitions
emit ``recovery.breaker.*`` counters; the caller is expected to hold its
own registry lock — the breaker itself is not synchronized.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque

from ..observability import count as _obs_count


class BreakerState(enum.Enum):
    """Where a member's breaker is in its quarantine cycle."""

    #: healthy: dispatch freely
    CLOSED = "closed"
    #: quarantined: no questions until the cooldown elapses
    OPEN = "open"
    #: probing: exactly one question in flight decides the next state
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Error-rate window → quarantine with half-open probing."""

    def __init__(
        self,
        *,
        window: int = 8,
        failure_threshold: float = 0.5,
        cooldown: float = 5.0,
        min_events: int = 4,
    ) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        if min_events < 1:
            raise ValueError("min_events must be at least 1")
        self.window = window
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.min_events = min_events
        self.state = BreakerState.CLOSED
        self.opened_count = 0
        self._events: Deque[bool] = deque(maxlen=window)  # True = failure
        self._open_until = 0.0
        self._probe_outstanding = False

    # --------------------------------------------------------------- feeding

    def record_success(self, now: float) -> None:
        """A dispatched question came back well-formed and in time."""
        if self.state is BreakerState.HALF_OPEN:
            self._close()
            return
        self._events.append(False)

    def record_failure(self, now: float) -> None:
        """A timeout or malformed answer; may trip the breaker."""
        if self.state is BreakerState.HALF_OPEN:
            self._open(now)
            return
        self._events.append(True)
        if self.state is not BreakerState.CLOSED:
            return
        if len(self._events) < self.min_events:
            return
        failures = sum(1 for failed in self._events if failed)
        if failures / len(self._events) >= self.failure_threshold:
            self._open(now)

    # ------------------------------------------------------------ dispatching

    def allow(self, now: float) -> bool:
        """May the member be handed questions right now?

        In ``OPEN`` state this transitions to ``HALF_OPEN`` once the
        cooldown has elapsed and admits a single probe; further calls
        return False until the probe's outcome is recorded.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if now < self._open_until:
                return False
            self.state = BreakerState.HALF_OPEN
            self._probe_outstanding = True
            _obs_count("recovery.breaker.half_open")
            return True
        # HALF_OPEN: one probe at a time
        if self._probe_outstanding:
            return False
        self._probe_outstanding = True
        return True

    def probe_aborted(self) -> None:
        """The admitted half-open probe was never dispatched; allow another."""
        if self.state is BreakerState.HALF_OPEN:
            self._probe_outstanding = False

    # ------------------------------------------------------------ transitions

    def _open(self, now: float) -> None:
        self.state = BreakerState.OPEN
        self.opened_count += 1
        self._open_until = now + self.cooldown
        self._probe_outstanding = False
        self._events.clear()
        _obs_count("recovery.breaker.opened")

    def _close(self) -> None:
        self.state = BreakerState.CLOSED
        self._probe_outstanding = False
        self._events.clear()
        _obs_count("recovery.breaker.closed")

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.state.value}, opened={self.opened_count}, "
            f"window={list(self._events)})"
        )
