"""Deterministic fault injection and graceful degradation.

Crowd platforms must treat partial failure as the normal case: members
stall, depart mid-session, deliver the same answer twice, or return
garbage.  This package makes those failures a *first-class, testable
input* to the serving layer instead of something that only happens in
production:

* :class:`FaultPlan` — a seedable, fully deterministic schedule of
  faults (member timeouts, departures, duplicate deliveries, malformed
  answers, worker-thread crashes) injected at named sites wired through
  :mod:`repro.service`;
* :class:`CircuitBreaker` — the per-member error-rate breaker the
  :class:`~repro.service.manager.SessionManager` uses to quarantine
  misbehaving members (closed → open → half-open probing) instead of
  burning retry attempts on them;
* :func:`run_chaos_campaign` — seeded chaos campaigns mixing every fault
  kind, run under the dynamic lock-order checker, that verify the
  engine's durability invariants (no acknowledged answer lost, no answer
  applied twice, the planted bad member quarantined, MSPs identical to a
  serial run);
* :func:`run_total_chaos_campaign` — the whole-stack escalation: kill
  *any* component (gateway process, shard worker, the coordinator
  itself, client connections) at seeded points and prove the same
  serial-MSP-identity plus zero-reask / zero-double-charge gates, with
  per-component MTTR in the report (``benchmarks/bench_chaos.py``).

Every injection and breaker transition emits a ``faults.*`` /
``recovery.*`` counter registered in :mod:`repro.observability.names`.
The failure model, recovery protocol and breaker state machine are
documented in ``docs/RELIABILITY.md``; the CLI entry point is
``repro chaos``.
"""

from .breaker import BreakerState, CircuitBreaker
from .chaos import ChaosReport, run_chaos_campaign, run_chaos_once
from .plan import (
    DuplicateDelivery,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    MALFORMED_SUPPORT,
    SITES,
    chaos_plan,
)
from .total_chaos import (
    COMPONENTS,
    run_total_chaos_campaign,
    run_total_chaos_once,
)

__all__ = [
    "BreakerState",
    "COMPONENTS",
    "ChaosReport",
    "CircuitBreaker",
    "DuplicateDelivery",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrash",
    "MALFORMED_SUPPORT",
    "SITES",
    "chaos_plan",
    "run_chaos_campaign",
    "run_chaos_once",
    "run_total_chaos_campaign",
    "run_total_chaos_once",
]
