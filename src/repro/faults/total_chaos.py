"""Whole-stack chaos: kill *any* component, finish with the serial MSPs.

PR 7 killed shards, PR 5 killed sessions, and the fault plan killed
member answers — each behind its own harness.  This module is the
kill-anything campaign that exercises every recovery path in one run:

``gateway``
    a journaled :class:`~repro.gateway.app.GatewayApp` is served over
    loopback HTTP, then its server is stopped cold mid-campaign and a
    *fresh* app is rebuilt from the same journal on the same port.
    Member clients span the outage on their jittered retry budgets and
    resume with their original bearer tokens.
``shard``
    one worker process of a supervised fleet is SIGKILLed mid-serve;
    the :class:`~repro.service.supervisor.ShardSupervisor` must detect
    the corpse and restart it from its WAL without operator help.
``coordinator``
    the shard coordinator itself "crashes" (:meth:`abort` — hard
    teardown, no handshakes) and a fresh coordinator built over the
    same ``durable_dir`` must recover purely from the shard WALs.
``client``
    connections are dropped by an injected ``DISCONNECT`` fault plan
    and members deliberately re-send answers under the same
    idempotency key — retries must be exactly-once.

Every scenario is gated on the same invariants: final MSP sets
identical to an uninterrupted serial ``engine.execute`` (the paper's
oracle), **zero re-asks** (no member is asked again for a node whose
answer was acknowledged as applied) and **zero double-charges** (no
session cache holds two answers from one member for one assignment).
Per-component MTTR — detect→serving wall seconds — lands in the
report; ``benchmarks/bench_chaos.py`` turns a campaign into
``BENCH_chaos.json`` and gates the supervisor restart p95.

Determinism: seeds drive the fault plan, the member jitter and the
crowd build, so a failing ``(seed, domain)`` pair is a bug report.
"""

from __future__ import annotations

import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from .plan import FaultKind, FaultPlan, FaultSpec

#: thresholds cycled across a campaign's sessions (matches replay_campaign)
_THRESHOLDS = (0.2, 0.3, 0.4, 0.5)

#: the components a total-chaos run kills, in execution order
COMPONENTS = ("gateway", "shard", "coordinator", "client")


# ----------------------------------------------------------------- utilities


def _percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an unsorted sample sequence."""
    ordered = sorted(samples)
    if not ordered:
        raise ValueError("no samples")
    rank = max(0, min(len(ordered) - 1, int(q * len(ordered))))
    return ordered[rank]


def _serial_msps(
    dataset: Any,
    engine: Any,
    query: str,
    crowd_size: int,
    sample_size: int,
    seed: int,
    cache: Dict[str, List[str]],
) -> List[str]:
    """The serial oracle's MSP set for ``query`` (memoized per query)."""
    from ..service.simulation import build_identical_crowd

    if query not in cache:
        baseline = build_identical_crowd(
            dataset, crowd_size, seed=seed, prefix="serial-m"
        )
        result = engine.execute(query, baseline, sample_size=sample_size)
        cache[query] = sorted(repr(a) for a in result.all_msps)
    return cache[query]


def _audit_double_charge(app: Any) -> List[str]:
    """Zero-double-charge gate: one answer per (session, assignment, member)."""
    manager = app._manager
    if manager is None:
        return []
    violations: List[str] = []
    for session in manager.sessions():
        for assignment in session.cache.assignments():
            charged = [m for m, _ in session.cache.answers_for(assignment)]
            doubled = sorted({m for m in charged if charged.count(m) > 1})
            if doubled:
                violations.append(
                    f"session {session.session_id}: {assignment!r} "
                    f"charged more than once to {doubled}"
                )
    return violations


# ------------------------------------------------------- gateway-side drivers


def _tracked_member_loop(
    host: str,
    port: int,
    token: str,
    member: Any,
    done: threading.Event,
    wait: float,
    errors: List[str],
    reasks: List[str],
    duplicate_every: int,
    duplicates_sent: List[int],
) -> None:
    """A member thread that audits the zero-reask guarantee as it answers.

    Tracks every ``(session, facts)`` node whose answer came back
    applied (``recorded``/``passed``): seeing such a node dispatched to
    this member *again* is a re-ask of an acknowledged answer — the
    exact thing durable sessions and WAL resume exist to prevent.  With
    ``duplicate_every > 0`` every Nth applied answer is immediately
    re-submitted under the same idempotency key; the retry must come
    back with the original outcome (the exactly-once probe).
    """
    from ..crowd.questions import ConcreteQuestion
    from ..gateway.client import GatewayClient, GatewayClientError, RetryPolicy
    from ..gateway.schema import facts_from_wire

    # per-member deterministic jitter with a budget wide enough to span
    # a gateway restart mid-campaign
    policy = RetryPolicy(
        retries=12, budget_s=60.0, seed=sum(ord(ch) for ch in member.member_id)
    )
    applied: Set[Tuple[str, Tuple[Tuple[str, str, str], ...]]] = set()
    answered = 0
    client = GatewayClient(host, port, token=token, retry=policy)
    try:
        while not done.is_set():
            try:
                batch = client.next_questions(wait=wait)
            except GatewayClientError as error:
                if error.status == 429:
                    time.sleep(0.01)  # backpressure: let answers drain
                    continue
                if done.is_set():
                    return  # campaign over; the failed poll is moot
                errors.append(f"{member.member_id}: {error}")
                return
            for question in batch.questions:
                node = (question.session_id, question.facts)
                if node in applied:
                    reasks.append(
                        f"{member.member_id} re-asked acknowledged node "
                        f"{question.qid} in {question.session_id}"
                    )
                fact_set = facts_from_wire(question.facts)
                answer = member.answer_concrete(
                    ConcreteQuestion(question.qid, fact_set)
                )
                key = f"{member.member_id}:{question.qid}"
                try:
                    response = client.submit_answer(
                        question.qid, answer.support, idempotency_key=key
                    )
                except GatewayClientError as error:
                    if error.status == 404:
                        continue  # reaped while we were answering
                    if done.is_set():
                        return
                    errors.append(f"{member.member_id}: {error}")
                    return
                if response.outcome not in ("recorded", "passed"):
                    continue
                applied.add(node)
                answered += 1
                if duplicate_every > 0 and answered % duplicate_every == 0:
                    duplicates_sent[0] += 1
                    try:
                        retry = client.submit_answer(
                            question.qid, answer.support, idempotency_key=key
                        )
                    except GatewayClientError as error:
                        if error.status == 404 or done.is_set():
                            continue
                        errors.append(f"{member.member_id}: {error}")
                        return
                    if retry.outcome != response.outcome:
                        errors.append(
                            f"{member.member_id}: duplicate of {question.qid} "
                            f"came back {retry.outcome!r}, first was "
                            f"{response.outcome!r}"
                        )
    finally:
        client.close()


def _rebind(app: Any, host: str, port: int) -> Any:
    """Bring a restarted gateway up on the port the fleet is retrying."""
    from ..gateway.http import serve_in_thread

    last: Optional[Exception] = None
    for _attempt in range(20):
        try:
            return serve_in_thread(app, host=host, port=port)
        except (RuntimeError, OSError) as error:
            # the old listener may linger a beat; the clients' retry
            # budgets dwarf this wait
            last = error
            time.sleep(0.05)
    raise RuntimeError(f"could not rebind gateway on {host}:{port}: {last}")


def _gateway_campaign(
    *,
    seed: int,
    domain: str,
    sessions: int,
    crowd_size: int,
    sample_size: int,
    kill_after_questions: Optional[int],
    faults: Optional[FaultPlan],
    duplicate_every: int,
    wait: float,
    max_runtime: float,
) -> Dict[str, Any]:
    """One loopback campaign with optional mid-flight gateway restart."""
    from ..engine.engine import OassisEngine
    from ..gateway.app import GatewayApp
    from ..gateway.client import GatewayClient, RetryPolicy
    from ..gateway.http import serve_in_thread
    from ..service.simulation import DOMAINS, build_identical_crowd

    dataset = DOMAINS[domain]()
    violations: List[str] = []
    killed = False
    mttr: Optional[float] = None
    restored: Optional[Dict[str, int]] = None
    with tempfile.TemporaryDirectory(prefix="total-chaos-gw-") as scratch:
        journal = str(Path(scratch) / "gateway.journal")
        app = GatewayApp(journal_path=journal, faults=faults)
        handle = serve_in_thread(app)
        host, port = handle.host, handle.port
        admin = GatewayClient(
            host, port, retry=RetryPolicy(retries=12, budget_s=60.0, seed=seed)
        )
        admin.activate(domain)
        session_ids: List[str] = []
        queries: Dict[str, str] = {}
        for index in range(sessions):
            accepted = admin.pose_query(
                threshold=_THRESHOLDS[index % len(_THRESHOLDS)],
                sample_size=sample_size,
                session_id=f"{domain}-{index}",
            )
            session_ids.append(accepted.session_id)
            queries[accepted.session_id] = accepted.query

        members = build_identical_crowd(dataset, crowd_size, seed=seed)
        done = threading.Event()
        errors: List[str] = []
        reasks: List[str] = []
        duplicates_sent = [0]
        threads: List[threading.Thread] = []
        for member in members:
            joined = admin.join(member.member_id)
            thread = threading.Thread(
                target=_tracked_member_loop,
                args=(
                    host,
                    port,
                    joined.token,
                    member,
                    done,
                    wait,
                    errors,
                    reasks,
                    duplicate_every,
                    duplicates_sent,
                ),
                name=f"chaos-member-{member.member_id}",
                daemon=True,
            )
            threads.append(thread)
            thread.start()

        results: Dict[str, Any] = {}
        deadline = time.perf_counter() + max_runtime
        timed_out = False
        try:
            while True:
                for sid in session_ids:
                    results[sid] = admin.result(sid)
                answered = sum(r.questions_asked for r in results.values())
                if (
                    kill_after_questions is not None
                    and not killed
                    and answered >= kill_after_questions
                ):
                    killed = True
                    down_at = time.perf_counter()
                    handle.stop()
                    # a crash keeps nothing in memory; closing only
                    # releases the journal handle (appends are on disk)
                    app.close()
                    app = GatewayApp(journal_path=journal, faults=faults)
                    handle = _rebind(app, host, port)
                    mttr = time.perf_counter() - down_at
                    restored = app.restored
                if all(r.done for r in results.values()):
                    break
                if errors:
                    break
                if time.perf_counter() >= deadline:
                    timed_out = True
                    break
                time.sleep(0.02)
        finally:
            done.set()
            for thread in threads:
                thread.join(timeout=10.0)
            admin.close()
            handle.stop()
            app.close()

        engine = OassisEngine(dataset.ontology)  # type: ignore[attr-defined]
        serial_cache: Dict[str, List[str]] = {}
        mismatches: List[Dict[str, Any]] = []
        for sid in session_ids:
            expected = _serial_msps(
                dataset,
                engine,
                queries[sid],
                crowd_size,
                sample_size,
                seed,
                serial_cache,
            )
            got = list(results[sid].msps) if sid in results else []
            if got != expected:
                mismatches.append(
                    {"session": sid, "expected": expected, "got": got}
                )
        double_charges = _audit_double_charge(app)

    if timed_out:
        violations.append("campaign hit max_runtime before settling")
    violations.extend(errors)
    violations.extend(reasks)
    violations.extend(double_charges)
    if mismatches:
        violations.append(
            f"{len(mismatches)} session(s) diverged from serial MSPs"
        )
    if kill_after_questions is not None:
        if not killed:
            violations.append("gateway kill never triggered")
        elif restored is None or restored.get("sessions", 0) < 1:
            violations.append(
                "restarted gateway did not restore sessions from its journal"
            )
    return {
        "seed": seed,
        "domain": domain,
        "killed": killed,
        "mttr_seconds": round(mttr, 4) if mttr is not None else None,
        "restored": restored,
        "questions_answered": sum(
            r.questions_asked for r in results.values()
        ),
        "duplicates_sent": duplicates_sent[0],
        "reasks": len(reasks),
        "double_charges": len(double_charges),
        "mismatches": mismatches,
        "faults_injected": faults.injected() if faults is not None else {},
        "ok": not violations,
        "violations": violations,
    }


# ----------------------------------------------------------------- scenarios


def _gateway_scenario(
    seed: int, domain: str, *, sessions: int, crowd_size: int,
    sample_size: int, kill_after_questions: int, max_runtime: float,
) -> Dict[str, Any]:
    """Kill the gateway process mid-campaign; restore from its journal."""
    report = _gateway_campaign(
        seed=seed,
        domain=domain,
        sessions=sessions,
        crowd_size=crowd_size,
        sample_size=sample_size,
        kill_after_questions=kill_after_questions,
        faults=None,
        duplicate_every=0,
        wait=0.2,
        max_runtime=max_runtime,
    )
    report["component"] = "gateway"
    return report


def _client_scenario(
    seed: int, domain: str, *, sessions: int, crowd_size: int,
    sample_size: int, max_runtime: float,
) -> Dict[str, Any]:
    """Drop client connections and re-send answers; retries stay exactly-once."""
    plan = FaultPlan(
        [FaultSpec("gateway.request", FaultKind.DISCONNECT, rate=0.04, limit=6)],
        seed=seed,
    )
    report = _gateway_campaign(
        seed=seed,
        domain=domain,
        sessions=sessions,
        crowd_size=crowd_size,
        sample_size=sample_size,
        kill_after_questions=None,
        faults=plan,
        duplicate_every=3,
        wait=0.2,
        max_runtime=max_runtime,
    )
    report["component"] = "client"
    report["mttr_seconds"] = None  # nothing dies: the wire just misbehaves
    if report["duplicates_sent"] < 1:
        report["ok"] = False
        report["violations"].append(
            "no duplicate answers were sent; the exactly-once probe is vacuous"
        )
    return report


def _shard_scenario(
    seed: int, domain: str, *, shards: int, sessions: int, crowd_size: int,
    sample_size: int, after_nodes: int, max_runtime: float,
) -> Dict[str, Any]:
    """SIGKILL one shard; the supervisor must restart it unassisted."""
    from ..service.shard.simulation import run_sharded_simulation

    with tempfile.TemporaryDirectory(prefix="total-chaos-shard-") as scratch:
        report = run_sharded_simulation(
            domain=domain,
            shards=shards,
            sessions=sessions,
            crowd_size=crowd_size,
            sample_size=sample_size,
            max_runtime=max_runtime,
            verify=True,
            seed=seed,
            durable_dir=scratch,
            chaos_kill=(seed % shards, after_nodes),
            chaos_kill_mode="supervised",
            supervise=True,
        )
    supervisor = report["supervisor"]
    violations: List[str] = []
    if report["timed_out"]:
        violations.append("campaign hit max_runtime before settling")
    if not report["chaos"]["triggered"]:
        violations.append("shard kill never triggered")
    if not report["verified"]:
        violations.append(
            f"{len(report['mismatches'])} session(s) diverged from serial MSPs"
        )
    if supervisor["restarts"] < 1:
        violations.append("supervisor never restarted the killed shard")
    samples = supervisor["restart_seconds"]
    return {
        "component": "shard",
        "seed": seed,
        "domain": domain,
        "killed_shard": seed % shards,
        "mttr_seconds": round(max(samples), 4) if samples else None,
        "restart_seconds": samples,
        "supervisor": supervisor,
        "questions_answered": report["questions_answered"],
        "wal_replayed": report["wal_replayed"],
        "mismatches": report["mismatches"],
        "ok": not violations,
        "violations": violations,
    }


class _CoordinatorCrash(RuntimeError):
    """Raised by the chaos hook to unwind the serve loop mid-flight."""


def _coordinator_scenario(
    seed: int, domain: str, *, shards: int, sessions: int, crowd_size: int,
    sample_size: int, after_nodes: int, max_runtime: float,
) -> Dict[str, Any]:
    """Crash the coordinator; a fresh one recovers from shard WALs alone."""
    from ..engine.engine import OassisEngine
    from ..service.shard.coordinator import ShardCoordinator
    from ..service.shard.simulation import _verify_against_serial
    from ..service.simulation import DOMAINS, build_identical_crowd

    dataset = DOMAINS[domain]()
    violations: List[str] = []
    mttr: Optional[float] = None
    crashed = False
    report: Optional[Dict[str, Any]] = None
    mismatches: List[Dict[str, Any]] = []
    with tempfile.TemporaryDirectory(prefix="total-chaos-coord-") as scratch:
        crash = {"done": False}

        def _hook(coordinator: ShardCoordinator) -> None:
            if crash["done"] or coordinator.nodes_classified < after_nodes:
                return
            crash["done"] = True
            coordinator.abort()
            raise _CoordinatorCrash("injected coordinator crash")

        def _build(hook: Any) -> Tuple[OassisEngine, ShardCoordinator]:
            engine = OassisEngine(dataset.ontology)  # type: ignore[attr-defined]
            return engine, ShardCoordinator(
                dataset,
                shards=shards,
                crowd_size=crowd_size,
                sample_size=sample_size,
                domain=domain,
                seed=seed,
                engine=engine,
                durable_dir=scratch,
                max_runtime=max_runtime,
                chaos_hook=hook,
            )

        queries = {
            f"{domain}-{index}": dataset.query(
                _THRESHOLDS[index % len(_THRESHOLDS)]
            )
            for index in range(sessions)
        }
        _engine, first = _build(_hook)
        try:
            first.start()
            for sid, query in queries.items():
                first.create_session(query, sid)
            first.serve()
        except _CoordinatorCrash:
            crashed = True
        finally:
            if not crashed:
                first.close()

        if not crashed:
            violations.append(
                f"coordinator crash never triggered: fewer than "
                f"{after_nodes} nodes classified"
            )
        else:
            down_at = time.perf_counter()
            engine, second = _build(None)
            try:
                second.start()
                mttr = time.perf_counter() - down_at
                for sid, query in queries.items():
                    second.create_session(query, sid)
                second.serve()
            finally:
                second.close()
            report = second.report()
            verified, mismatches = _verify_against_serial(
                engine,
                second,
                queries,
                dataset,
                crowd_size,
                sample_size,
                seed,
                build_identical_crowd,
            )
            if report["timed_out"]:
                violations.append("recovery campaign hit max_runtime")
            if report["wal_replayed"] < 1:
                violations.append(
                    "fresh coordinator replayed nothing from the shard WALs"
                )
            if not verified:
                violations.append(
                    f"{len(mismatches)} session(s) diverged from serial MSPs"
                )
    return {
        "component": "coordinator",
        "seed": seed,
        "domain": domain,
        "crashed": crashed,
        "mttr_seconds": round(mttr, 4) if mttr is not None else None,
        "wal_replayed": report["wal_replayed"] if report is not None else 0,
        "questions_answered": (
            report["questions_answered"] if report is not None else 0
        ),
        "mismatches": mismatches,
        "ok": not violations,
        "violations": violations,
    }


# ------------------------------------------------------------------ campaign


def run_total_chaos_once(
    *,
    seed: int,
    domain: str = "demo",
    sessions: int = 2,
    crowd_size: int = 4,
    sample_size: int = 3,
    shards: int = 3,
    shard_crowd_size: int = 9,
    shard_sessions: int = 4,
    kill_after_questions: int = 4,
    after_nodes: int = 4,
    max_runtime: float = 120.0,
) -> Dict[str, Any]:
    """Kill every component once for ``(seed, domain)``; return the verdict.

    Runs the four scenarios in :data:`COMPONENTS` order.  The gateway
    and client scenarios share the HTTP campaign sizes
    (``sessions``/``crowd_size``); the shard and coordinator scenarios
    use the fleet sizes (``shards``/``shard_crowd_size``/
    ``shard_sessions``) so every shard owns enough members to serve a
    quota.
    """
    scenarios = {
        "gateway": _gateway_scenario(
            seed,
            domain,
            sessions=sessions,
            crowd_size=crowd_size,
            sample_size=sample_size,
            kill_after_questions=kill_after_questions,
            max_runtime=max_runtime,
        ),
        "shard": _shard_scenario(
            seed,
            domain,
            shards=shards,
            sessions=shard_sessions,
            crowd_size=shard_crowd_size,
            sample_size=sample_size,
            after_nodes=after_nodes,
            max_runtime=max_runtime,
        ),
        "coordinator": _coordinator_scenario(
            seed,
            domain,
            shards=shards,
            sessions=shard_sessions,
            crowd_size=shard_crowd_size,
            sample_size=sample_size,
            after_nodes=after_nodes,
            max_runtime=max_runtime,
        ),
        "client": _client_scenario(
            seed,
            domain,
            sessions=sessions,
            crowd_size=crowd_size,
            sample_size=sample_size,
            max_runtime=max_runtime,
        ),
    }
    violations = [
        f"{name}: {violation}"
        for name in COMPONENTS
        for violation in scenarios[name]["violations"]
    ]
    return {
        "seed": seed,
        "domain": domain,
        "scenarios": scenarios,
        "mttr_seconds": {
            name: scenarios[name]["mttr_seconds"] for name in COMPONENTS
        },
        "ok": not violations,
        "violations": violations,
    }


def run_total_chaos_campaign(
    seeds: Sequence[int] = (0, 1, 2),
    domains: Sequence[str] = ("demo", "travel"),
    **options: Any,
) -> Dict[str, Any]:
    """Sweep :func:`run_total_chaos_once` over ``seeds × domains``.

    Aggregates per-component MTTR (max / nearest-rank p95 over every
    incident) and the supervisor's restart samples; extra keyword
    options are forwarded verbatim to each run.
    """
    runs: List[Dict[str, Any]] = []
    for domain in domains:
        for seed in seeds:
            runs.append(run_total_chaos_once(seed=seed, domain=domain, **options))
    mttr: Dict[str, Optional[Dict[str, Any]]] = {}
    for name in COMPONENTS:
        samples = [
            run["mttr_seconds"][name]
            for run in runs
            if run["mttr_seconds"][name] is not None
        ]
        mttr[name] = (
            {
                "incidents": len(samples),
                "max_seconds": round(max(samples), 4),
                "p95_seconds": round(_percentile(samples, 0.95), 4),
                "mean_seconds": round(sum(samples) / len(samples), 4),
            }
            if samples
            else None
        )
    restart_samples = [
        sample
        for run in runs
        for sample in run["scenarios"]["shard"]["restart_seconds"]
    ]
    return {
        "seeds": list(seeds),
        "domains": list(domains),
        "runs": runs,
        "ok": all(run["ok"] for run in runs),
        "mttr": mttr,
        "supervisor_restart_p95_seconds": (
            round(_percentile(restart_samples, 0.95), 4)
            if restart_samples
            else None
        ),
    }


__all__ = ["COMPONENTS", "run_total_chaos_campaign", "run_total_chaos_once"]
