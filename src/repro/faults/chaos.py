"""Seeded chaos campaigns: every fault kind at once, invariants checked.

A chaos run serves several concurrent sessions of one experiment domain
while a :func:`~repro.faults.plan.chaos_plan` injects member timeouts,
duplicate deliveries, one abrupt departure, worker-thread crashes and a
*planted always-malformed member* — all deterministically from one seed.
The run is instrumented with the dynamic lock-order checker and audited
end to end; afterwards :func:`run_chaos_once` verifies the engine's
durability invariants:

* every session settled (no wedged dispatch state);
* **no acknowledged answer lost** — every submission the manager
  acknowledged as ``RECORDED`` is present in the session's cache (and,
  when WAL-backed, in the journal on disk);
* **no question answered twice** — at most one recorded answer per
  (assignment, member) in every cache, despite injected duplicates;
* no malformed support value leaked past validation into a cache;
* the planted bad member's circuit breaker tripped (quarantine works);
* zero lock-order violations;
* the MSP set of every session equals a serial run of the same query
  (identical members make this exact even under chaos — the injected
  faults may cost retries, never answers).

A failing seed is a reproducible bug report: rerun ``repro chaos
--seeds N`` and the identical fault schedule replays.

Imports of :mod:`repro.service` happen lazily inside the functions —
the service layer itself imports :mod:`repro.faults` for its injection
sites, and this module sits above both.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from .plan import FaultPlan, chaos_plan

#: the lock roles that must never be co-held (docs/SERVICE.md)
FORBIDDEN_LOCK_PAIRS = (("service.manager", "service.session"),)


@dataclass
class ChaosReport:
    """Outcome of one seeded chaos run."""

    seed: int
    domain: str
    sessions: int
    completed_sessions: int
    answers_recorded: int
    faults_injected: Dict[str, int]
    breaker_opened: Dict[str, int]
    violations: List[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "domain": self.domain,
            "sessions": self.sessions,
            "completed_sessions": self.completed_sessions,
            "answers_recorded": self.answers_recorded,
            "faults_injected": dict(self.faults_injected),
            "breaker_opened": dict(self.breaker_opened),
            "violations": list(self.violations),
            "elapsed_seconds": self.elapsed_seconds,
            "ok": self.ok,
        }


def run_chaos_once(
    *,
    seed: int,
    domain: str = "demo",
    sessions: int = 4,
    workers: int = 3,
    crowd_size: int = 6,
    sample_size: int = 3,
    crashes: int = 2,
    durable_dir: Optional[str] = None,
    verify_msps: bool = True,
    max_runtime: float = 30.0,
    faults: Optional[FaultPlan] = None,
) -> ChaosReport:
    """One seeded chaos run; returns the invariant-checked report.

    ``faults`` overrides the default :func:`chaos_plan` (tests inject
    custom mixes).  ``durable_dir`` adds the WAL journal + checkpoint
    layer, extending the no-lost-answer invariant to the on-disk
    journal.  Requires ``crowd_size - 2 >= sample_size`` so quarantining
    the bad member and one departure cannot starve the aggregator.
    """
    from ..analysis import lockcheck
    from ..crowd.journal import replay_journal
    from ..service.simulation import run_simulation

    if crowd_size - 2 < sample_size:
        raise ValueError(
            "crowd_size - 2 must be >= sample_size (one planted bad member "
            "and one departure must leave a full sample)"
        )
    bad_member = "m0"
    departing_member = f"m{crowd_size - 1}"
    plan = (
        faults
        if faults is not None
        else chaos_plan(
            seed=seed,
            bad_member=bad_member,
            departing_member=departing_member,
            timeout_rate=0.05,
            duplicate_rate=0.08,
            crashes=crashes,
        )
    )
    started = time.perf_counter()
    checker = lockcheck.current_checker()
    own_checker = checker is None
    if own_checker:
        checker = lockcheck.install(
            lockcheck.LockOrderChecker(forbid_together=FORBIDDEN_LOCK_PAIRS)
        )
    try:
        report = run_simulation(
            domain=domain,
            sessions=sessions,
            workers=workers,
            crowd_size=crowd_size,
            sample_size=sample_size,
            question_timeout=0.2,
            backoff_base=0.01,
            max_runtime=max_runtime,
            verify=verify_msps,
            seed=seed,
            faults=plan,
            durable_dir=durable_dir,
            checkpoint_every=5 if durable_dir is not None else 0,
            breaker_window=4,
            breaker_cooldown=0.05,
            audit=True,
            _keep_handles=True,
        )
    finally:
        if own_checker:
            lockcheck.uninstall()
    elapsed = time.perf_counter() - started
    manager = report.pop("_manager")
    runner = report.pop("_runner")

    violations: List[str] = []
    completed = sum(
        1 for s in report["sessions"].values() if s["state"] == "completed"
    )
    if report.get("timed_out"):
        violations.append("run timed out before every session settled")
    for session_id, info in report["sessions"].items():
        if info["state"] == "open":
            violations.append(f"session {session_id} never settled")
    if not report.get("verified", True):
        for mismatch in report.get("mismatches", []):
            violations.append(
                f"MSP mismatch in session {mismatch['session']}"
            )

    # durability invariants, from the runner's audit trail
    recorded = 0
    per_session_cache: Dict[str, Dict[str, List[str]]] = {}
    for session in manager.sessions():
        answers: Dict[str, List[str]] = {}
        for assignment in session.cache.assignments():
            members = [m for m, _ in session.cache.answers_for(assignment)]
            answers[repr(assignment)] = members
            if len(members) != len(set(members)):
                violations.append(
                    f"answer applied twice in {session.session_id}: "
                    f"{assignment!r}"
                )
            for member, support in session.cache.answers_for(assignment):
                if not 0.0 <= support <= 1.0:
                    violations.append(
                        f"malformed support {support} leaked into "
                        f"{session.session_id} cache from {member}"
                    )
        per_session_cache[session.session_id] = answers
    seen_recorded = set()
    for entry in runner.audit or []:
        if entry["outcome"] != "recorded":
            continue
        recorded += 1
        key = (entry["session_id"], entry["assignment"], entry["member_id"])
        if key in seen_recorded:
            violations.append(f"answer acknowledged twice: {key}")
        seen_recorded.add(key)
        cached = per_session_cache.get(str(entry["session_id"]), {})
        if str(entry["member_id"]) not in cached.get(str(entry["assignment"]), []):
            violations.append(f"acknowledged answer lost from cache: {key}")
    if durable_dir is not None:
        for session in manager.sessions():
            journal = f"{durable_dir}/{session.session_id}.wal"
            records, corrupt = replay_journal(journal)
            if corrupt:
                violations.append(
                    f"{corrupt} corrupt journal lines in {journal}"
                )
            journaled = {(r.key, r.member) for r in records}
            for key_repr, members in per_session_cache[
                session.session_id
            ].items():
                for member in members:
                    if (key_repr, member) not in journaled:
                        violations.append(
                            "acknowledged answer missing from journal: "
                            f"({session.session_id}, {key_repr}, {member})"
                        )

    breaker_opened = report.get("breaker_opened", {})
    if faults is None and breaker_opened.get(bad_member, 0) < 1:
        violations.append(
            f"planted bad member {bad_member} was never quarantined"
        )
    if checker is not None and checker.violations:
        violations.extend(f"lock-order: {v}" for v in checker.violations)

    return ChaosReport(
        seed=seed,
        domain=domain,
        sessions=sessions,
        completed_sessions=completed,
        answers_recorded=recorded,
        faults_injected=plan.injected(),
        breaker_opened=dict(breaker_opened),
        violations=violations,
        elapsed_seconds=elapsed,
    )


def run_chaos_campaign(
    seeds: Sequence[int] = (0, 1, 2),
    *,
    domain: str = "demo",
    durable_dir: Optional[str] = None,
    **options: Union[int, float, bool, None],
) -> Dict[str, object]:
    """Run :func:`run_chaos_once` for each seed; aggregate the verdict.

    ``durable_dir`` gets one subdirectory per seed so journals never
    collide across runs.  Extra keyword options are forwarded verbatim.
    """
    reports: List[ChaosReport] = []
    for seed in seeds:
        seed_dir = (
            f"{durable_dir}/seed-{seed}" if durable_dir is not None else None
        )
        reports.append(
            run_chaos_once(
                seed=seed,
                domain=domain,
                durable_dir=seed_dir,
                **options,  # type: ignore[arg-type]
            )
        )
    return {
        "domain": domain,
        "seeds": list(seeds),
        "ok": all(report.ok for report in reports),
        "total_faults_injected": sum(
            sum(report.faults_injected.values()) for report in reports
        ),
        "reports": [report.as_dict() for report in reports],
    }
