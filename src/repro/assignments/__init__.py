"""Assignments, the semantic lattice, and the lazy query-driven generator."""

from .assignment import Assignment, canonical_facts, canonical_values
from .generator import QueryAssignmentSpace
from .lattice import AssignmentSpace, ExplicitDAG

__all__ = [
    "Assignment",
    "AssignmentSpace",
    "ExplicitDAG",
    "QueryAssignmentSpace",
    "canonical_facts",
    "canonical_values",
]
