"""Lazy, query-driven assignment space (Section 5 of the paper).

Given an ontology and a parsed OASSIS-QL query, :class:`QueryAssignmentSpace`
exposes the expanded assignment DAG of Algorithm 1, generated on demand:

* the *valid* multiplicity-1 assignments come from evaluating the WHERE
  clause with the SPARQL engine;
* the space is *expanded* with every generalization of a valid assignment
  (Algorithm 1, line 1), obtained by walking each value up the taxonomy
  within the query-derived caps (Figure 3's dashed nodes);
* assignments with multiplicities are produced lazily by adding values —
  the combination rule of Proposition 5.1 — rather than eagerly
  materializing the exponentially large multi-value space;
* multiplicity 0 drops meta-facts; its validity is checked against the
  WHERE clause with the dropped variables' patterns removed, per the
  paper's treatment in Section 5;
* MORE extensions come from two sources: a caller-supplied candidate pool
  (every pool fact is offered as a successor), and — matching the paper's
  "more" button — crowd proposals registered at run time via
  :meth:`QueryAssignmentSpace.propose_more_fact`.

Blanks (``[]``) in the SATISFYING clause are rewritten to hidden variables
pinned at wildcard values, which the fact order treats as "anything".
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..observability import count as _obs_count, get_tracer, span as _obs_span
from ..ontology.facts import Fact, FactSet
from ..ontology.graph import INSTANCE_OF, SUBCLASS_OF, Ontology
from ..oassisql.ast import (
    MetaFact,
    Query,
    SatisfyingClause,
    SatTerm,
)
from ..sparql.ast import BGP, Blank, Concrete, RelationPattern, Var
from ..sparql.bindings import Binding
from ..sparql.engine import SparqlEngine
from ..vocabulary.terms import (
    ANY_ELEMENT,
    ANY_RELATION_WILDCARD,
    Element,
    Term,
)
from .assignment import Assignment
from .lattice import AssignmentSpace


class QueryAssignmentSpace(AssignmentSpace[Assignment]):
    """The expanded assignment DAG of an OASSIS-QL query, built lazily."""

    def __init__(
        self,
        ontology: Ontology,
        query: Query,
        more_pool: Iterable[Fact] = (),
        max_values_per_var: int = 3,
        max_more_facts: int = 2,
    ):
        self.ontology = ontology
        self.vocabulary = ontology.vocabulary
        self.query = query
        self.more_pool: Tuple[Fact, ...] = tuple(more_pool)
        self.max_values_per_var = max_values_per_var
        self.max_more_facts = max_more_facts

        self.satisfying = _resolve_blanks(query.satisfying)
        self._hidden_values = _hidden_fixed_values(self.satisfying)
        self._sat_vars: Tuple[str, ...] = tuple(
            v.name
            for v in self.satisfying.variables()
            if v.name not in self._hidden_values
        )

        self._engine = SparqlEngine(ontology)
        with _obs_span("sparql.match"):
            self._solutions: List[Binding] = (
                list(self._engine.solutions(query.where))
                if query.where is not None
                else []
            )
        where_vars = {v.name for v in query.where_variables()}
        self._shared_vars = tuple(v for v in self._sat_vars if v in where_vars)
        self._free_vars = tuple(v for v in self._sat_vars if v not in where_vars)

        self._caps = self._compute_caps()
        self._universes: Dict[str, FrozenSet[Term]] = {}
        self._top_cache: Dict[str, FrozenSet[Term]] = {}
        # dropped-subset -> (constrained remaining vars, set of value tuples)
        self._reduced_cache: Dict[FrozenSet[str], Tuple[Tuple[str, ...], Set[Tuple]]] = {}
        # memoized traversal structure: regenerating successors dominates the
        # mining runtime otherwise (every BFS pass re-derives them)
        self._succ_cache: Dict[Assignment, List[Assignment]] = {}
        self._pred_cache: Dict[Assignment, List[Assignment]] = {}
        self._valid_cache: Dict[Assignment, bool] = {}
        self._expansion_cache: Dict[Assignment, bool] = {}
        self._roots_cache: Optional[List[Assignment]] = None
        # MORE facts proposed by the crowd (the UI's "more" button): extra
        # successors registered per node, verified like any other assignment
        self._proposed_more: Dict[Assignment, List[Assignment]] = {}
        # per-dropped-subset inverted index: var -> value -> tuple bitmask,
        # making expansion checks bitwise-AND work instead of per-tuple leq
        self._tuple_index: Dict[FrozenSet[str], Dict[str, Dict[Term, int]]] = {}
        # (dropped, var, value) -> (witness values, domination mask): the
        # concrete tuple values the assignment value generalizes, and the
        # OR of their tuple masks.  Memoized across expansion checks — the
        # same few hundred (var, value) pairs recur for every candidate
        # node, and recomputing them per node used to dominate travel runs
        self._witness_memo: Dict[
            Tuple[FrozenSet[str], str, Term], Tuple[Tuple[Term, ...], int]
        ] = {}
        # per-assignment leq digests (see leq()); invalidated when either
        # order's version stamp moves, like every closure-derived cache
        self._digest_stamp: Tuple[int, int] = (-1, -1)
        self._left_digest: Dict[Assignment, tuple] = {}
        self._right_digest: Dict[Assignment, tuple] = {}
        # chain-partition sort keys for ordered_successors (lazy)
        self._chain_stamp: Tuple[int, int] = (-1, -1)
        self._chain_pos: Dict[Term, Tuple[int, int]] = {}

    # ------------------------------------------------------------ valid base

    def where_solutions(self) -> List[Binding]:
        """The raw WHERE-clause solutions (all WHERE variables bound)."""
        return list(self._solutions)

    def valid_base_assignments(self) -> List[Assignment]:
        """The multiplicity-1 valid assignments (the SPARQL results)."""
        seen: Set[Assignment] = set()
        ordered: List[Assignment] = []
        for values in self._base_tuples(frozenset()):
            assignment = self._assignment_from_tuple(self._shared_vars, values)
            if assignment not in seen:
                seen.add(assignment)
                ordered.append(assignment)
        return ordered

    def _base_tuples(self, dropped: FrozenSet[str]) -> Set[Tuple]:
        """Valid value tuples for the shared vars not in ``dropped``."""
        remaining, tuples = self._reduced_solutions(dropped)
        return tuples

    def _reduced_solutions(
        self, dropped: FrozenSet[str]
    ) -> Tuple[Tuple[str, ...], Set[Tuple]]:
        """WHERE solutions with patterns mentioning ``dropped`` removed."""
        cached = self._reduced_cache.get(dropped)
        if cached is not None:
            return cached
        remaining = tuple(v for v in self._shared_vars if v not in dropped)
        if self.query.where is None or not remaining:
            result: Tuple[Tuple[str, ...], Set[Tuple]] = (remaining, set())
            self._reduced_cache[dropped] = result
            return result
        if not dropped:
            tuples = {
                tuple(solution.get(name) for name in remaining)
                for solution in self._solutions
                if all(name in solution for name in remaining)
            }
            result = (remaining, tuples)
            self._reduced_cache[dropped] = result
            return result
        patterns = [
            p
            for p in self.query.where
            if not any(
                isinstance(part, Var) and part.name in dropped
                for part in (p.subject, p.relation.term, p.obj)
            )
        ]
        if not patterns:
            result = (remaining, set())
            self._reduced_cache[dropped] = result
            return result
        reduced_bgp = BGP(patterns)
        constrained = tuple(
            name
            for name in remaining
            if any(name == v.name for v in reduced_bgp.variables())
        )
        tuples = {
            tuple(solution.get(name) for name in constrained)
            for solution in self._engine.solutions(reduced_bgp)
            if all(name in solution for name in constrained)
        }
        result = (constrained, tuples)
        self._reduced_cache[dropped] = result
        return result

    def _assignment_from_tuple(
        self, names: Sequence[str], values: Sequence[Term]
    ) -> Assignment:
        mapping = {name: {value} for name, value in zip(names, values)}
        for hidden, fixed in self._hidden_values.items():
            mapping[hidden] = {fixed}
        return Assignment.make(self.vocabulary, mapping)

    # ------------------------------------------------------------- universes

    def _compute_caps(self) -> Dict[str, FrozenSet[Element]]:
        """Per-variable generalization caps inferred from the WHERE clause.

        ``$v subClassOf* C`` and ``$v instanceOf C`` cap ``v`` at ``C``;
        ``$v instanceOf $w`` inherits ``w``'s cap.  Variables without a
        discovered cap fall back to the element-order roots.
        """
        caps: Dict[str, Set[Element]] = {}
        if self.query.where is None:
            return {}
        # first pass: direct caps
        for pattern in self.query.where:
            rel = pattern.relation.term
            if not isinstance(rel, Concrete):
                continue
            if not isinstance(pattern.subject, Var):
                continue
            if isinstance(pattern.obj, Concrete) and rel.name in (
                SUBCLASS_OF,
                INSTANCE_OF,
            ):
                caps.setdefault(pattern.subject.name, set()).add(Element(pattern.obj.name))
        # second pass: $v instanceOf $w picks up $w's cap
        for pattern in self.query.where:
            rel = pattern.relation.term
            if (
                isinstance(rel, Concrete)
                and rel.name == INSTANCE_OF
                and isinstance(pattern.subject, Var)
                and isinstance(pattern.obj, Var)
                and pattern.obj.name in caps
            ):
                caps.setdefault(pattern.subject.name, set()).update(
                    caps[pattern.obj.name]
                )
        return {name: frozenset(values) for name, values in caps.items()}

    def universe(self, name: str) -> FrozenSet[Term]:
        """All candidate values for variable ``name`` in the expanded space.

        For WHERE-bound variables: the generalization closure of the valid
        values, intersected with the descendants of the variable's caps.
        For free variables: every element (or relation, for relation-position
        variables) in the vocabulary.
        """
        cached = self._universes.get(name)
        if cached is not None:
            return cached
        if name in self._hidden_values:
            result: FrozenSet[Term] = frozenset({self._hidden_values[name]})
        elif name in self._free_vars:
            result = self._free_universe(name)
        else:
            result = self._shared_universe(name)
        self._universes[name] = result
        return result

    def _free_universe(self, name: str) -> FrozenSet[Term]:
        if self._is_relation_var(name):
            return frozenset(self.vocabulary.relations)
        return frozenset(self.vocabulary.elements - {ANY_ELEMENT})

    def _shared_universe(self, name: str) -> FrozenSet[Term]:
        index = self._shared_vars.index(name)
        base_values: Set[Term] = set()
        for values in self._base_tuples(frozenset()):
            base_values.add(values[index])
        closure: Set[Term] = set()
        for value in base_values:
            closure.update(self.vocabulary.ancestors(value))
        caps = self._caps.get(name)
        if caps:
            allowed: Set[Term] = set()
            for cap in caps:
                if cap in self.vocabulary.element_order:
                    allowed.update(self.vocabulary.descendants(cap))
            closure &= allowed
        return frozenset(closure)

    def _is_relation_var(self, name: str) -> bool:
        for meta_fact in self.satisfying.meta_facts:
            term = meta_fact.relation.term
            if isinstance(term, Var) and term.name == name:
                return True
        return False

    def top_values(self, name: str) -> FrozenSet[Term]:
        """The most general candidate values of variable ``name``."""
        cached = self._top_cache.get(name)
        if cached is not None:
            return cached
        universe = self.universe(name)
        result = frozenset(
            u
            for u in universe
            if not any(
                u != w and self.vocabulary.leq(w, u) for w in universe
            )
        )
        self._top_cache[name] = result
        return result

    # ------------------------------------------------------- space interface

    def roots(self) -> List[Assignment]:
        """Most general assignments: top values for mandatory variables."""
        if self._roots_cache is not None:
            return list(self._roots_cache)
        mandatory: List[str] = []
        for name in self._sat_vars:
            if self._min_multiplicity(name) >= 1:
                mandatory.append(name)
        choice_lists = [sorted(self.top_values(name)) for name in mandatory]
        if any(not choices for choices in choice_lists):
            return []
        roots: List[Assignment] = []
        seen: Set[Assignment] = set()
        for combo in itertools.product(*choice_lists):
            mapping = {name: {value} for name, value in zip(mandatory, combo)}
            for hidden, fixed in self._hidden_values.items():
                mapping[hidden] = {fixed}
            assignment = Assignment.make(self.vocabulary, mapping)
            if assignment not in seen and self.in_expansion(assignment):
                seen.add(assignment)
                roots.append(assignment)
        self._roots_cache = roots
        return list(roots)

    def successors(self, node: Assignment) -> List[Assignment]:
        tracer = get_tracer()
        cached = self._succ_cache.get(node)
        if cached is not None:
            if tracer is not None:
                tracer.count("lattice.succ_cache.hits")
            return list(cached)
        if tracer is not None:
            tracer.count("lattice.succ_cache.misses")
        with _obs_span("lattice.expand"):
            out: List[Assignment] = []
            seen: Set[Assignment] = set()

            def emit(candidate: Assignment) -> None:
                if (
                    candidate not in seen
                    and candidate != node
                    and self.leq(node, candidate)
                    and self.in_expansion(candidate)
                ):
                    seen.add(candidate)
                    out.append(candidate)

            for name in self._sat_vars:
                universe = self.universe(name)
                current = node.get(name)
                # (i) specialize one value by one taxonomy edge (the sorted
                # child tuples are memoized in the orders, so expansion is
                # deterministic and allocation-free per step)
                for value in current:
                    for child in self.vocabulary.children_sorted(value):
                        if child in universe:
                            emit(
                                node.with_replaced_value(
                                    self.vocabulary, name, value, child
                                )
                            )
                # (ii) add an incomparable value (lazy combination, Prop. 5.1)
                if len(current) < self._max_values(name):
                    for candidate in self._addable_values(name, current):
                        emit(node.with_value(self.vocabulary, name, candidate))
            # (iii) append a MORE fact from the configured pool
            if self.satisfying.more and len(node.more) < self.max_more_facts:
                for fact in self.more_pool:
                    emit(node.with_more_fact(self.vocabulary, fact))
            # (iv) crowd-proposed MORE extensions (the UI's "more" button)
            for proposed in self._proposed_more.get(node, ()):
                emit(proposed)
            self._succ_cache[node] = out
            if tracer is not None and out:
                tracer.count("lattice.successors.generated", len(out))
            return list(out)

    def ordered_successors(self, node: Assignment) -> List[Assignment]:
        """Successors in chain-partitioned question order.

        Taxonomy chains (greedy path decomposition, per the complexity
        companion paper) group the successors so a top-down traversal
        descends one chain at a time: specializations along a chain come
        first (ordered by chain, then position), then added incomparable
        values, then MORE extensions.  The order is fully deterministic —
        ties break on ``repr`` — which also makes runs reproducible across
        interpreter hash seeds.
        """
        successors = self.successors(node)
        if len(successors) <= 1:
            return list(successors)
        return sorted(
            successors, key=lambda s: self._successor_sort_key(node, s)
        )

    def _successor_sort_key(
        self, node: Assignment, successor: Assignment
    ) -> Tuple[int, int, int, str]:
        """(kind, chain id, chain position, repr) of one successor edge."""
        if len(successor.more) > len(node.more):
            return (2, 0, 0, repr(successor))
        for name in self._sat_vars:
            old = node.get(name)
            new = successor.get(name)
            if new == old:
                continue
            added = new - old
            if added:
                value = min(added)
                chain_id, position = self._chain_position(value)
                kind = 0 if len(new) == len(old) else 1
                return (kind, chain_id, position, repr(successor))
        return (3, 0, 0, repr(successor))

    def _chain_position(self, value: Term) -> Tuple[int, int]:
        """Chain coordinates of ``value`` across both orders (memoized)."""
        stamp = (
            self.vocabulary.element_order.version,
            self.vocabulary.relation_order.version,
        )
        if stamp != self._chain_stamp:
            element_chains = self.vocabulary.element_order.chain_partition()
            relation_chains = self.vocabulary.relation_order.chain_partition()
            offset = len(element_chains)
            merged = dict(element_chains)
            for term, (chain_id, position) in relation_chains.items():
                merged[term] = (chain_id + offset, position)
            self._chain_pos = merged
            self._chain_stamp = stamp
        return self._chain_pos.get(value, (-1, 0))

    def propose_more_fact(self, node: Assignment, fact: Fact) -> Optional[Assignment]:
        """Register a crowd-proposed MORE extension of ``node``.

        This is the paper's "more" button: instead of enumerating candidate
        MORE facts at every assignment (which would multiply the question
        load), extensions enter the DAG only when a member volunteers one;
        the extension is then verified with concrete questions like any
        other assignment.  Returns the extended assignment, or None when the
        query has no MORE clause, the extension budget is exhausted, or the
        fact adds nothing.
        """
        if not self.satisfying.more or len(node.more) >= self.max_more_facts:
            return None
        extended = node.with_more_fact(self.vocabulary, fact)
        if extended == node or not node.strictly_leq(extended, self.vocabulary):
            return None
        bucket = self._proposed_more.setdefault(node, [])
        if extended not in bucket:
            bucket.append(extended)
            self._succ_cache.pop(node, None)
        return extended

    def predecessors(self, node: Assignment) -> List[Assignment]:
        cached = self._pred_cache.get(node)
        if cached is not None:
            return list(cached)
        out: List[Assignment] = []
        seen: Set[Assignment] = set()

        def emit(candidate: Assignment) -> None:
            if candidate not in seen and candidate != node and self.leq(candidate, node):
                seen.add(candidate)
                out.append(candidate)

        for name in self._sat_vars:
            universe = self.universe(name)
            current = node.get(name)
            for value in current:
                # (i) generalize one value by one taxonomy edge
                for parent in self.vocabulary.parents_sorted(value):
                    if parent in universe:
                        emit(
                            node.with_replaced_value(
                                self.vocabulary, name, value, parent
                            )
                        )
                # (ii) drop a value (inverse of lazy combination)
                if len(current) > 1 or self._min_multiplicity(name) == 0:
                    remaining = dict(node.values)
                    remaining[name] = frozenset(v for v in current if v != value)
                    emit(Assignment(remaining, node.more))
        for fact in node.more:
            remaining_more = frozenset(f for f in node.more if f != fact)
            emit(Assignment(node.values, remaining_more))
        self._pred_cache[node] = out
        return list(out)

    def leq(self, a: Assignment, b: Assignment) -> bool:
        """Def. 4.1 domination, accelerated with the closure bitsets.

        Each assignment is compiled once into a *digest*: per variable the
        descendant bitsets of its values (left side) and the OR of its
        values' interned-id bits (right side), plus the componentwise
        analogue for MORE facts.  ``a ≤ b`` then reduces to a handful of
        bitwise ANDs instead of nested ``vocabulary.leq`` loops — this is
        the innermost comparison of classification inference, called tens
        of millions of times per crowd run.  Digests are invalidated when
        either order's version stamp moves (the standard contract; see
        docs/PERFORMANCE.md).
        """
        if a is b:
            return True
        stamp = (
            self.vocabulary.element_order.version,
            self.vocabulary.relation_order.version,
        )
        if stamp != self._digest_stamp:
            self._left_digest.clear()
            self._right_digest.clear()
            self._digest_stamp = stamp
        left = self._left_digest.get(a)
        if left is None:
            left = self._compile_left_digest(a)
            self._left_digest[a] = left
        right = self._right_digest.get(b)
        if right is None:
            right = self._compile_right_digest(b)
            self._right_digest[b] = right
        value_masks, more_right = right
        for name, regs, unregs in left[0]:
            masks = value_masks.get(name)
            if masks is None:
                return False
            elem_mask, rel_mask = masks
            for desc, is_elem in regs:
                if not desc & (elem_mask if is_elem else rel_mask):
                    return False
            if unregs:
                b_vals = b.values[name]
                for term in unregs:
                    if term not in b_vals:
                        return False
        for fact_checks in left[1]:
            for g in more_right:
                if all(
                    mode == 0
                    or (mode == 1 and payload & g_bit)
                    or (mode == 2 and payload == g_term)
                    for (mode, payload), (g_bit, g_term) in zip(fact_checks, g)
                ):
                    break
            else:
                return False
        return True

    def _compile_left_digest(self, a: Assignment) -> tuple:
        """Digest of ``a`` as the left (more general) side of ``leq``.

        Per variable: ``(name, regs, unregs)`` where ``regs`` holds the
        descendant bitset of each order-registered value (tagged by kind)
        and ``unregs`` the values the orders do not know — those only match
        themselves, exactly like ``vocabulary.leq``'s reflexive fallback.
        """
        element_order = self.vocabulary.element_order
        relation_order = self.vocabulary.relation_order
        vals = []
        for name, values in a.values.items():
            regs = []
            unregs = []
            for v in values:
                is_elem = isinstance(v, Element)
                order = element_order if is_elem else relation_order
                bits = order.descendants_bits(v)
                if bits:
                    regs.append((bits, is_elem))
                else:
                    unregs.append(v)
            vals.append((name, tuple(regs), tuple(unregs)))
        more = tuple(
            (
                self._left_fact_component(f.subject, element_order, ANY_ELEMENT),
                self._left_fact_component(
                    f.relation, relation_order, ANY_RELATION_WILDCARD
                ),
                self._left_fact_component(f.obj, element_order, ANY_ELEMENT),
            )
            for f in a.more
        )
        return (tuple(vals), more)

    @staticmethod
    def _left_fact_component(term: Term, order, wildcard: Term) -> Tuple[int, object]:
        """One MORE-fact component check: 0=wildcard, 1=bitset, 2=exact."""
        if term == wildcard:
            return (0, None)
        bits = order.descendants_bits(term)
        if bits:
            return (1, bits)
        return (2, term)

    def _compile_right_digest(self, b: Assignment) -> tuple:
        """Digest of ``b`` as the right (more specific) side of ``leq``."""
        element_order = self.vocabulary.element_order
        relation_order = self.vocabulary.relation_order
        value_masks: Dict[str, Tuple[int, int]] = {}
        for name, values in b.values.items():
            elem_mask = 0
            rel_mask = 0
            for v in values:
                if isinstance(v, Element):
                    tid = element_order.term_id(v)
                    if tid is not None:
                        elem_mask |= 1 << tid
                else:
                    tid = relation_order.term_id(v)
                    if tid is not None:
                        rel_mask |= 1 << tid
            value_masks[name] = (elem_mask, rel_mask)

        def bit_of(order, term):
            tid = order.term_id(term)
            return 0 if tid is None else 1 << tid

        more = tuple(
            (
                (bit_of(element_order, f.subject), f.subject),
                (bit_of(relation_order, f.relation), f.relation),
                (bit_of(element_order, f.obj), f.obj),
            )
            for f in b.more
        )
        return (value_masks, more)

    def is_valid(self, node: Assignment) -> bool:
        """Validity w.r.t. the WHERE clause and multiplicity annotations."""
        cached = self._valid_cache.get(node)
        if cached is not None:
            return cached
        result = self._compute_valid(node)
        self._valid_cache[node] = result
        return result

    def _compute_valid(self, node: Assignment) -> bool:
        if node.more and not self.satisfying.more:
            return False
        if not self._multiplicities_ok(node):
            return False
        dropped = frozenset(
            name for name in self._shared_vars if not node.get(name)
        )
        constrained, tuples = self._reduced_solutions(dropped)
        if constrained:
            value_lists = [sorted(node.get(name)) for name in constrained]
            for combo in itertools.product(*value_lists):
                if tuple(combo) not in tuples:
                    return False
        # free variables: any value drawn from their universe is acceptable
        for name in self._free_vars:
            universe = self.universe(name)
            if any(value not in universe for value in node.get(name)):
                return False
        return True

    def in_expansion(self, node: Assignment) -> bool:
        """Is ``node`` in the expanded set ``A`` of Algorithm 1, line 1?

        ``A = {φ : ∃φ' ∈ A_valid, φ ≤ φ'}`` — the down-closure of the valid
        assignments.  Traversal is restricted to ``A`` (the paper's DAG);
        without this restriction the space would be the full product of the
        per-variable universes, most of which no crowd question should ever
        touch.

        For each value of each WHERE-bound variable we collect its possible
        *witness* values among the valid tuples, then search for a coherent
        witness grid: one witness set per variable whose full cross product
        consists of valid tuples (this is exactly what a valid assignment
        with multiplicities looks like, by Proposition 5.1).  Free variables
        and MORE facts are unconstrained.
        """
        cached = self._expansion_cache.get(node)
        if cached is not None:
            return cached
        result = self._compute_in_expansion(node)
        self._expansion_cache[node] = result
        _obs_count("lattice.expansion.checks")
        return result

    def _compute_in_expansion(self, node: Assignment) -> bool:
        dropped = frozenset(
            name for name in self._shared_vars if not node.get(name)
        )
        constrained, tuples = self._reduced_solutions(dropped)
        relevant = [name for name in constrained if node.get(name)]
        if not relevant or not tuples:
            return bool(tuples) or not relevant
        index = self._get_tuple_index(dropped, constrained, tuples)
        multi = [name for name in relevant if len(node.get(name)) > 1]
        if not multi:
            # single-valued: one dominating tuple suffices — AND the
            # per-(var, value) domination masks and test for a survivor
            surviving = -1
            for name in relevant:
                (value,) = node.get(name)
                _, dominated = self._witness_info(dropped, index, name, value)
                surviving &= dominated
                if not surviving:
                    return False
            return True
        return self._witness_grid_exists(node, relevant, dropped, index)

    def _get_tuple_index(
        self,
        dropped: FrozenSet[str],
        constrained: Tuple[str, ...],
        tuples: Set[Tuple],
    ) -> Dict[str, Dict[Term, int]]:
        """Per variable: concrete value -> bitmask of the tuples holding it."""
        cached = self._tuple_index.get(dropped)
        if cached is not None:
            return cached
        index: Dict[str, Dict[Term, int]] = {name: {} for name in constrained}
        for position, t in enumerate(sorted(tuples, key=repr)):
            bit = 1 << position
            for slot, name in enumerate(constrained):
                per_value = index[name]
                per_value[t[slot]] = per_value.get(t[slot], 0) | bit
        self._tuple_index[dropped] = index
        return index

    def _witness_info(
        self,
        dropped: FrozenSet[str],
        index: Dict[str, Dict[Term, int]],
        name: str,
        value: Term,
    ) -> Tuple[Tuple[Term, ...], int]:
        """Witness values of ``value`` at variable ``name`` + their mask.

        The witnesses are the concrete tuple values ``value`` generalizes
        (``value ≤ w``); the mask is the OR of their tuple bitmasks (the
        tuples with *some* witness for ``value`` at ``name``).  Memoized —
        candidate nodes share (var, value) pairs heavily, and membership in
        the precompiled descendant closure replaces a per-tuple ``leq``
        cascade.
        """
        key = (dropped, name, value)
        cached = self._witness_memo.get(key)
        if cached is not None:
            return cached
        per_value = index[name]
        # intersect the closure with the index keys, iterating the smaller
        # side (the closure can span thousands of terms at paper scale
        # while the tuple index stays query-sized)
        descendants = self.vocabulary.descendants(value)
        witnesses: List[Term] = []
        mask = 0
        if len(per_value) < len(descendants):
            for specialization, bits in per_value.items():
                if specialization in descendants:
                    witnesses.append(specialization)
                    mask |= bits
        else:
            for specialization in descendants:
                bits = per_value.get(specialization)
                if bits:
                    witnesses.append(specialization)
                    mask |= bits
        result = (tuple(sorted(witnesses, key=lambda t: t.name)), mask)
        self._witness_memo[key] = result
        return result

    def _witness_grid_exists(self, node, relevant, dropped, index) -> bool:
        """Search for per-variable witness sets whose grid is all-valid."""
        # witness options per (variable, value)
        options: List[Tuple[str, Tuple[Term, ...]]] = []
        for name in relevant:
            for value in sorted(node.get(name), key=lambda t: t.name):
                witnesses, _ = self._witness_info(dropped, index, name, value)
                if not witnesses:
                    return False
                options.append((name, witnesses))

        def grid_ok(choice: Dict[str, Set[Term]]) -> bool:
            # every cross-product selection of the chosen witness values
            # must be realized by some tuple: AND the exact-value masks
            value_lists = [
                sorted(choice[n], key=lambda t: t.name) for n in relevant
            ]
            for combo in itertools.product(*value_lists):
                mask = -1
                for name, value in zip(relevant, combo):
                    mask &= index[name].get(value, 0)
                    if not mask:
                        return False
            return True

        # brute force over witness choices with a safety cap
        total = 1
        for _, witnesses in options:
            total *= len(witnesses)
            if total > 20000:
                # fall back to the (slightly looser) per-selection test
                return self._selectionwise_dominated(node, relevant, dropped, index)
        tried: Set[Tuple[Tuple[Term, ...], ...]] = set()
        for combo in itertools.product(*(w for _, w in options)):
            choice: Dict[str, Set[Term]] = {}
            for (name, _), witness in zip(options, combo):
                choice.setdefault(name, set()).add(witness)
            fingerprint = tuple(
                tuple(sorted(choice[n], key=lambda t: t.name)) for n in relevant
            )
            if fingerprint in tried:
                continue
            tried.add(fingerprint)
            if grid_ok(choice):
                return True
        return False

    def _selectionwise_dominated(self, node, relevant, dropped, index) -> bool:
        """Looser fallback: every single-value selection has a witness tuple."""
        masks: Dict[Tuple[str, Term], int] = {}
        for name in relevant:
            for value in node.get(name):
                _, dominated = self._witness_info(dropped, index, name, value)
                masks[(name, value)] = dominated
        value_lists = [sorted(node.get(name)) for name in relevant]
        for combo in itertools.product(*value_lists):
            surviving = -1
            for name, value in zip(relevant, combo):
                surviving &= masks[(name, value)]
                if not surviving:
                    return False
        return True

    def _multiplicities_ok(self, node: Assignment) -> bool:
        for var in self.satisfying.variables():
            if var.name in self._hidden_values:
                continue
            multiplicity = self.satisfying.multiplicity_of(var)
            if not multiplicity.admits(len(node.get(var.name))):
                return False
        return True

    # --------------------------------------------------------------- helpers

    def _min_multiplicity(self, name: str) -> int:
        for var in self.satisfying.variables():
            if var.name == name:
                return self.satisfying.multiplicity_of(var).minimum
        return 1

    def _max_values(self, name: str) -> int:
        for var in self.satisfying.variables():
            if var.name == name:
                maximum = self.satisfying.multiplicity_of(var).maximum
                if maximum is None:
                    return self.max_values_per_var
                return maximum
        return 1

    def _addable_values(
        self, name: str, current: FrozenSet[Term]
    ) -> List[Term]:
        """Most general universe values incomparable to all current values."""
        universe = self.universe(name)
        incomparable = [
            u
            for u in universe
            if all(not self.vocabulary.comparable(u, v) for v in current)
        ]
        tops = [
            u
            for u in incomparable
            if not any(
                u != w and self.vocabulary.leq(w, u) for w in incomparable
            )
        ]
        return sorted(tops, key=lambda t: t.name)

    def instantiate(self, node: Assignment) -> FactSet:
        """``φ(A_SAT)`` for this query's (blank-resolved) SATISFYING clause."""
        return node.instantiate(self.satisfying)


def _resolve_blanks(satisfying: SatisfyingClause) -> SatisfyingClause:
    """Rewrite ``[]`` occurrences to hidden wildcard-pinned variables."""
    counter = itertools.count()
    new_meta_facts: List[MetaFact] = []
    for meta_fact in satisfying.meta_facts:
        subject = meta_fact.subject
        relation = meta_fact.relation
        obj = meta_fact.obj
        if isinstance(subject.term, Blank):
            subject = SatTerm(Var(f"__any_{next(counter)}"))
        if isinstance(relation.term, Blank):
            relation = RelationPattern(Var(f"__anyrel_{next(counter)}"))
        if isinstance(obj.term, Blank):
            obj = SatTerm(Var(f"__any_{next(counter)}"))
        new_meta_facts.append(MetaFact(subject, relation, obj))
    return SatisfyingClause(new_meta_facts, satisfying.more, satisfying.threshold)


def _hidden_fixed_values(satisfying: SatisfyingClause) -> Dict[str, Term]:
    """Fixed wildcard values for the hidden variables of ``_resolve_blanks``."""
    fixed: Dict[str, Term] = {}
    for var in satisfying.variables():
        if var.name.startswith("__any_"):
            fixed[var.name] = ANY_ELEMENT
        elif var.name.startswith("__anyrel_"):
            fixed[var.name] = ANY_RELATION_WILDCARD
    return fixed
