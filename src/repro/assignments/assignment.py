"""Assignments with multiplicities and their semantic order (Def. 4.1).

An assignment maps each query variable to a *set* of vocabulary terms
(singleton sets for the default multiplicity; larger sets when ``+``/``*``
multiplicities are in play; the empty set for multiplicity 0).  The MORE
construct contributes a set of extra facts, ordered by the fact order, which
we carry alongside the variable bindings so that a single order relation
covers the whole Figure 3 lattice.

The raw Def. 4.1 relation is a *preorder* on value sets: ``{Sport, Biking}``
and ``{Biking}`` are mutually related because ``Sport ≤ Biking``.  We work
with canonical representatives — antichains of maximal values — which turns
it into a genuine partial order without changing the induced semantics.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set

from ..ontology.facts import Fact, FactSet
from ..oassisql.ast import MetaFact, SatisfyingClause
from ..sparql.ast import Blank, Concrete, StringLiteral, Var
from ..vocabulary.terms import Element, Relation, Term
from ..vocabulary.vocabulary import Vocabulary


def canonical_values(values: Iterable[Term], vocabulary: Vocabulary) -> FrozenSet[Term]:
    """The antichain of ``≤``-maximal (most specific) values in ``values``."""
    pool = set(values)
    return frozenset(
        v
        for v in pool
        if not any(v != w and vocabulary.leq(v, w) for w in pool)
    )


def canonical_facts(facts: Iterable[Fact], vocabulary: Vocabulary) -> FrozenSet[Fact]:
    """The antichain of maximal (most specific) facts in ``facts``."""
    pool = set(facts)
    return frozenset(
        f
        for f in pool
        if not any(f != g and f.leq(g, vocabulary) for g in pool)
    )


class Assignment:
    """An immutable assignment ``variable -> set of terms`` plus MORE facts.

    Instances should be built through :meth:`make` (or a space's factory) so
    value sets are canonicalized against the vocabulary; the raw constructor
    trusts its inputs.
    """

    __slots__ = ("values", "more", "_hash")

    def __init__(
        self,
        values: Mapping[str, FrozenSet[Term]],
        more: FrozenSet[Fact] = frozenset(),
    ):
        # drop empty value sets: a variable at multiplicity 0 simply does
        # not constrain anything, and omitting it keeps equality canonical
        self.values: Dict[str, FrozenSet[Term]] = {
            name: frozenset(vals) for name, vals in values.items() if vals
        }
        self.more: FrozenSet[Fact] = frozenset(more)
        self._hash = hash(
            (tuple(sorted((n, tuple(sorted(v))) for n, v in self.values.items())), self.more)
        )

    @classmethod
    def make(
        cls,
        vocabulary: Vocabulary,
        values: Mapping[str, Iterable[Term]],
        more: Iterable[Fact] = (),
    ) -> "Assignment":
        """Canonicalizing constructor."""
        canon = {
            name: canonical_values(vals, vocabulary) for name, vals in values.items()
        }
        return cls(canon, canonical_facts(more, vocabulary))

    @classmethod
    def single(cls, vocabulary: Vocabulary, **bindings: Term) -> "Assignment":
        """Convenience: one value per variable, e.g. ``single(v, x=park)``."""
        return cls.make(vocabulary, {name: {val} for name, val in bindings.items()})

    # -------------------------------------------------------------- protocol

    def get(self, name: str) -> FrozenSet[Term]:
        """Value set of variable ``name`` (empty if unbound/multiplicity 0)."""
        return self.values.get(name, frozenset())

    def variables(self) -> FrozenSet[str]:
        return frozenset(self.values)

    def size(self) -> int:
        """Total number of values plus MORE facts (the 'weight' of the node)."""
        return sum(len(v) for v in self.values.values()) + len(self.more)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Assignment)
            and self.values == other.values
            and self.more == other.more
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        parts = [
            f"{name}->{{{', '.join(sorted(t.name for t in vals))}}}"
            for name, vals in sorted(self.values.items())
        ]
        if self.more:
            parts.append(f"more->{{{', '.join(sorted(str(f) for f in self.more))}}}")
        return f"Assignment({'; '.join(parts)})"

    # ------------------------------------------------------------- semantics

    def leq(self, other: "Assignment", vocabulary: Vocabulary) -> bool:
        """Def. 4.1: every value here has a ≥-specific witness in ``other``.

        MORE facts are compared with the fact order, which matches viewing
        MORE as the sugar ``$u $p $v*`` with per-fact value tuples.
        """
        for name, vals in self.values.items():
            other_vals = other.values.get(name)
            if not other_vals:
                return False
            for v in vals:
                if not any(vocabulary.leq(v, w) for w in other_vals):
                    return False
        for f in self.more:
            if not any(f.leq(g, vocabulary) for g in other.more):
                return False
        return True

    def strictly_leq(self, other: "Assignment", vocabulary: Vocabulary) -> bool:
        return self != other and self.leq(other, vocabulary)

    # --------------------------------------------------------- instantiation

    def instantiate(self, satisfying: SatisfyingClause) -> FactSet:
        """Apply the assignment to the SATISFYING meta-fact-set: ``φ(A_SAT)``.

        Each meta-fact expands to the cross product of its variables' value
        sets; meta-facts touching a variable with an empty value set are
        dropped (multiplicity 0); MORE facts are appended verbatim.
        """
        facts: Set[Fact] = set()
        for meta_fact in satisfying.meta_facts:
            facts.update(self._expand_meta_fact(meta_fact))
        facts.update(self.more)
        return FactSet(facts)

    def _expand_meta_fact(self, meta_fact: MetaFact) -> Set[Fact]:
        subjects = self._position_values(meta_fact.subject.term, Element)
        relations = self._position_values(meta_fact.relation.term, Relation)
        objects = self._position_values(meta_fact.obj.term, Element)
        if subjects is None or relations is None or objects is None:
            return set()  # a variable at multiplicity 0 drops the meta-fact
        return {
            Fact(s, r, o) for s in subjects for r in relations for o in objects
        }

    def _position_values(self, term, expected_type) -> Optional[List[Term]]:
        """Concrete values for one meta-fact position, or None to drop it."""
        if isinstance(term, Concrete):
            return [expected_type(term.name)]
        if isinstance(term, Var):
            vals = self.values.get(term.name)
            if not vals:
                return None
            return sorted(vals, key=lambda t: t.name)
        if isinstance(term, Blank):
            # blanks in the SATISFYING clause are resolved by the engine to
            # fresh variables before assignments are built; an unresolved
            # blank means "don't care", which we cannot instantiate here
            raise ValueError(
                "unresolved blank in SATISFYING meta-fact; "
                "resolve blanks to variables before instantiating"
            )
        if isinstance(term, StringLiteral):
            raise ValueError("string literal cannot appear in a mined fact")
        raise TypeError(f"unexpected meta-fact term {term!r}")

    def satisfies_multiplicities(self, satisfying: SatisfyingClause) -> bool:
        """Do all value-set sizes respect their multiplicity annotations?"""
        for var in satisfying.variables():
            multiplicity = satisfying.multiplicity_of(var)
            if not multiplicity.admits(len(self.values.get(var.name, ()))):
                return False
        if self.more and not satisfying.more:
            return False
        return True

    # ----------------------------------------------------------- derivation

    def with_value(
        self, vocabulary: Vocabulary, name: str, value: Term
    ) -> "Assignment":
        """A copy with ``value`` added to variable ``name`` (canonicalized)."""
        new_values = dict(self.values)
        new_values[name] = canonical_values(
            set(new_values.get(name, frozenset())) | {value}, vocabulary
        )
        return Assignment(new_values, self.more)

    def with_replaced_value(
        self, vocabulary: Vocabulary, name: str, old: Term, new: Term
    ) -> "Assignment":
        """A copy with ``old`` replaced by ``new`` in variable ``name``."""
        current = set(self.values.get(name, frozenset()))
        current.discard(old)
        current.add(new)
        new_values = dict(self.values)
        new_values[name] = canonical_values(current, vocabulary)
        return Assignment(new_values, self.more)

    def with_more_fact(self, vocabulary: Vocabulary, fact: Fact) -> "Assignment":
        """A copy with ``fact`` added to the MORE facts (canonicalized)."""
        return Assignment(
            self.values, canonical_facts(set(self.more) | {fact}, vocabulary)
        )

    def with_replaced_more_fact(
        self, vocabulary: Vocabulary, old: Fact, new: Fact
    ) -> "Assignment":
        """A copy with MORE fact ``old`` replaced by ``new``."""
        facts = set(self.more)
        facts.discard(old)
        facts.add(new)
        return Assignment(self.values, canonical_facts(facts, vocabulary))

    def restrict(self, names: Iterable[str]) -> "Assignment":
        """Project onto the given variable names, dropping MORE facts."""
        wanted = set(names)
        return Assignment(
            {n: v for n, v in self.values.items() if n in wanted}, frozenset()
        )
