"""Assignment-space abstraction and the explicit DAG implementation.

The mining algorithms (Section 4) are written against an abstract
*assignment space*: a partially ordered set of nodes with lazy successor /
predecessor generation, a validity predicate, and the order relation.  Two
implementations exist:

* :class:`ExplicitDAG` — nodes and edges given up front.  Used by the
  synthetic experiments of Section 6.4, where the paper manipulates the DAG
  shape directly, and as the backing store for small test lattices.
* :class:`~repro.assignments.generator.QueryAssignmentSpace` — the lazy,
  query-driven space of Section 5.

Nodes of an :class:`ExplicitDAG` may be any hashable objects (synthetic
experiments use plain integers).
"""

from __future__ import annotations

import abc
from typing import (
    Dict,
    FrozenSet,
    Generic,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    TypeVar,
)

from ..observability import get_tracer

Node = TypeVar("Node", bound=Hashable)


class AssignmentSpace(abc.ABC, Generic[Node]):
    """The traversal interface consumed by the mining algorithms.

    Order convention follows the paper: ``leq(a, b)`` means *b is more
    specific than a*; roots are the most general nodes; successors move
    toward more specific assignments.
    """

    @abc.abstractmethod
    def roots(self) -> List[Node]:
        """The most general nodes (entry points of the top-down traversal)."""

    @abc.abstractmethod
    def successors(self, node: Node) -> List[Node]:
        """Traversal successors of ``node`` (strictly more specific)."""

    @abc.abstractmethod
    def predecessors(self, node: Node) -> List[Node]:
        """Traversal predecessors of ``node`` (strictly more general)."""

    @abc.abstractmethod
    def leq(self, a: Node, b: Node) -> bool:
        """The semantic order: is ``a`` at least as general as ``b``?"""

    @abc.abstractmethod
    def is_valid(self, node: Node) -> bool:
        """Is ``node`` valid w.r.t. the query's WHERE clause?"""

    def descend_iter(self, max_nodes: Optional[int] = None) -> Iterator[Node]:
        """Breadth-first enumeration from the roots (each node once)."""
        tracer = get_tracer()
        seen: Set[Node] = set()
        frontier: List[Node] = list(self.roots())
        for node in frontier:
            seen.add(node)
        index = 0
        while index < len(frontier):
            node = frontier[index]
            index += 1
            if tracer is not None:
                tracer.count("lattice.bfs.nodes")
            yield node
            if max_nodes is not None and len(seen) >= max_nodes:
                continue
            for successor in self.successors(node):
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)

    def all_nodes(self, max_nodes: Optional[int] = None) -> List[Node]:
        """Materialize the space by BFS (bounded by ``max_nodes`` if given)."""
        return list(self.descend_iter(max_nodes=max_nodes))


class ExplicitDAG(AssignmentSpace[Node]):
    """An assignment space given by explicit nodes and immediate edges."""

    def __init__(
        self,
        nodes: Iterable[Node] = (),
        edges: Iterable[Tuple[Node, Node]] = (),
        valid: Optional[Iterable[Node]] = None,
    ):
        self._succ: Dict[Node, Set[Node]] = {}
        self._pred: Dict[Node, Set[Node]] = {}
        self._desc_cache: Dict[Node, FrozenSet[Node]] = {}
        for node in nodes:
            self.add_node(node)
        for parent, child in edges:
            self.add_edge(parent, child)
        self._valid: Optional[Set[Node]] = set(valid) if valid is not None else None

    # ------------------------------------------------------------- building

    def add_node(self, node: Node) -> None:
        if node not in self._succ:
            self._succ[node] = set()
            self._pred[node] = set()
            self._desc_cache.clear()

    def add_edge(self, parent: Node, child: Node) -> None:
        """Add the immediate-successor edge ``parent ⋖ child``."""
        if parent == child:
            raise ValueError(f"self-loop on {parent!r}")
        self.add_node(parent)
        self.add_node(child)
        self._succ[parent].add(child)
        self._pred[child].add(parent)
        self._desc_cache.clear()

    def set_valid(self, valid: Iterable[Node]) -> None:
        """Declare the set of valid nodes (default: all nodes valid)."""
        self._valid = set(valid)

    # ------------------------------------------------------------ interface

    def roots(self) -> List[Node]:
        return [n for n, ps in self._pred.items() if not ps]

    def successors(self, node: Node) -> List[Node]:
        return list(self._succ.get(node, ()))

    def predecessors(self, node: Node) -> List[Node]:
        return list(self._pred.get(node, ()))

    def leq(self, a: Node, b: Node) -> bool:
        if a == b:
            return True
        return b in self.descendants(a)

    def is_valid(self, node: Node) -> bool:
        if self._valid is None:
            return node in self._succ
        return node in self._valid

    # -------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self._succ)

    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def nodes(self) -> List[Node]:
        return list(self._succ)

    def valid_nodes(self) -> List[Node]:
        if self._valid is None:
            return list(self._succ)
        return [n for n in self._succ if n in self._valid]

    def descendants(self, node: Node) -> FrozenSet[Node]:
        """Reflexive-transitive successors of ``node`` (memoized)."""
        cached = self._desc_cache.get(node)
        if cached is not None:
            return cached
        tracer = get_tracer()
        if tracer is not None:
            tracer.count("lattice.desc_cache.misses")
        seen: Set[Node] = {node}
        stack = [node]
        while stack:
            current = stack.pop()
            for child in self._succ.get(current, ()):
                if child not in seen:
                    seen.add(child)
                    stack.append(child)
        result = frozenset(seen)
        self._desc_cache[node] = result
        return result

    def ancestors(self, node: Node) -> FrozenSet[Node]:
        """Reflexive-transitive predecessors of ``node``."""
        seen: Set[Node] = {node}
        stack = [node]
        while stack:
            current = stack.pop()
            for parent in self._pred.get(current, ()):
                if parent not in seen:
                    seen.add(parent)
                    stack.append(parent)
        return frozenset(seen)

    def depth(self, node: Node) -> int:
        """Longest distance from a root (roots have depth 0)."""
        best = 0
        order = self._topological_ancestors(node)
        depths: Dict[Node, int] = {}
        for current in order:
            parents = self._pred.get(current, ())
            depths[current] = 1 + max((depths[p] for p in parents), default=-1)
        return depths[node]

    def _topological_ancestors(self, node: Node) -> List[Node]:
        visited: Set[Node] = set()
        order: List[Node] = []
        stack: List[Tuple[Node, bool]] = [(node, False)]
        while stack:
            current, processed = stack.pop()
            if processed:
                order.append(current)
                continue
            if current in visited:
                continue
            visited.add(current)
            stack.append((current, True))
            for parent in self._pred.get(current, ()):
                if parent not in visited:
                    stack.append((parent, False))
        return order

    def width(self) -> int:
        """Size of the largest depth level (a simple width measure)."""
        levels: Dict[int, int] = {}
        for node in self._succ:
            level = self.depth(node)
            levels[level] = levels.get(level, 0) + 1
        return max(levels.values(), default=0)

    def height(self) -> int:
        """Longest root-to-leaf chain length."""
        return max((self.depth(n) for n in self._succ), default=0)

    def copy(self) -> "ExplicitDAG[Node]":
        dup: ExplicitDAG[Node] = ExplicitDAG()
        for node, children in self._succ.items():
            dup.add_node(node)
            for child in children:
                dup.add_edge(node, child)
        if self._valid is not None:
            dup.set_valid(self._valid)
        return dup
