"""GatewayApp: the transport-independent core of the crowd gateway.

One :class:`GatewayApp` owns the full serving state — the dataset
registry, the active :class:`~repro.engine.engine.OassisEngine` +
:class:`~repro.service.manager.SessionManager` pair, per-member auth
tokens and the qid ledger mapping wire question ids back to live
:class:`~repro.service.manager.DispatchedQuestion` objects.  Both
transports drive it: the asyncio HTTP server (:mod:`repro.gateway.http`)
and the MCP tool surface (:mod:`repro.gateway.mcp`) are thin adapters
that decode a wire DTO, call one method here and encode the result.

Methods raise :class:`GatewayError` subclasses carrying an HTTP status;
the transports map them to 4xx responses (never a 500 — an unhandled
exception is the only thing that becomes a server error).

Thread-safety: the HTTP server serializes calls on its event loop, but
the MCP surface and tests may call from other threads, so the app's own
bookkeeping (tokens, qids, sessions) is guarded by one leaf lock.  The
underlying :class:`SessionManager` has its own documented locking; the
two are never held together.  Journaled mutations (activate / join /
query / mint / answer) additionally serialize on a coarse ``_mutate``
lock so the journal's record order matches the order the state actually
changed; ``_mutate`` is strictly outermost — it may wrap the leaf lock,
the journal's own lock and session-manager calls, and nothing ever
acquires it while holding any of those.

Durability (see ``docs/RELIABILITY.md``): constructed with a
``journal_path``, the app write-ahead-logs every state transition
through :class:`~repro.gateway.journal.GatewayJournal` with an
**apply → journal → acknowledge** discipline — the journal and the
in-memory state die together in a crash, so anything a client saw
acknowledged is in the journal, and anything that is not journaled was
never acknowledged and will be retried by the client.  A fresh app on
the same path restores the active dataset, member tokens, sessions
(answers replayed through the PR 5 lattice-resolve + resume machinery),
the qid mint ledger and the idempotency map before serving.
"""

from __future__ import annotations

import os
import secrets
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..crowd.cache import CrowdCache
from ..crowd.journal import JournalRecord
from ..engine.engine import OassisEngine
from ..faults.plan import FaultPlan
from ..observability import count as _obs_count, span as _obs_span
from ..service.manager import DispatchedQuestion, SessionManager
from ..service.recovery import resolve_journal
from ..service.simulation import DOMAINS
from .journal import GatewayJournal, GatewayLogState, replay_gateway_journal
from .schema import (
    ActivateResponse,
    AnswerResponse,
    DatasetList,
    JoinResponse,
    QueryAccepted,
    QueryRequest,
    QuestionBatch,
    QuestionDTO,
    ResultResponse,
    facts_to_wire,
)


class GatewayError(Exception):
    """A client-attributable failure; ``status`` is the HTTP code."""

    status = 400
    error = "bad_request"

    def __init__(self, detail: str) -> None:
        super().__init__(detail)
        self.detail = detail


class AuthError(GatewayError):
    status = 401
    error = "unauthorized"


class ForbiddenError(GatewayError):
    status = 403
    error = "forbidden"


class NotFoundError(GatewayError):
    status = 404
    error = "not_found"


class ConflictError(GatewayError):
    status = 409
    error = "conflict"


class BackpressureError(GatewayError):
    """The member is at their cross-session in-flight cap (HTTP 429)."""

    status = 429
    error = "backpressure"


@dataclass(frozen=True)
class GatewayConfig:
    """Serving knobs for one gateway (see ``docs/GATEWAY.md``).

    The session-layer fields are forwarded verbatim to
    :class:`~repro.service.config.ServiceConfig`; the long-poll fields
    shape the HTTP ``/next`` endpoint (``long_poll_max_wait`` caps the
    client-requested wait, ``poll_interval`` is the idle re-check
    cadence) and ``slow_client_delay`` is the stall injected by a
    ``SLOW_CLIENT`` fault.
    """

    question_timeout: float = 5.0
    max_attempts: int = 3
    backoff_base: float = 0.01
    in_flight_limit: int = 4
    batch_size: int = 2
    sample_size: int = 3
    scale_deadlines: bool = True
    long_poll_max_wait: float = 10.0
    poll_interval: float = 0.005
    slow_client_delay: float = 0.05


@dataclass
class _MemberRecord:
    member_id: str
    token: str


@dataclass
class _SessionRecord:
    session_id: str
    query_text: str
    qids: List[str] = field(default_factory=list)


class GatewayApp:
    """The gateway's application state: datasets, sessions, members, qids."""

    def __init__(
        self,
        *,
        config: Optional[GatewayConfig] = None,
        datasets: Optional[Mapping[str, Callable[[], object]]] = None,
        admin_token: Optional[str] = None,
        faults: Optional[FaultPlan] = None,
        token_factory: Optional[Callable[[], str]] = None,
        journal_path: Optional["os.PathLike[str] | str"] = None,
        journal_fsync: bool = False,
    ) -> None:
        self.config = config if config is not None else GatewayConfig()
        self.datasets: Dict[str, Callable[[], object]] = dict(
            datasets if datasets is not None else DOMAINS
        )
        #: when set, ``/query``, ``/result`` and ``/datasets/activate``
        #: require it as the bearer token (None = open gateway)
        self.admin_token = admin_token
        #: consulted by the transports at the ``gateway.request`` site
        self.faults = faults
        self._mint = token_factory if token_factory is not None else (
            lambda: secrets.token_hex(16)
        )
        self._lock = threading.Lock()
        self._mutate = threading.Lock()  # serializes journaled mutations
        self._active: Optional[str] = None
        self._dataset: Optional[object] = None
        self._engine: Optional[OassisEngine] = None
        self._manager: Optional[SessionManager] = None
        self._members_by_token: Dict[str, _MemberRecord] = {}
        self._members_by_id: Dict[str, _MemberRecord] = {}
        self._sessions: Dict[str, _SessionRecord] = {}
        self._questions: Dict[str, DispatchedQuestion] = {}
        self._answered: Dict[str, str] = {}  # qid -> first outcome
        #: idempotency key -> (qid, outcome) for exactly-once retries
        self._idempotency: Dict[str, Tuple[str, str]] = {}
        #: pre-crash qids restored from the journal's mint ledger:
        #: qid -> (session_id, assignment key, member_id)
        self._minted: Dict[str, Tuple[str, str, str]] = {}
        self._next_qid = 0
        self._next_session = 0
        self.journal: Optional[GatewayJournal] = None
        #: restore statistics when this app came up from a journal
        self.restored: Optional[Dict[str, int]] = None
        if journal_path is not None:
            path = str(journal_path)
            state: Optional[GatewayLogState] = None
            if os.path.exists(path) and os.path.getsize(path) > 0:
                state = replay_gateway_journal(path)
            self.journal = GatewayJournal(path, fsync=journal_fsync)
            if state is not None and state.dataset is not None:
                self._restore(state)

    # ----------------------------------------------------------------- restore

    def _restore(self, state: GatewayLogState) -> None:
        """Rebuild the serving state a journal describes (crash recovery).

        Mirrors ``activate_dataset`` + PR 5's ``restore_session``: the
        dataset's engine/manager pair is rebuilt, members re-attach with
        their *original* tokens, and each session is re-created with its
        journaled answers resolved onto the fresh lattice (``resume=True``
        so acknowledged answers are never re-asked).  A session whose
        query no longer parses is skipped and counted rather than fatal —
        a stale journal must not brick the gateway.
        """
        name = state.dataset
        if name is None or name not in self.datasets:
            raise RuntimeError(
                f"gateway journal names unknown dataset {name!r}; "
                f"registered: {sorted(self.datasets)}"
            )
        with _obs_span("gateway.restore"):
            dataset = self.datasets[name]()
            engine = OassisEngine(dataset.ontology)  # type: ignore[attr-defined]
            cfg = self.config
            manager = engine.session_manager(
                question_timeout=cfg.question_timeout,
                max_attempts=cfg.max_attempts,
                backoff_base=cfg.backoff_base,
                in_flight_limit=cfg.in_flight_limit,
                batch_size=cfg.batch_size,
                scale_deadlines=cfg.scale_deadlines,
            )
            for member_id, token in state.members.items():
                record = _MemberRecord(member_id=member_id, token=token)
                self._members_by_token[token] = record
                self._members_by_id[member_id] = record
                manager.attach_member(member_id)
            answers_restored = 0
            sessions_restored = 0
            failures = 0
            for session_id, (query_text, sample_size) in state.sessions.items():
                try:
                    parsed = engine._as_query(query_text)
                    space = engine.build_space(parsed)
                    records = [
                        JournalRecord(
                            key=answer["key"],
                            member=answer["member"],
                            support=answer["support"],
                        )
                        for answer in state.session_answers(session_id)
                    ]
                    resolved, _unresolved = resolve_journal(
                        space, parsed.threshold, records
                    )
                    cache = CrowdCache()
                    for assignment, answers in resolved.items():
                        for member_id, support in answers:
                            cache.record(assignment, member_id, support)
                    manager.create_session(
                        query_text,
                        session_id=session_id,
                        cache=cache,
                        resume=True,
                        sample_size=sample_size,
                    )
                except Exception:
                    # counted, not fatal: one unrecoverable session must
                    # not take down the survivors
                    failures += 1
                    _obs_count("gateway.journal.restore_failures")
                    continue
                answers_restored += sum(len(a) for a in resolved.values())
                sessions_restored += 1
                self._sessions[session_id] = _SessionRecord(
                    session_id=session_id, query_text=query_text
                )
            self._active = name
            self._dataset = dataset
            self._engine = engine
            self._manager = manager
            self._answered = dict(state.answered)
            self._idempotency = dict(state.idempotency)
            self._minted = dict(state.mints)
            self._next_qid = state.max_qid_ordinal()
            self._next_session = state.max_session_ordinal()
            self.restored = {
                "sessions": sessions_restored,
                "members": len(state.members),
                "answers": answers_restored,
                "corrupt": state.corrupt,
                "failures": failures,
            }
        _obs_count("gateway.journal.restores")

    def close(self) -> None:
        """Release the journal handle (safe to call repeatedly)."""
        if self.journal is not None:
            self.journal.close()

    # ---------------------------------------------------------------- health

    @property
    def active_dataset(self) -> Optional[str]:
        with self._lock:
            return self._active

    @property
    def engine(self) -> Optional[OassisEngine]:
        """The active dataset's engine (None before activation)."""
        with self._lock:
            return self._engine

    @property
    def dataset(self) -> Optional[object]:
        """The active dataset object (None before activation)."""
        with self._lock:
            return self._dataset

    # -------------------------------------------------------------- datasets

    def list_datasets(self) -> DatasetList:
        with self._lock:
            return DatasetList(
                datasets=tuple(sorted(self.datasets)), active=self._active
            )

    def activate_dataset(self, name: str) -> ActivateResponse:
        """Build the engine + session manager for ``name``.

        Idempotent for the already-active dataset; switching datasets
        while sessions are open is a conflict (cancel them first) —
        an activation tears down all member/session/qid state.
        """
        if name not in self.datasets:
            raise NotFoundError(
                f"unknown dataset {name!r}; pick from {sorted(self.datasets)}"
            )
        with self._mutate:
            with self._lock:
                if self._active == name:
                    return ActivateResponse(name=name, activated=False)
                manager = self._manager
            if manager is not None and any(s.open for s in manager.sessions()):
                raise ConflictError(
                    "cannot switch datasets while sessions are open; "
                    "finish or cancel them first"
                )
            dataset = self.datasets[name]()
            engine = OassisEngine(dataset.ontology)  # type: ignore[attr-defined]
            cfg = self.config
            fresh = engine.session_manager(
                question_timeout=cfg.question_timeout,
                max_attempts=cfg.max_attempts,
                backoff_base=cfg.backoff_base,
                in_flight_limit=cfg.in_flight_limit,
                batch_size=cfg.batch_size,
                scale_deadlines=cfg.scale_deadlines,
            )
            with self._lock:
                self._active = name
                self._dataset = dataset
                self._engine = engine
                self._manager = fresh
                self._members_by_token.clear()
                self._members_by_id.clear()
                self._sessions.clear()
                self._questions.clear()
                self._answered.clear()
                self._idempotency.clear()
                self._minted.clear()
            if self.journal is not None:
                self.journal.log_activate(name)
        _obs_count("gateway.datasets.activated")
        return ActivateResponse(name=name, activated=True)

    def _require_manager(self) -> SessionManager:
        with self._lock:
            manager = self._manager
        if manager is None:
            raise ConflictError(
                "no dataset is active; POST /datasets/activate first"
            )
        return manager

    # ------------------------------------------------------------------ auth

    def require_admin(self, token: Optional[str]) -> None:
        """Operator endpoints: a wrong or missing admin token is a 401."""
        if self.admin_token is None:
            return
        if token != self.admin_token:
            _obs_count("gateway.auth.rejected")
            raise AuthError("admin token required")

    def authenticate(self, token: Optional[str]) -> str:
        """The member id a bearer token identifies; 401 otherwise."""
        if token:
            with self._lock:
                record = self._members_by_token.get(token)
            if record is not None:
                return record.member_id
        _obs_count("gateway.auth.rejected")
        raise AuthError("a member bearer token is required; POST /join first")

    # --------------------------------------------------------------- members

    def join(self, member_id: Optional[str] = None) -> JoinResponse:
        """Attach a member and mint their bearer token.

        Re-joining an existing ``member_id`` is idempotent and returns
        the original token (the retry after an injected disconnect must
        not lock the member out of their own identity).
        """
        manager = self._require_manager()
        with self._mutate:
            with self._lock:
                if member_id is not None and member_id in self._members_by_id:
                    record = self._members_by_id[member_id]
                    return JoinResponse(
                        member_id=record.member_id, token=record.token
                    )
                if member_id is None:
                    member_id = f"w{len(self._members_by_id) + 1}"
                    while member_id in self._members_by_id:
                        member_id = f"w{len(self._members_by_id) + secrets.randbelow(1000) + 2}"
                record = _MemberRecord(member_id=member_id, token=self._mint())
                self._members_by_token[record.token] = record
                self._members_by_id[member_id] = record
            manager.attach_member(member_id)
            if self.journal is not None:
                self.journal.log_join(record.member_id, record.token)
        _obs_count("gateway.members.joined")
        return JoinResponse(member_id=record.member_id, token=record.token)

    # --------------------------------------------------------------- queries

    def pose_query(self, request: QueryRequest) -> QueryAccepted:
        """Open a mining session from a :class:`QueryRequest`."""
        manager = self._require_manager()
        with self._lock:
            dataset = self._dataset
        text = request.query
        if text is None:
            if dataset is None or not hasattr(dataset, "query"):
                raise ConflictError(
                    "no query text given and the active dataset has no "
                    "query template"
                )
            text = dataset.query(request.threshold)  # type: ignore[attr-defined]
        session_id = request.session_id
        with self._mutate:
            with self._lock:
                if session_id is None:
                    self._next_session += 1
                    session_id = f"g{self._next_session}"
                if session_id in self._sessions:
                    raise ConflictError(f"session {session_id!r} already exists")
            try:
                manager.create_session(
                    text, session_id=session_id, sample_size=request.sample_size
                )
            except ValueError as error:
                raise ConflictError(str(error)) from error
            except Exception as error:
                # a query that fails to parse/validate is a client error
                raise GatewayError(f"query rejected: {error}") from error
            with self._lock:
                self._sessions[session_id] = _SessionRecord(
                    session_id=session_id, query_text=text
                )
            if self.journal is not None:
                self.journal.log_query(session_id, text, request.sample_size)
        _obs_count("gateway.queries.posed")
        return QueryAccepted(session_id=session_id, query=text)

    # ------------------------------------------------------------- questions

    def at_capacity(self, member_id: str) -> bool:
        """Is the member at their cross-session in-flight cap?

        The gateway's backpressure reuses the session layer's limit: a
        member holding ``in_flight_limit`` questions gets HTTP 429 from
        ``/next`` instead of an idle long-poll they cannot benefit from.
        """
        manager = self._require_manager()
        held = sum(
            1 for question in manager.in_flight() if question.member_id == member_id
        )
        return held >= self.config.in_flight_limit

    def next_questions(self, member_id: str, k: Optional[int] = None) -> QuestionBatch:
        """One non-waiting dispatch attempt (the long-poll loops on this)."""
        manager = self._require_manager()
        try:
            batch = manager.next_batch(member_id, k)
        except KeyError as error:
            raise ForbiddenError(str(error)) from error
        now = manager.clock()
        questions: List[QuestionDTO] = []
        mints: List[Tuple[str, str, str, str]] = []
        with self._mutate:
            with self._lock:
                for dispatched in batch:
                    self._next_qid += 1
                    qid = f"q{self._next_qid}"
                    self._questions[qid] = dispatched
                    record = self._sessions.get(dispatched.session_id)
                    if record is not None:
                        record.qids.append(qid)
                    facts: Tuple[Tuple[str, str, str], ...] = ()
                    if dispatched.fact_set is not None:
                        facts = facts_to_wire(dispatched.fact_set)
                    mints.append(
                        (
                            qid,
                            dispatched.session_id,
                            repr(dispatched.assignment),
                            dispatched.member_id,
                        )
                    )
                    questions.append(
                        QuestionDTO(
                            qid=qid,
                            session_id=dispatched.session_id,
                            text=dispatched.text,
                            facts=facts,
                            deadline_s=max(0.0, dispatched.deadline - now),
                            attempt=dispatched.attempt,
                        )
                    )
            if self.journal is not None and mints:
                self.journal.log_mint(mints)
        return QuestionBatch(questions=tuple(questions))

    # --------------------------------------------------------------- answers

    def submit_answer(
        self,
        member_id: str,
        qid: str,
        support: Optional[float],
        *,
        idempotency_key: Optional[str] = None,
    ) -> AnswerResponse:
        """Feed one answer to the session layer; duplicates are idempotent.

        A re-submission of an already-answered qid comes back ``stale``
        (the session layer drops the second application), so a client
        that retries after a dropped connection cannot double-count.

        ``idempotency_key`` makes the idempotence survive a gateway
        restart: the first application's outcome is journaled under the
        key, and any retry — to this process or to a restored successor —
        returns the stored outcome without touching the session layer.
        A qid minted by a *previous* incarnation (present in the restored
        mint ledger but with no live dispatch) also resolves ``stale``
        rather than 404: the session layer re-dispatches that node, so
        the late answer is merely obsolete, not unknown.
        """
        manager = self._require_manager()
        with self._mutate:
            if idempotency_key is not None:
                with self._lock:
                    hit = self._idempotency.get(idempotency_key)
                if hit is not None:
                    _obs_count("gateway.answers.deduped")
                    return AnswerResponse(qid=hit[0], outcome=hit[1])
            with self._lock:
                dispatched = self._questions.get(qid)
                already = self._answered.get(qid)
                minted = self._minted.get(qid)
            if dispatched is None:
                if minted is None and already is None:
                    raise NotFoundError(f"unknown question id {qid!r}")
                # pre-crash qid: the live dispatch died with the previous
                # process; its node is re-dispatched by the session layer
                name = already if already is not None else "stale"
                _obs_count("gateway.answers.duplicate")
                with self._lock:
                    if idempotency_key is not None:
                        self._idempotency[idempotency_key] = (qid, name)
                return AnswerResponse(qid=qid, outcome=name)
            if dispatched.member_id != member_id:
                _obs_count("gateway.auth.rejected")
                raise ForbiddenError(
                    f"question {qid} was dispatched to another member"
                )
            outcome = manager.submit(dispatched, support)
            name = outcome.name.lower()
            if already is not None:
                _obs_count("gateway.answers.duplicate")
            elif name in ("recorded", "passed"):
                _obs_count("gateway.answers.accepted")
            with self._lock:
                if already is None:
                    self._answered[qid] = name
                if idempotency_key is not None:
                    self._idempotency[idempotency_key] = (qid, name)
            if (
                self.journal is not None
                and already is None
                and name in ("recorded", "passed")
            ):
                self.journal.log_answer(
                    qid=qid,
                    session_id=dispatched.session_id,
                    key=repr(dispatched.assignment),
                    member_id=member_id,
                    support=support,
                    outcome=name,
                    idempotency_key=idempotency_key,
                )
        return AnswerResponse(qid=qid, outcome=name)

    # --------------------------------------------------------------- results

    def result(self, session_id: str) -> ResultResponse:
        """The session's incremental MSP set (poll until ``done``)."""
        manager = self._require_manager()
        with self._lock:
            if session_id not in self._sessions:
                raise NotFoundError(f"unknown session {session_id!r}")
        manager.all_done()  # probe completion before reporting
        session = manager.session(session_id)
        msps = tuple(sorted(repr(a) for a in session.msps()))
        valid = tuple(sorted(repr(a) for a in session.valid_msps()))
        _obs_count("gateway.results.served")
        return ResultResponse(
            session_id=session_id,
            state=session.state.value,
            done=not session.open,
            questions_asked=session.questions_asked(),
            msps=msps,
            valid_msps=valid,
        )

    def session_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._sessions)

    def all_done(self) -> bool:
        """Are all posed sessions settled?"""
        manager = self._require_manager()
        return manager.all_done()
