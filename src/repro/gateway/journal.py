"""The gateway's session WAL: durable joins, queries, mints and answers.

PR 8 left every token, active dataset, open session and minted qid in
:class:`~repro.gateway.app.GatewayApp` memory — one process restart
stranded every connected member.  This module journals the gateway's
state transitions to an append-only JSONL log (the
:class:`~repro.crowd.journal.AppendLog` machinery: flush-before-ack,
torn-tail healing, atomic compaction) so a crashed gateway restores to
the same externally visible state and clients resume with their
*existing* bearer tokens.

Record vocabulary (the ``t`` field; one JSON object per line)::

    {"v": 1, "t": "activate", "name": "demo"}
    {"v": 1, "t": "join",     "member": "w1", "token": "..."}
    {"v": 1, "t": "query",    "session": "g1", "query": "...", "sample_size": 3}
    {"v": 1, "t": "mint",     "qids": [["q7", "g1", "<key>", "w1"], ...]}
    {"v": 1, "t": "answer",   "qid": "q7", "session": "g1", "key": "<key>",
                              "member": "w1", "support": 0.5,
                              "outcome": "recorded", "ik": "<idempotency key>"}

Ordering discipline (who journals when is the whole durability story):
every mutation follows **apply → journal → acknowledge**, serialized by
the app's ``_mutate`` lock so record order matches state-change order.

* ``join`` / ``query`` / ``activate`` are journaled right after the
  in-memory state mutates and before the response is sent — journal and
  memory die together in a crash, so anything acknowledged is journaled
  and anything unjournaled was never acknowledged; the client retries.
* ``mint`` is journaled when a batch of questions is handed out, so a
  restored gateway still *recognizes* pre-crash qids: an answer for one
  maps to the stale-not-404 path (the session layer re-dispatches the
  node; the member is never locked out).
* ``answer`` is journaled **after** the session layer applied it but
  **before** the HTTP response — an acknowledged answer is always in the
  journal, an unacknowledged one is retried by the client under the same
  idempotency key and applies exactly once in whichever incarnation of
  the gateway receives the retry.

Replay folds the records into a :class:`GatewayLogState`; a later
``activate`` resets everything after it, mirroring the live
``activate_dataset`` teardown.  Answers are deduplicated by
``(session, key, member)`` — the same idempotence identity the crowd
journal uses — so a compacted+uncompacted pair or a duplicated delivery
replays once.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..crowd.journal import AppendLog, replay_log
from ..observability import count as _obs_count

#: gateway journal record schema version (bump on breaking changes)
JOURNAL_VERSION = 1

#: one minted qid: (qid, session_id, assignment key, member_id)
MintEntry = Tuple[str, str, str, str]


class GatewayLogState:
    """The folded state of a gateway journal (what replay reconstructs)."""

    def __init__(self) -> None:
        self.dataset: Optional[str] = None
        #: member_id -> bearer token, in join order
        self.members: Dict[str, str] = {}
        #: session_id -> (query text, sample_size), in pose order
        self.sessions: Dict[str, Tuple[str, int]] = {}
        #: qid -> (session_id, assignment key, member_id)
        self.mints: Dict[str, Tuple[str, str, str]] = {}
        #: answer records in arrival order, deduped by (session, key, member)
        self.answers: List[Dict[str, Any]] = []
        #: qid -> first journaled outcome
        self.answered: Dict[str, str] = {}
        #: idempotency key -> (qid, outcome)
        self.idempotency: Dict[str, Tuple[str, str]] = {}
        self.replayed = 0
        self.corrupt = 0
        self._answer_identities: Set[Tuple[str, str, str]] = set()

    def _reset(self) -> None:
        self.members.clear()
        self.sessions.clear()
        self.mints.clear()
        self.answers.clear()
        self.answered.clear()
        self.idempotency.clear()
        self._answer_identities.clear()

    # ------------------------------------------------------------- folding

    def fold(self, record: Dict[str, Any]) -> bool:
        """Apply one journal record; False when the record is malformed."""
        kind = record.get("t")
        try:
            if kind == "activate":
                self.dataset = str(record["name"])
                self._reset()
            elif kind == "join":
                self.members[str(record["member"])] = str(record["token"])
            elif kind == "query":
                self.sessions[str(record["session"])] = (
                    str(record["query"]),
                    int(record["sample_size"]),
                )
            elif kind == "mint":
                for entry in record["qids"]:
                    qid, session, key, member = (str(part) for part in entry)
                    self.mints[qid] = (session, key, member)
            elif kind == "answer":
                self._fold_answer(record)
            else:
                return False
        except (KeyError, TypeError, ValueError):
            return False
        return True

    def _fold_answer(self, record: Dict[str, Any]) -> None:
        qid = str(record["qid"])
        session = str(record["session"])
        key = str(record["key"])
        member = str(record["member"])
        outcome = str(record["outcome"])
        identity = (session, key, member)
        self.answered.setdefault(qid, outcome)
        ik = record.get("ik")
        if ik:
            self.idempotency.setdefault(str(ik), (qid, outcome))
        if identity in self._answer_identities:
            return
        self._answer_identities.add(identity)
        support = record.get("support")
        self.answers.append(
            {
                "qid": qid,
                "session": session,
                "key": key,
                "member": member,
                "support": None if support is None else float(support),
                "outcome": outcome,
                "ik": None if not ik else str(ik),
            }
        )

    # ------------------------------------------------------------ counters

    def max_qid_ordinal(self) -> int:
        """The largest ``q<N>`` ordinal seen (qid minting resumes past it)."""
        return max(
            (_ordinal(qid, "q") for qid in list(self.mints) + list(self.answered)),
            default=0,
        )

    def max_session_ordinal(self) -> int:
        """The largest auto-assigned ``g<N>`` ordinal seen."""
        return max(
            (_ordinal(sid, "g") for sid in self.sessions), default=0
        )

    def session_answers(self, session_id: str) -> List[Dict[str, Any]]:
        """The session's recorded (support-carrying) answers in order."""
        return [
            answer
            for answer in self.answers
            if answer["session"] == session_id
            and answer["outcome"] == "recorded"
            and answer["support"] is not None
        ]


def _ordinal(identifier: str, prefix: str) -> int:
    if identifier.startswith(prefix) and identifier[len(prefix):].isdigit():
        return int(identifier[len(prefix):])
    return 0


def replay_gateway_journal(
    path: "os.PathLike[str] | str",
) -> GatewayLogState:
    """Fold a gateway journal back into its :class:`GatewayLogState`.

    Corrupt lines and unknown record types are counted and skipped, never
    fatal — the same tolerance the crowd journal applies.  Unknown record
    types count as corrupt so a *newer* gateway's journal degrades loudly
    rather than silently.
    """
    state = GatewayLogState()
    payloads, corrupt = replay_log(path)
    for payload in payloads:
        if state.fold(payload):
            state.replayed += 1
        else:
            corrupt += 1
    state.corrupt = corrupt
    if state.replayed:
        _obs_count("gateway.journal.replayed", state.replayed)
    if corrupt:
        _obs_count("gateway.journal.corrupt_skipped", corrupt)
    return state


class GatewayJournal:
    """The gateway's append-side WAL handle (thread-safe).

    One instance per :class:`~repro.gateway.app.GatewayApp`; every
    ``log_*`` method appends one flushed record under the journal's own
    lock (a leaf lock — never held while calling back into the app or
    the session layer).
    """

    def __init__(
        self, path: "os.PathLike[str] | str", *, fsync: bool = False
    ) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._log = AppendLog(self.path, fsync=fsync)

    # ------------------------------------------------------------- appends

    # the barrier is opt-in (fsync=False by default) and bounded: one
    # line per acknowledged mutation, the price of crash durability
    def _append(self, record: Dict[str, Any]) -> None:  # repro-effects: allow=fsync
        record["v"] = JOURNAL_VERSION
        with self._lock:
            self._log.append(record)
        _obs_count("gateway.journal.appends")

    def log_activate(self, name: str) -> None:
        self._append({"t": "activate", "name": name})

    def log_join(self, member_id: str, token: str) -> None:
        self._append({"t": "join", "member": member_id, "token": token})

    def log_query(self, session_id: str, query: str, sample_size: int) -> None:
        self._append(
            {
                "t": "query",
                "session": session_id,
                "query": query,
                "sample_size": sample_size,
            }
        )

    def log_mint(self, entries: Sequence[MintEntry]) -> None:
        if not entries:
            return
        self._append({"t": "mint", "qids": [list(entry) for entry in entries]})

    def log_answer(
        self,
        *,
        qid: str,
        session_id: str,
        key: str,
        member_id: str,
        support: Optional[float],
        outcome: str,
        idempotency_key: Optional[str],
    ) -> None:
        self._append(
            {
                "t": "answer",
                "qid": qid,
                "session": session_id,
                "key": key,
                "member": member_id,
                "support": support,
                "outcome": outcome,
                "ik": idempotency_key,
            }
        )

    # ---------------------------------------------------------- compaction

    def compact(self) -> int:
        """Atomically rewrite the journal as its folded snapshot.

        Replays the journal from disk under the lock (appends are
        serialized with the rewrite, so no record can slip between read
        and swap) and writes back the deduplicated state: one activate,
        the joins, the queries, the mints still worth remembering and the
        deduped answers.  Returns the record count written.
        """
        with self._lock:
            state = GatewayLogState()
            payloads, _corrupt = replay_log(self.path)
            for payload in payloads:
                state.fold(payload)
            records: List[Dict[str, Any]] = []
            if state.dataset is not None:
                records.append({"t": "activate", "name": state.dataset})
            for member_id, token in state.members.items():
                records.append(
                    {"t": "join", "member": member_id, "token": token}
                )
            for session_id, (query, sample_size) in state.sessions.items():
                records.append(
                    {
                        "t": "query",
                        "session": session_id,
                        "query": query,
                        "sample_size": sample_size,
                    }
                )
            if state.mints:
                records.append(
                    {
                        "t": "mint",
                        "qids": [
                            [qid, session, key, member]
                            for qid, (session, key, member) in state.mints.items()
                        ],
                    }
                )
            for answer in state.answers:
                records.append(
                    {
                        "t": "answer",
                        "qid": answer["qid"],
                        "session": answer["session"],
                        "key": answer["key"],
                        "member": answer["member"],
                        "support": answer["support"],
                        "outcome": answer["outcome"],
                        "ik": answer["ik"],
                    }
                )
            for record in records:
                record["v"] = JOURNAL_VERSION
            written = self._log.rewrite(
                json.dumps(record, sort_keys=True) for record in records
            )
        _obs_count("gateway.journal.compactions")
        return written

    def close(self) -> None:
        with self._lock:
            self._log.close()

    def __enter__(self) -> "GatewayJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"GatewayJournal({str(self.path)!r})"


__all__ = [
    "JOURNAL_VERSION",
    "GatewayJournal",
    "GatewayLogState",
    "replay_gateway_journal",
]
