"""Blocking HTTP client + the simulated-member campaign replayer.

:class:`GatewayClient` is the reference consumer of the wire schema: a
small ``http.client`` wrapper whose methods return the same typed DTOs
the server encodes.  Transport failures retry under a
:class:`RetryPolicy` — jittered exponential backoff with a wall-clock
budget, seedable for determinism — which is exactly the discipline both
an injected ``DISCONNECT`` fault and a *restarting gateway* demand:
every gateway endpoint is idempotent-or-safe to retry (``/answer``
re-plays come back ``stale``, and with an ``idempotency_key`` the
exactly-once guarantee survives a gateway restart).  ``429`` responses
are honored uniformly: the client sleeps the server-advertised
``retry_after_s`` (within the retry budget) before re-issuing, so
recovering servers are never stormed.  The remaining budget is
propagated to the server as the wire ``deadline_s`` field so a long
poll never parks a client past its own deadline.

:func:`replay_campaign` drives a full simulated-member campaign over
loopback HTTP: activate a domain, pose sessions, run one answering
thread per member (each wrapping a deterministic identical
:class:`~repro.crowd.member.CrowdMember` that rebuilds the wire
fact-sets and answers them), and poll ``/result`` until every session
settles.  With ``verify=True`` the MSP sets are checked against serial
``engine.execute`` — the same oracle the in-process service layer uses —
which is the end-to-end correctness gate of ``benchmarks/bench_gateway.py``
and the CI smoke job.

This module is deliberately synchronous: it models *clients*, which
live on their own threads.  The gateway's own async code never imports
it.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..crowd.member import CrowdMember
from ..crowd.questions import ConcreteQuestion
from .schema import (
    ActivateRequest,
    ActivateResponse,
    AnswerRequest,
    AnswerResponse,
    DatasetList,
    JoinRequest,
    JoinResponse,
    QueryAccepted,
    QueryRequest,
    QuestionBatch,
    ResultResponse,
    facts_from_wire,
)


class GatewayClientError(RuntimeError):
    """A non-2xx gateway response."""

    def __init__(self, status: int, error: str, detail: str) -> None:
        super().__init__(f"{status} {error}: {detail}")
        self.status = status
        self.error = error
        self.detail = detail


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff with a wall-clock retry budget.

    Attempt ``n`` (0-based) sleeps ``backoff_base * 2**n`` capped at
    ``backoff_cap``, scaled down by up to ``jitter`` (a fraction in
    ``[0, 1]``) of itself — full-jitter style, so a fleet of clients
    retrying against a recovering gateway spreads out instead of
    thundering in lockstep.  ``budget_s`` bounds the *total* wall time
    spent sleeping between attempts; a 429's server-advertised
    ``retry_after_s`` is honored within the same budget.  ``seed``
    makes the jitter deterministic for tests and chaos replays.
    """

    retries: int = 4
    backoff_base: float = 0.02
    backoff_cap: float = 2.0
    jitter: float = 0.5
    budget_s: float = 30.0
    seed: Optional[int] = None

    def delay(self, attempt: int, rng: random.Random) -> float:
        """The backoff before retry ``attempt`` (0-based), jittered."""
        base = min(self.backoff_cap, self.backoff_base * (2.0 ** attempt))
        if self.jitter <= 0.0:
            return base
        return base * (1.0 - self.jitter * rng.random())


class GatewayClient:
    """A minimal blocking client for one gateway."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        token: Optional[str] = None,
        timeout: float = 30.0,
        retries: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.token = token
        self.timeout = timeout
        if retry is None:
            retry = RetryPolicy() if retries is None else RetryPolicy(
                retries=retries
            )
        elif retries is not None:
            raise ValueError("pass either retries or retry, not both")
        self.retry = retry
        self.retries = retry.retries
        self._rng = random.Random(retry.seed)
        self._connection: Optional[http.client.HTTPConnection] = None

    # -------------------------------------------------------------- plumbing

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        token: Optional[str] = None,
    ) -> Dict[str, Any]:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        headers: Dict[str, str] = {"Content-Type": "application/json"}
        bearer = token if token is not None else self.token
        if bearer:
            headers["Authorization"] = f"Bearer {bearer}"
        policy = self.retry
        budget_ends = time.monotonic() + policy.budget_s
        last: Optional[Exception] = None
        for attempt in range(policy.retries + 1):
            try:
                if self._connection is None:
                    self._connection = http.client.HTTPConnection(
                        self.host, self.port, timeout=self.timeout
                    )
                self._connection.request(method, path, body=body, headers=headers)
                response = self._connection.getresponse()
                raw = response.read()
                status = response.status
            except (
                ConnectionError,
                http.client.HTTPException,
                OSError,
            ) as error:
                # dropped mid-exchange (an injected DISCONNECT, or the
                # gateway restarting): reset the connection and retry
                # idempotently under the jittered backoff
                self.close()
                last = error
                if attempt >= policy.retries or not self._backoff(
                    policy.delay(attempt, self._rng), budget_ends
                ):
                    break
                continue
            try:
                decoded = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise GatewayClientError(
                    status, "undecodable", f"bad response body: {error}"
                )
            if status == 429 and attempt < policy.retries:
                # honor the server's pushback uniformly: sleep what it
                # asked for (or our own backoff), then re-issue
                advertised = decoded.get("retry_after_s")
                pause = (
                    float(advertised)
                    if isinstance(advertised, (int, float))
                    else policy.delay(attempt, self._rng)
                )
                if self._backoff(pause, budget_ends):
                    continue
            if status >= 400:
                raise GatewayClientError(
                    status,
                    str(decoded.get("error", "error")),
                    str(decoded.get("detail", "")),
                )
            return decoded
        raise GatewayClientError(
            0, "unreachable", f"gateway did not respond: {last}"
        )

    def _backoff(self, delay: float, budget_ends: float) -> bool:
        """Sleep ``delay`` within the retry budget; False = budget spent."""
        remaining = budget_ends - time.monotonic()
        if remaining <= 0.0:
            return False
        time.sleep(max(0.0, min(delay, remaining)))
        return True

    def remaining_budget(self) -> float:
        """The policy's full retry budget (propagated as ``deadline_s``)."""
        return self.retry.budget_s

    # ------------------------------------------------------------- endpoints

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/health")

    def datasets(self) -> DatasetList:
        return DatasetList.from_wire(self._request("GET", "/datasets"))

    def activate(self, name: str) -> ActivateResponse:
        return ActivateResponse.from_wire(
            self._request(
                "POST", "/datasets/activate", ActivateRequest(name).to_wire()
            )
        )

    def join(self, member_id: Optional[str] = None) -> JoinResponse:
        return JoinResponse.from_wire(
            self._request("POST", "/join", JoinRequest(member_id).to_wire())
        )

    def pose_query(
        self,
        *,
        query: Optional[str] = None,
        threshold: float = 0.4,
        sample_size: int = 3,
        session_id: Optional[str] = None,
    ) -> QueryAccepted:
        request = QueryRequest(
            query=query,
            threshold=threshold,
            sample_size=sample_size,
            session_id=session_id,
        )
        return QueryAccepted.from_wire(
            self._request("POST", "/query", request.to_wire())
        )

    def next_questions(
        self,
        *,
        wait: float = 0.0,
        k: Optional[int] = None,
        deadline_s: Optional[float] = None,
    ) -> QuestionBatch:
        path = f"/next?wait={wait}"
        if k is not None:
            path += f"&k={k}"
        if deadline_s is None:
            deadline_s = self.remaining_budget()
        path += f"&deadline_s={deadline_s}"
        return QuestionBatch.from_wire(self._request("GET", path))

    def submit_answer(
        self,
        qid: str,
        support: Optional[float],
        *,
        idempotency_key: Optional[str] = None,
        deadline_s: Optional[float] = None,
    ) -> AnswerResponse:
        request = AnswerRequest(
            qid,
            support,
            idempotency_key=idempotency_key,
            deadline_s=(
                deadline_s if deadline_s is not None else self.remaining_budget()
            ),
        )
        return AnswerResponse.from_wire(
            self._request("POST", "/answer", request.to_wire())
        )

    def result(self, session_id: str) -> ResultResponse:
        return ResultResponse.from_wire(
            self._request("GET", f"/result?session={session_id}")
        )

    def mcp(self, message: Dict[str, Any]) -> Dict[str, Any]:
        return self._request("POST", "/mcp", message)


# ----------------------------------------------------------------- campaigns


def _member_loop(
    host: str,
    port: int,
    token: str,
    member: CrowdMember,
    done: threading.Event,
    wait: float,
    errors: List[str],
) -> None:
    """One simulated member: long-poll, answer, repeat until the campaign ends."""
    # per-member deterministic jitter: the fleet must not retry in lockstep
    policy = RetryPolicy(
        retries=8, seed=sum(ord(ch) for ch in member.member_id)
    )
    client = GatewayClient(host, port, token=token, retry=policy)
    try:
        while not done.is_set():
            try:
                batch = client.next_questions(wait=wait)
            except GatewayClientError as error:
                if error.status == 429:
                    time.sleep(0.01)  # backpressure: let answers drain
                    continue
                errors.append(f"{member.member_id}: {error}")
                return
            for question in batch.questions:
                fact_set = facts_from_wire(question.facts)
                answer = member.answer_concrete(
                    ConcreteQuestion(question.qid, fact_set)
                )
                try:
                    client.submit_answer(
                        question.qid,
                        answer.support,
                        idempotency_key=f"{member.member_id}:{question.qid}",
                    )
                except GatewayClientError as error:
                    if error.status == 404:
                        continue  # reaped while we were answering
                    errors.append(f"{member.member_id}: {error}")
                    return
    finally:
        client.close()


def replay_campaign(
    *,
    host: str,
    port: int,
    admin_token: Optional[str] = None,
    domain: str = "demo",
    sessions: int = 2,
    crowd_size: int = 4,
    sample_size: int = 3,
    thresholds: Sequence[float] = (0.2, 0.3, 0.4, 0.5),
    seed: int = 0,
    wait: float = 0.3,
    max_runtime: float = 60.0,
    verify: bool = True,
) -> Dict[str, Any]:
    """Replay a simulated-member campaign over loopback HTTP.

    Activates ``domain``, poses ``sessions`` sessions (thresholds
    cycling through ``thresholds``), runs ``crowd_size`` member threads
    of *identical* deterministic members (the serial-identity
    precondition), and polls ``/result`` until every session settles or
    ``max_runtime`` elapses.  Returns a report with per-session MSP
    sets, question counts, elapsed wall time and — with ``verify=True``
    — the serial ``engine.execute`` comparison.
    """
    from ..engine.engine import OassisEngine
    from ..service.simulation import DOMAINS, build_identical_crowd

    if domain not in DOMAINS:
        raise ValueError(f"unknown domain {domain!r}; pick from {sorted(DOMAINS)}")
    dataset = DOMAINS[domain]()
    admin = GatewayClient(host, port, token=admin_token)
    started = time.perf_counter()
    admin.activate(domain)
    session_ids: List[str] = []
    queries: Dict[str, str] = {}
    for index in range(sessions):
        threshold = thresholds[index % len(thresholds)]
        accepted = admin.pose_query(
            threshold=threshold,
            sample_size=sample_size,
            session_id=f"{domain}-{index}",
        )
        session_ids.append(accepted.session_id)
        queries[accepted.session_id] = accepted.query

    members = build_identical_crowd(dataset, crowd_size, seed=seed)
    done = threading.Event()
    errors: List[str] = []
    threads: List[threading.Thread] = []
    for member in members:
        joined = admin.join(member.member_id)
        thread = threading.Thread(
            target=_member_loop,
            args=(host, port, joined.token, member, done, wait, errors),
            name=f"member-{member.member_id}",
            daemon=True,
        )
        threads.append(thread)
        thread.start()

    results: Dict[str, ResultResponse] = {}
    deadline = time.perf_counter() + max_runtime
    timed_out = False
    try:
        while True:
            pending = [
                sid
                for sid in session_ids
                if sid not in results or not results[sid].done
            ]
            for sid in pending:
                results[sid] = admin.result(sid)
            if all(results[sid].done for sid in session_ids):
                break
            if errors:
                break
            if time.perf_counter() >= deadline:
                timed_out = True
                break
            time.sleep(0.02)
    finally:
        done.set()
        for thread in threads:
            thread.join(timeout=5.0)
        admin.close()

    elapsed = time.perf_counter() - started
    questions_total = sum(r.questions_asked for r in results.values())
    report: Dict[str, Any] = {
        "domain": domain,
        "sessions": {
            sid: {
                "state": results[sid].state if sid in results else "unknown",
                "done": bool(sid in results and results[sid].done),
                "questions": results[sid].questions_asked if sid in results else 0,
                "msps": list(results[sid].msps) if sid in results else [],
            }
            for sid in session_ids
        },
        "crowd_size": crowd_size,
        "sample_size": sample_size,
        "questions_answered": questions_total,
        "elapsed_seconds": round(elapsed, 4),
        "questions_per_second": round(questions_total / elapsed, 2)
        if elapsed > 0
        else 0.0,
        "timed_out": timed_out,
        "errors": errors,
    }
    if verify:
        engine = OassisEngine(dataset.ontology)  # type: ignore[attr-defined]
        mismatches: List[Dict[str, Any]] = []
        serial_cache: Dict[str, List[str]] = {}
        for sid in session_ids:
            query = queries[sid]
            if query not in serial_cache:
                baseline = build_identical_crowd(
                    dataset, crowd_size, seed=seed, prefix="serial-m"
                )
                serial = engine.execute(query, baseline, sample_size=sample_size)
                serial_cache[query] = sorted(repr(a) for a in serial.all_msps)
            got = list(results[sid].msps) if sid in results else []
            if got != serial_cache[query]:
                mismatches.append(
                    {"session": sid, "expected": serial_cache[query], "got": got}
                )
        report["verified"] = not mismatches and not errors and not timed_out
        report["mismatches"] = mismatches
    return report
