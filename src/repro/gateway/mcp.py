"""The MCP tool surface of the crowd gateway.

Exposes the same :class:`~repro.gateway.app.GatewayApp` as a set of MCP
tools over JSON-RPC 2.0 (``initialize`` / ``tools/list`` /
``tools/call``), served at ``POST /mcp`` by the HTTP transport or driven
directly via :meth:`McpGateway.handle`.

The surface is **modality gated**: until a dataset is activated only the
discovery tools (``list_datasets``, ``activate_dataset``) are listed;
the mining tools (``pose_query``, ``next_questions``,
``submit_answer``, ``get_result``) appear once activation gives them
something to act on.  Calling a known-but-unavailable tool is not an
opaque failure — the error names the missing prerequisite ("activate a
dataset first..."), and calling an unknown tool lists every tool the
gateway knows.  Tool-level failures come back as MCP ``isError``
results; only protocol violations (bad JSON-RPC envelope, unknown
method) produce JSON-RPC error objects.

Member identity over MCP is by ``member_id``: ``next_questions`` joins
the member implicitly on first use, so one agent can drive a whole
member lifecycle through three tool calls.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Tuple

from ..observability import count as _obs_count
from .app import GatewayApp, GatewayError
from .schema import SCHEMA_VERSION, QueryRequest, SchemaError

#: the MCP protocol revision this server reports
PROTOCOL_VERSION = "2024-11-05"

_UNGATED = ("list_datasets", "activate_dataset")
_GATED = ("pose_query", "next_questions", "submit_answer", "get_result")


def _schema(properties: Dict[str, Any], required: Tuple[str, ...] = ()) -> Dict[str, Any]:
    return {
        "type": "object",
        "properties": properties,
        "required": list(required),
    }


_TOOL_SPECS: Dict[str, Dict[str, Any]] = {
    "list_datasets": {
        "description": "List the activatable crowd-mining datasets and "
        "which one is active.",
        "inputSchema": _schema({}),
    },
    "activate_dataset": {
        "description": "Activate a dataset: builds the mining engine and "
        "session manager for it. Required before any mining tool.",
        "inputSchema": _schema(
            {"name": {"type": "string", "description": "dataset name"}},
            ("name",),
        ),
    },
    "pose_query": {
        "description": "Open a mining session. Pass OASSIS-QL text in "
        "'query', or omit it to use the active dataset's template at "
        "'threshold'.",
        "inputSchema": _schema(
            {
                "query": {"type": "string"},
                "threshold": {"type": "number"},
                "sample_size": {"type": "integer"},
                "session_id": {"type": "string"},
            }
        ),
    },
    "next_questions": {
        "description": "Fetch up to 'k' crowd questions for 'member_id' "
        "(the member joins implicitly on first use).",
        "inputSchema": _schema(
            {
                "member_id": {"type": "string"},
                "k": {"type": "integer"},
            },
            ("member_id",),
        ),
    },
    "submit_answer": {
        "description": "Answer a dispatched question: 'support' in [0,1], "
        "or null to pass.",
        "inputSchema": _schema(
            {
                "member_id": {"type": "string"},
                "qid": {"type": "string"},
                "support": {"type": ["number", "null"]},
            },
            ("member_id", "qid"),
        ),
    },
    "get_result": {
        "description": "The session's incremental MSP set; poll until "
        "'done' is true.",
        "inputSchema": _schema(
            {"session_id": {"type": "string"}}, ("session_id",)
        ),
    },
}


class McpGateway:
    """JSON-RPC 2.0 adapter exposing a :class:`GatewayApp` as MCP tools."""

    def __init__(self, app: GatewayApp) -> None:
        self.app = app
        self._handlers: Dict[str, Callable[[Dict[str, Any]], Any]] = {
            "list_datasets": self._tool_list_datasets,
            "activate_dataset": self._tool_activate_dataset,
            "pose_query": self._tool_pose_query,
            "next_questions": self._tool_next_questions,
            "submit_answer": self._tool_submit_answer,
            "get_result": self._tool_get_result,
        }

    # -------------------------------------------------------------- protocol

    def available_tools(self) -> List[str]:
        """The tools listed right now (gated on dataset activation)."""
        names = list(_UNGATED)
        if self.app.active_dataset is not None:
            names.extend(_GATED)
        return names

    def handle(self, message: Any) -> Dict[str, Any]:
        """One JSON-RPC request in, one JSON-RPC response out."""
        if not isinstance(message, dict) or message.get("jsonrpc") != "2.0":
            return self._rpc_error(
                None, -32600, "expected a JSON-RPC 2.0 request object"
            )
        request_id = message.get("id")
        method = message.get("method")
        params = message.get("params") or {}
        if not isinstance(params, dict):
            return self._rpc_error(request_id, -32602, "params must be an object")
        if method == "initialize":
            return self._rpc_result(
                request_id,
                {
                    "protocolVersion": PROTOCOL_VERSION,
                    "capabilities": {"tools": {"listChanged": True}},
                    "serverInfo": {
                        "name": "oassis-gateway",
                        "version": str(SCHEMA_VERSION),
                    },
                },
            )
        if method == "tools/list":
            tools = [
                {"name": name, **_TOOL_SPECS[name]}
                for name in self.available_tools()
            ]
            return self._rpc_result(request_id, {"tools": tools})
        if method == "tools/call":
            return self._call_tool(request_id, params)
        return self._rpc_error(
            request_id, -32601, f"unknown method {method!r}"
        )

    def _call_tool(
        self, request_id: Any, params: Dict[str, Any]
    ) -> Dict[str, Any]:
        name = params.get("name")
        arguments = params.get("arguments") or {}
        if not isinstance(name, str):
            return self._rpc_error(request_id, -32602, "missing tool name")
        if not isinstance(arguments, dict):
            return self._rpc_error(
                request_id, -32602, "tool arguments must be an object"
            )
        _obs_count("gateway.mcp.calls")
        if name not in self._handlers:
            known = ", ".join(sorted(self._handlers))
            return self._tool_error(
                request_id,
                f"unknown tool {name!r}; this gateway offers: {known}",
            )
        if name not in self.available_tools():
            _obs_count("gateway.mcp.unavailable")
            return self._tool_error(
                request_id,
                f"tool {name!r} is not available yet: activate a dataset "
                "first with activate_dataset (see list_datasets for the "
                "choices)",
            )
        try:
            payload = self._handlers[name](arguments)
        except (GatewayError, SchemaError) as error:
            return self._tool_error(request_id, str(error))
        return self._rpc_result(
            request_id,
            {
                "content": [
                    {
                        "type": "text",
                        "text": json.dumps(payload, sort_keys=True),
                    }
                ],
                "isError": False,
            },
        )

    # ----------------------------------------------------------------- tools

    def _tool_list_datasets(self, arguments: Dict[str, Any]) -> Dict[str, Any]:
        return self.app.list_datasets().to_wire()

    def _tool_activate_dataset(self, arguments: Dict[str, Any]) -> Dict[str, Any]:
        name = arguments.get("name")
        if not isinstance(name, str):
            raise SchemaError("activate_dataset needs a string 'name'")
        return self.app.activate_dataset(name).to_wire()

    def _tool_pose_query(self, arguments: Dict[str, Any]) -> Dict[str, Any]:
        request = QueryRequest.from_wire({**arguments, "v": SCHEMA_VERSION})
        return self.app.pose_query(request).to_wire()

    def _tool_next_questions(self, arguments: Dict[str, Any]) -> Dict[str, Any]:
        member_id = arguments.get("member_id")
        if not isinstance(member_id, str):
            raise SchemaError("next_questions needs a string 'member_id'")
        k = arguments.get("k")
        if k is not None and (isinstance(k, bool) or not isinstance(k, int)):
            raise SchemaError("'k' must be an integer")
        self.app.join(member_id)  # implicit, idempotent
        return self.app.next_questions(member_id, k).to_wire()

    def _tool_submit_answer(self, arguments: Dict[str, Any]) -> Dict[str, Any]:
        member_id = arguments.get("member_id")
        qid = arguments.get("qid")
        if not isinstance(member_id, str) or not isinstance(qid, str):
            raise SchemaError(
                "submit_answer needs string 'member_id' and 'qid'"
            )
        support = arguments.get("support")
        if support is not None:
            if isinstance(support, bool) or not isinstance(support, (int, float)):
                raise SchemaError("'support' must be a number or null")
            support = float(support)
        return self.app.submit_answer(member_id, qid, support).to_wire()

    def _tool_get_result(self, arguments: Dict[str, Any]) -> Dict[str, Any]:
        session_id = arguments.get("session_id")
        if not isinstance(session_id, str):
            raise SchemaError("get_result needs a string 'session_id'")
        return self.app.result(session_id).to_wire()

    # --------------------------------------------------------------- framing

    @staticmethod
    def _rpc_result(request_id: Any, result: Dict[str, Any]) -> Dict[str, Any]:
        return {"jsonrpc": "2.0", "id": request_id, "result": result}

    @staticmethod
    def _rpc_error(request_id: Any, code: int, message: str) -> Dict[str, Any]:
        return {
            "jsonrpc": "2.0",
            "id": request_id,
            "error": {"code": code, "message": message},
        }

    def _tool_error(self, request_id: Any, message: str) -> Dict[str, Any]:
        """A tool-level failure: an ``isError`` result, not an RPC error."""
        return self._rpc_result(
            request_id,
            {
                "content": [{"type": "text", "text": message}],
                "isError": True,
            },
        )

