"""Versioned wire DTOs shared by the HTTP gateway, the MCP surface and
:class:`repro.api.Client`.

Every payload that crosses the wire is a JSON object carrying a ``v``
schema-version field and decoding through one of the dataclasses below.
The decode convention is **forward compatible**: unknown fields are
ignored (a newer peer may add them), missing optional fields take their
defaults, and only a payload that is structurally unusable — wrong JSON
type, missing required field, out-of-range value — raises
:class:`SchemaError`.  That is what lets an old client talk to a new
gateway and vice versa without a lockstep deploy.

The same dataclasses type the public API (:mod:`repro.api`): a
:class:`QuestionBatch` returned by :meth:`repro.api.Client.next_questions`
is byte-for-byte the object a member would have long-polled over HTTP.

``SimulationSpec`` is the odd one out: it is not served over HTTP but
validates the ``--config`` files of the ``serve-sim``/``chaos`` CLI
commands against the same schema machinery (see ``docs/GATEWAY.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

#: current wire schema version; encoders always stamp this
SCHEMA_VERSION = 1


class SchemaError(ValueError):
    """A wire payload that cannot be decoded (missing/ill-typed field)."""


_MISSING = object()


def _take(
    payload: Mapping[str, Any],
    name: str,
    kinds: Tuple[type, ...],
    default: Any = _MISSING,
) -> Any:
    """One typed field from a wire payload.

    ``bool`` is an ``int`` subclass in Python; it only passes when
    explicitly listed, so a ``true`` cannot masquerade as a count.
    """
    value = payload.get(name, _MISSING)
    if value is _MISSING or value is None:
        if default is _MISSING:
            raise SchemaError(f"missing required field {name!r}")
        return default
    if isinstance(value, bool) and bool not in kinds:
        raise SchemaError(f"field {name!r} must not be a boolean")
    if not isinstance(value, kinds):
        expected = "/".join(k.__name__ for k in kinds)
        raise SchemaError(
            f"field {name!r} must be {expected}, got {type(value).__name__}"
        )
    return value


def check_version(payload: Any) -> Dict[str, Any]:
    """Validate the envelope: a JSON object with an integer ``v >= 1``.

    Payloads with a *newer* version than ours still decode (forward
    compatibility — unknown fields are ignored by every ``from_wire``);
    only a missing or ill-typed ``v`` is rejected.
    """
    if not isinstance(payload, dict):
        raise SchemaError(
            f"wire payload must be a JSON object, got {type(payload).__name__}"
        )
    version = _take(payload, "v", (int,))
    if version < 1:
        raise SchemaError(f"schema version must be >= 1, got {version}")
    return payload


def _stamp(body: Dict[str, Any]) -> Dict[str, Any]:
    body["v"] = SCHEMA_VERSION
    return body


# --------------------------------------------------------------- join / auth


@dataclass(frozen=True)
class JoinRequest:
    """A member asking to join the crowd (``POST /join``)."""

    member_id: Optional[str] = None

    def to_wire(self) -> Dict[str, Any]:
        return _stamp({"member_id": self.member_id})

    @classmethod
    def from_wire(cls, payload: Any) -> "JoinRequest":
        payload = check_version(payload)
        return cls(member_id=_take(payload, "member_id", (str,), None))


@dataclass(frozen=True)
class JoinResponse:
    """The minted identity: the ``token`` authenticates every later call."""

    member_id: str
    token: str

    def to_wire(self) -> Dict[str, Any]:
        return _stamp({"member_id": self.member_id, "token": self.token})

    @classmethod
    def from_wire(cls, payload: Any) -> "JoinResponse":
        payload = check_version(payload)
        return cls(
            member_id=_take(payload, "member_id", (str,)),
            token=_take(payload, "token", (str,)),
        )


# ------------------------------------------------------------------ datasets


@dataclass(frozen=True)
class DatasetList:
    """``GET /datasets``: the activatable domains and the active one."""

    datasets: Tuple[str, ...]
    active: Optional[str] = None

    def to_wire(self) -> Dict[str, Any]:
        return _stamp({"datasets": list(self.datasets), "active": self.active})

    @classmethod
    def from_wire(cls, payload: Any) -> "DatasetList":
        payload = check_version(payload)
        names = _take(payload, "datasets", (list,))
        if not all(isinstance(name, str) for name in names):
            raise SchemaError("field 'datasets' must be a list of strings")
        return cls(
            datasets=tuple(names),
            active=_take(payload, "active", (str,), None),
        )


@dataclass(frozen=True)
class ActivateRequest:
    """``POST /datasets/activate``: choose the domain to serve."""

    name: str

    def to_wire(self) -> Dict[str, Any]:
        return _stamp({"name": self.name})

    @classmethod
    def from_wire(cls, payload: Any) -> "ActivateRequest":
        payload = check_version(payload)
        return cls(name=_take(payload, "name", (str,)))


@dataclass(frozen=True)
class ActivateResponse:
    """``activated`` is False when the dataset was already active."""

    name: str
    activated: bool

    def to_wire(self) -> Dict[str, Any]:
        return _stamp({"name": self.name, "activated": self.activated})

    @classmethod
    def from_wire(cls, payload: Any) -> "ActivateResponse":
        payload = check_version(payload)
        return cls(
            name=_take(payload, "name", (str,)),
            activated=_take(payload, "activated", (bool,)),
        )


# ------------------------------------------------------------------- queries


@dataclass(frozen=True)
class QueryRequest:
    """``POST /query``: open a mining session.

    ``query`` is full OASSIS-QL text; when omitted the active dataset's
    own query template is instantiated at ``threshold``.
    """

    query: Optional[str] = None
    threshold: float = 0.4
    sample_size: int = 3
    session_id: Optional[str] = None

    def to_wire(self) -> Dict[str, Any]:
        return _stamp(
            {
                "query": self.query,
                "threshold": self.threshold,
                "sample_size": self.sample_size,
                "session_id": self.session_id,
            }
        )

    @classmethod
    def from_wire(cls, payload: Any) -> "QueryRequest":
        payload = check_version(payload)
        threshold = float(_take(payload, "threshold", (int, float), 0.4))
        if not 0.0 <= threshold <= 1.0:
            raise SchemaError(f"threshold must be in [0, 1], got {threshold}")
        sample_size = _take(payload, "sample_size", (int,), 3)
        if sample_size < 1:
            raise SchemaError(f"sample_size must be >= 1, got {sample_size}")
        return cls(
            query=_take(payload, "query", (str,), None),
            threshold=threshold,
            sample_size=sample_size,
            session_id=_take(payload, "session_id", (str,), None),
        )


@dataclass(frozen=True)
class QueryAccepted:
    """The session the gateway opened for a :class:`QueryRequest`."""

    session_id: str
    query: str

    def to_wire(self) -> Dict[str, Any]:
        return _stamp({"session_id": self.session_id, "query": self.query})

    @classmethod
    def from_wire(cls, payload: Any) -> "QueryAccepted":
        payload = check_version(payload)
        return cls(
            session_id=_take(payload, "session_id", (str,)),
            query=_take(payload, "query", (str,)),
        )


# ----------------------------------------------------------------- questions


@dataclass(frozen=True)
class QuestionDTO:
    """One dispatched crowd question.

    ``facts`` is the concrete fact-set as sorted name triples
    ``[subject, relation, object]`` — the same wire form the shard
    protocol uses; a client rebuilds it with
    ``FactSet(tuple(t) for t in facts)``.  ``deadline_s`` is the seconds
    the member has left before the question is reaped and retried.
    """

    qid: str
    session_id: str
    text: str
    facts: Tuple[Tuple[str, str, str], ...]
    deadline_s: float
    attempt: int

    def to_wire(self) -> Dict[str, Any]:
        return _stamp(
            {
                "qid": self.qid,
                "session_id": self.session_id,
                "text": self.text,
                "facts": [list(triple) for triple in self.facts],
                "deadline_s": self.deadline_s,
                "attempt": self.attempt,
            }
        )

    @classmethod
    def from_wire(cls, payload: Any) -> "QuestionDTO":
        payload = check_version(payload)
        raw = _take(payload, "facts", (list,))
        facts: List[Tuple[str, str, str]] = []
        for triple in raw:
            if not (
                isinstance(triple, list)
                and len(triple) == 3
                and all(isinstance(part, str) for part in triple)
            ):
                raise SchemaError(
                    "field 'facts' must be a list of [subject, relation, "
                    f"object] string triples, got {triple!r}"
                )
            facts.append((triple[0], triple[1], triple[2]))
        return cls(
            qid=_take(payload, "qid", (str,)),
            session_id=_take(payload, "session_id", (str,)),
            text=_take(payload, "text", (str,)),
            facts=tuple(facts),
            deadline_s=float(_take(payload, "deadline_s", (int, float))),
            attempt=_take(payload, "attempt", (int,), 1),
        )


@dataclass(frozen=True)
class QuestionBatch:
    """``GET /next``: the questions a long-poll came back with.

    An empty batch is a *normal* response: the poll timed out idle, and
    the member should poll again after ``retry_after_s``.
    """

    questions: Tuple[QuestionDTO, ...] = ()
    retry_after_s: float = 0.0

    def to_wire(self) -> Dict[str, Any]:
        return _stamp(
            {
                "questions": [q.to_wire() for q in self.questions],
                "retry_after_s": self.retry_after_s,
            }
        )

    @classmethod
    def from_wire(cls, payload: Any) -> "QuestionBatch":
        payload = check_version(payload)
        raw = _take(payload, "questions", (list,), [])
        return cls(
            questions=tuple(QuestionDTO.from_wire(q) for q in raw),
            retry_after_s=float(
                _take(payload, "retry_after_s", (int, float), 0.0)
            ),
        )


# ------------------------------------------------------------------- answers


@dataclass(frozen=True)
class AnswerRequest:
    """``POST /answer``: ``support=None`` is an explicit pass.

    ``idempotency_key`` is a client-minted opaque string, stable across
    the retries of *one* submit: a gateway that already journaled an
    answer under the key returns the recorded outcome without applying
    the answer again — exactly-once even across a gateway restart.
    ``deadline_s`` propagates the client's remaining retry budget so a
    recovering server can shed work the client will no longer wait for.
    Both fields are additive (absent = PR 8 behavior), so no version
    bump.
    """

    qid: str
    support: Optional[float] = None
    idempotency_key: Optional[str] = None
    deadline_s: Optional[float] = None

    def to_wire(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {"qid": self.qid, "support": self.support}
        if self.idempotency_key is not None:
            body["idempotency_key"] = self.idempotency_key
        if self.deadline_s is not None:
            body["deadline_s"] = self.deadline_s
        return _stamp(body)

    @classmethod
    def from_wire(cls, payload: Any) -> "AnswerRequest":
        payload = check_version(payload)
        support = _take(payload, "support", (int, float), None)
        deadline = _take(payload, "deadline_s", (int, float), None)
        return cls(
            qid=_take(payload, "qid", (str,)),
            support=None if support is None else float(support),
            idempotency_key=_take(payload, "idempotency_key", (str,), None),
            deadline_s=None if deadline is None else float(deadline),
        )


@dataclass(frozen=True)
class AnswerResponse:
    """The queue outcome: recorded / passed / stale / rejected / pruned."""

    qid: str
    outcome: str

    def to_wire(self) -> Dict[str, Any]:
        return _stamp({"qid": self.qid, "outcome": self.outcome})

    @classmethod
    def from_wire(cls, payload: Any) -> "AnswerResponse":
        payload = check_version(payload)
        return cls(
            qid=_take(payload, "qid", (str,)),
            outcome=_take(payload, "outcome", (str,)),
        )


# ------------------------------------------------------------------- results


@dataclass(frozen=True)
class ResultResponse:
    """``GET /result``: the session's incremental MSP set.

    Polling this endpoint streams progress: ``msps`` grows as the crowd
    classifies the lattice and ``done`` flips when the session settles.
    MSPs travel as their canonical ``repr`` strings — the exact strings
    the serial-identity oracle compares.
    """

    session_id: str
    state: str
    done: bool
    questions_asked: int
    msps: Tuple[str, ...]
    valid_msps: Tuple[str, ...]

    def to_wire(self) -> Dict[str, Any]:
        return _stamp(
            {
                "session_id": self.session_id,
                "state": self.state,
                "done": self.done,
                "questions_asked": self.questions_asked,
                "msps": list(self.msps),
                "valid_msps": list(self.valid_msps),
            }
        )

    @classmethod
    def from_wire(cls, payload: Any) -> "ResultResponse":
        payload = check_version(payload)
        msps = _take(payload, "msps", (list,), [])
        valid = _take(payload, "valid_msps", (list,), [])
        for collection in (msps, valid):
            if not all(isinstance(item, str) for item in collection):
                raise SchemaError("MSP lists must contain strings")
        return cls(
            session_id=_take(payload, "session_id", (str,)),
            state=_take(payload, "state", (str,)),
            done=_take(payload, "done", (bool,)),
            questions_asked=_take(payload, "questions_asked", (int,), 0),
            msps=tuple(msps),
            valid_msps=tuple(valid),
        )


# -------------------------------------------------------------------- errors


@dataclass(frozen=True)
class ErrorResponse:
    """Every non-2xx body: a machine-readable ``error`` plus detail.

    A 429 (backpressure) carries ``retry_after_s`` — the server's own
    estimate of when retrying is worth it; retrying clients honor it
    uniformly across endpoints instead of guessing (additive field, no
    version bump).
    """

    error: str
    detail: str = ""
    retry_after_s: Optional[float] = None

    def to_wire(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {"error": self.error, "detail": self.detail}
        if self.retry_after_s is not None:
            body["retry_after_s"] = self.retry_after_s
        return _stamp(body)

    @classmethod
    def from_wire(cls, payload: Any) -> "ErrorResponse":
        payload = check_version(payload)
        retry_after = _take(payload, "retry_after_s", (int, float), None)
        return cls(
            error=_take(payload, "error", (str,)),
            detail=_take(payload, "detail", (str,), ""),
            retry_after_s=None if retry_after is None else float(retry_after),
        )


# ------------------------------------------------------- CLI config payloads


@dataclass(frozen=True)
class SimulationSpec:
    """A ``--config`` file for the ``serve-sim`` and ``chaos`` commands.

    Every field is optional; present fields become the command's argument
    defaults (explicit command-line flags still win).  The field names
    are exactly the CLI destinations, so one JSON file can drive both
    commands — ``chaos``-only knobs (``seeds``, ``crashes``,
    ``after_nodes``, ``state_dir``) are simply ignored by ``serve-sim``
    and vice versa (``drop_every``, ``departures``, ``question_timeout``,
    ``verify``).
    """

    domain: Optional[str] = None
    sessions: Optional[int] = None
    workers: Optional[int] = None
    shards: Optional[int] = None
    crowd_size: Optional[int] = None
    sample_size: Optional[int] = None
    drop_every: Optional[int] = None
    departures: Optional[int] = None
    question_timeout: Optional[float] = None
    max_runtime: Optional[float] = None
    seed: Optional[int] = None
    verify: Optional[bool] = None
    seeds: Optional[Tuple[int, ...]] = None
    crashes: Optional[int] = None
    after_nodes: Optional[int] = None
    state_dir: Optional[str] = None

    def to_wire(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {}
        for name, value in self.__dict__.items():
            if value is None:
                continue
            body[name] = list(value) if isinstance(value, tuple) else value
        return _stamp(body)

    @classmethod
    def from_wire(cls, payload: Any) -> "SimulationSpec":
        payload = check_version(payload)
        seeds = _take(payload, "seeds", (list,), None)
        if seeds is not None:
            if not all(
                isinstance(s, int) and not isinstance(s, bool) for s in seeds
            ):
                raise SchemaError("field 'seeds' must be a list of integers")
            seeds = tuple(seeds)
        for name in ("sessions", "workers", "crowd_size", "sample_size"):
            value = _take(payload, name, (int,), None)
            if value is not None and value < 1:
                raise SchemaError(f"field {name!r} must be >= 1, got {value}")
        for name in ("shards", "drop_every", "departures", "crashes", "after_nodes"):
            value = _take(payload, name, (int,), None)
            if value is not None and value < 0:
                raise SchemaError(f"field {name!r} must be >= 0, got {value}")
        for name in ("question_timeout", "max_runtime"):
            value = _take(payload, name, (int, float), None)
            if value is not None and value <= 0:
                raise SchemaError(f"field {name!r} must be > 0, got {value}")
        return cls(
            domain=_take(payload, "domain", (str,), None),
            sessions=_take(payload, "sessions", (int,), None),
            workers=_take(payload, "workers", (int,), None),
            shards=_take(payload, "shards", (int,), None),
            crowd_size=_take(payload, "crowd_size", (int,), None),
            sample_size=_take(payload, "sample_size", (int,), None),
            drop_every=_take(payload, "drop_every", (int,), None),
            departures=_take(payload, "departures", (int,), None),
            question_timeout=_float_or_none(payload, "question_timeout"),
            max_runtime=_float_or_none(payload, "max_runtime"),
            seed=_take(payload, "seed", (int,), None),
            verify=_take(payload, "verify", (bool,), None),
            seeds=seeds,
            crashes=_take(payload, "crashes", (int,), None),
            after_nodes=_take(payload, "after_nodes", (int,), None),
            state_dir=_take(payload, "state_dir", (str,), None),
        )

    def overrides(self) -> Dict[str, Any]:
        """The non-None fields, keyed by CLI argument destination."""
        return {
            name: value
            for name, value in self.__dict__.items()
            if value is not None
        }


def _float_or_none(payload: Mapping[str, Any], name: str) -> Optional[float]:
    value = _take(payload, name, (int, float), None)
    return None if value is None else float(value)


# ------------------------------------------------------------- fact helpers


def facts_to_wire(fact_set: Any) -> Tuple[Tuple[str, str, str], ...]:
    """A :class:`~repro.ontology.facts.FactSet` as sorted name triples."""
    return tuple(
        (fact.subject.name, fact.relation.name, fact.obj.name)
        for fact in sorted(fact_set)
    )


def facts_from_wire(triples: Sequence[Sequence[str]]) -> Any:
    """Rebuild a :class:`~repro.ontology.facts.FactSet` from name triples."""
    from ..ontology.facts import FactSet

    return FactSet(tuple(triple) for triple in triples)


__all__ = [
    "SCHEMA_VERSION",
    "ActivateRequest",
    "ActivateResponse",
    "AnswerRequest",
    "AnswerResponse",
    "DatasetList",
    "ErrorResponse",
    "JoinRequest",
    "JoinResponse",
    "QueryAccepted",
    "QueryRequest",
    "QuestionBatch",
    "QuestionDTO",
    "ResultResponse",
    "SchemaError",
    "SimulationSpec",
    "check_version",
    "facts_from_wire",
    "facts_to_wire",
]
