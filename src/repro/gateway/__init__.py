"""repro.gateway — the network-facing crowd gateway (HTTP + MCP).

The wire surface of the OASSIS reproduction: an asyncio HTTP server
(:mod:`~repro.gateway.http`) and an MCP tool surface
(:mod:`~repro.gateway.mcp`) sharing one transport-independent core
(:class:`~repro.gateway.app.GatewayApp`) and one set of versioned wire
DTOs (:mod:`~repro.gateway.schema`).  See ``docs/GATEWAY.md`` for the
endpoint table, auth model, backpressure and failure modes, and
:mod:`repro.api` for the in-process client facade built on the same
DTOs.
"""

from .app import (
    AuthError,
    BackpressureError,
    ConflictError,
    ForbiddenError,
    GatewayApp,
    GatewayConfig,
    GatewayError,
    NotFoundError,
)
from .client import (
    GatewayClient,
    GatewayClientError,
    RetryPolicy,
    replay_campaign,
)
from .http import GatewayHandle, GatewayServer, serve_in_thread
from .journal import (
    GatewayJournal,
    GatewayLogState,
    replay_gateway_journal,
)
from .mcp import McpGateway
from .schema import (
    SCHEMA_VERSION,
    ActivateRequest,
    ActivateResponse,
    AnswerRequest,
    AnswerResponse,
    DatasetList,
    ErrorResponse,
    JoinRequest,
    JoinResponse,
    QueryAccepted,
    QueryRequest,
    QuestionBatch,
    QuestionDTO,
    ResultResponse,
    SchemaError,
    SimulationSpec,
)

__all__ = [
    "SCHEMA_VERSION",
    "ActivateRequest",
    "ActivateResponse",
    "AnswerRequest",
    "AnswerResponse",
    "AuthError",
    "BackpressureError",
    "ConflictError",
    "DatasetList",
    "ErrorResponse",
    "ForbiddenError",
    "GatewayApp",
    "GatewayClient",
    "GatewayClientError",
    "GatewayConfig",
    "GatewayError",
    "GatewayHandle",
    "GatewayJournal",
    "GatewayLogState",
    "GatewayServer",
    "JoinRequest",
    "JoinResponse",
    "McpGateway",
    "NotFoundError",
    "RetryPolicy",
    "QueryAccepted",
    "QueryRequest",
    "QuestionBatch",
    "QuestionDTO",
    "ResultResponse",
    "SchemaError",
    "SimulationSpec",
    "replay_campaign",
    "replay_gateway_journal",
    "serve_in_thread",
]
