"""The asyncio HTTP transport of the crowd gateway.

A deliberately small HTTP/1.1 server on stdlib ``asyncio`` streams — no
framework, no third-party dependency.  One
:class:`GatewayServer` serves one :class:`~repro.gateway.app.GatewayApp`
over loopback (or any interface):

====== ===================== ============================== =============
method path                  body / query                   auth
====== ===================== ============================== =============
GET    /health               —                              open
GET    /datasets             —                              open
POST   /datasets/activate    ActivateRequest                admin
POST   /join                 JoinRequest                    open
POST   /query                QueryRequest                   admin
GET    /next?wait=S&k=N      —                              member token
POST   /answer               AnswerRequest                  member token
GET    /result?session=ID    —                              admin
POST   /mcp                  JSON-RPC 2.0                   admin
====== ===================== ============================== =============

``/next`` is a **long poll**: the server re-checks the member's queues
every ``poll_interval`` seconds until a batch appears or ``wait``
(capped at ``long_poll_max_wait``) elapses, then returns — an empty
batch on timeout is a normal 200, not an error.  A member already at
their in-flight cap gets 429 immediately (backpressure; see
``docs/GATEWAY.md``).

Fault injection: when the app carries a
:class:`~repro.faults.plan.FaultPlan`, every parsed request consults the
``gateway.request`` site.  ``DISCONNECT`` closes the connection without
a response; ``SLOW_CLIENT`` stalls the response by
``slow_client_delay`` seconds.  Both are counted.

Every request increments ``gateway.requests`` and lands one sample in
the per-endpoint ``gateway.latency.*`` histogram, registered in
:mod:`repro.observability.names`.  Time a ``/next`` request spends
*parked* in the long poll is not service time: it is recorded separately
in ``gateway.poll.wait`` and subtracted from the ``gateway.latency.next``
sample, so the handler histogram measures actual work (the PR 8 bench
conflated the two and reported the poll sleep as p99).

``GET /next`` also accepts ``deadline_s`` — the client's remaining retry
budget, propagated from :class:`~repro.gateway.client.RetryPolicy` — and
caps the long-poll wait to it so a recovering server never parks a
client past its own deadline.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..faults.plan import FaultKind
from ..observability import (
    count as _obs_count,
    enable as _obs_enable,
    get_tracer,
    observe as _obs_observe,
)
from .app import BackpressureError, GatewayApp, GatewayError
from .mcp import McpGateway
from .schema import (
    ActivateRequest,
    AnswerRequest,
    ErrorResponse,
    JoinRequest,
    QueryRequest,
    SchemaError,
)

#: request-line + single-header length cap (bytes)
_LINE_LIMIT = 16384
#: request body length cap (bytes)
_BODY_LIMIT = 4 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

#: endpoint path -> latency histogram name (see observability.names)
_LATENCY_NAMES = {
    "/health": "gateway.latency.health",
    "/datasets": "gateway.latency.datasets",
    "/datasets/activate": "gateway.latency.activate",
    "/join": "gateway.latency.join",
    "/query": "gateway.latency.query",
    "/next": "gateway.latency.next",
    "/answer": "gateway.latency.answer",
    "/result": "gateway.latency.result",
    "/mcp": "gateway.latency.mcp",
}


class _BadRequest(Exception):
    """A request the HTTP layer itself rejects (framing, JSON, size)."""

    def __init__(self, status: int, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.detail = detail


class _Request:
    """One parsed HTTP request."""

    __slots__ = (
        "method",
        "path",
        "query",
        "headers",
        "body",
        "keep_alive",
        "poll_wait",
    )

    def __init__(
        self,
        method: str,
        path: str,
        query: Dict[str, str],
        headers: Dict[str, str],
        body: bytes,
        keep_alive: bool,
    ) -> None:
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body
        self.keep_alive = keep_alive
        #: seconds this request spent parked in the long poll — excluded
        #: from its service-time histogram sample
        self.poll_wait = 0.0

    def bearer_token(self) -> Optional[str]:
        value = self.headers.get("authorization", "")
        if value.lower().startswith("bearer "):
            return value[7:].strip()
        return None

    def json(self) -> Any:
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _BadRequest(400, f"request body is not valid JSON: {error}")


class GatewayServer:
    """Serves one :class:`GatewayApp` over asyncio-streams HTTP/1.1."""

    def __init__(
        self,
        app: GatewayApp,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.app = app
        self.host = host
        self._requested_port = port
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._mcp = McpGateway(app)

    # -------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self._requested_port
        )
        sockets = self._server.sockets or ()
        for sock in sockets:
            self.port = sock.getsockname()[1]
            break

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------ connection

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequest as error:
                    _obs_count("gateway.requests")
                    _obs_count("gateway.errors.client")
                    await self._respond(
                        writer,
                        error.status,
                        ErrorResponse("bad_request", error.detail).to_wire(),
                        keep_alive=False,
                    )
                    return
                if request is None:
                    return
                _obs_count("gateway.requests")
                if not await self._survive_faults(request, writer):
                    return
                started = time.perf_counter()
                keep_alive = await self._dispatch(request, writer)
                elapsed = time.perf_counter() - started
                if request.poll_wait > 0.0:
                    _obs_observe("gateway.poll.wait", request.poll_wait)
                _obs_observe(
                    _LATENCY_NAMES.get(request.path, "gateway.latency.other"),
                    max(0.0, elapsed - request.poll_wait),
                )
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        except asyncio.CancelledError:
            pass  # server tearing down (restart); connection dies with it
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass  # already torn down; close is best-effort

    async def _survive_faults(
        self, request: _Request, writer: asyncio.StreamWriter
    ) -> bool:
        """Consult the ``gateway.request`` fault site; False = dropped."""
        faults = self.app.faults
        if faults is None:
            return True
        member = self._fault_identity(request)
        kind = faults.decide("gateway.request", member)
        if kind is FaultKind.DISCONNECT:
            _obs_count("gateway.disconnects.injected")
            writer.close()
            return False
        if kind is FaultKind.SLOW_CLIENT:
            _obs_count("gateway.slow_responses.injected")
            await asyncio.sleep(self.app.config.slow_client_delay)
        return True

    def _fault_identity(self, request: _Request) -> Optional[str]:
        """Attribute the fault decision to the calling member, if known."""
        token = request.bearer_token()
        if token is None:
            return None
        try:
            return self.app.authenticate(token)
        except GatewayError:
            return None

    # --------------------------------------------------------------- parsing

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[_Request]:
        try:
            line = await reader.readline()
        except (ValueError, ConnectionError):
            raise _BadRequest(400, "request line too long or unreadable")
        if not line:
            return None  # clean EOF between requests
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _BadRequest(400, f"malformed request line {line!r}")
        method, target, version = parts
        headers: Dict[str, str] = {}
        while True:
            try:
                raw = await reader.readline()
            except (ValueError, ConnectionError):
                raise _BadRequest(400, "header line too long or unreadable")
            if len(raw) > _LINE_LIMIT:
                raise _BadRequest(400, "header line too long")
            text = raw.decode("latin-1").strip()
            if not text:
                break
            name, _, value = text.partition(":")
            if not _:
                raise _BadRequest(400, f"malformed header {text!r}")
            headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise _BadRequest(400, f"bad Content-Length {length_text!r}")
        if length < 0:
            raise _BadRequest(400, "negative Content-Length")
        if length > _BODY_LIMIT:
            raise _BadRequest(413, f"body exceeds {_BODY_LIMIT} bytes")
        body = b""
        if length:
            body = await reader.readexactly(length)
        split = urlsplit(target)
        query = {
            key: values[-1]
            for key, values in parse_qs(split.query).items()
        }
        connection = headers.get("connection", "").lower()
        keep_alive = version != "HTTP/1.0" and connection != "close"
        return _Request(
            method.upper(), split.path, query, headers, body, keep_alive
        )

    # -------------------------------------------------------------- dispatch

    async def _dispatch(
        self, request: _Request, writer: asyncio.StreamWriter
    ) -> bool:
        try:
            status, payload = await self._route(request)
        except _BadRequest as error:
            _obs_count("gateway.errors.client")
            status, payload = error.status, ErrorResponse(
                "bad_request", error.detail
            ).to_wire()
        except SchemaError as error:
            _obs_count("gateway.errors.client")
            status, payload = 400, ErrorResponse(
                "schema_error", str(error)
            ).to_wire()
        except BackpressureError as error:
            _obs_count("gateway.backpressure.rejected")
            status, payload = error.status, ErrorResponse(
                error.error,
                error.detail,
                retry_after_s=self.app.config.poll_interval * 10,
            ).to_wire()
        except GatewayError as error:
            if error.status not in (401, 403):
                # auth rejections were already counted by the app
                _obs_count("gateway.errors.client")
            status, payload = error.status, ErrorResponse(
                error.error, error.detail
            ).to_wire()
        except Exception as error:  # noqa: broad, the 500 boundary
            _obs_count("gateway.errors.server")
            status, payload = 500, ErrorResponse(
                "internal_error", f"{type(error).__name__}: {error}"
            ).to_wire()
        await self._respond(writer, status, payload, keep_alive=request.keep_alive)
        return request.keep_alive

    async def _route(self, request: _Request) -> Tuple[int, Dict[str, Any]]:
        app = self.app
        method, path = request.method, request.path
        if path == "/health" and method == "GET":
            return 200, {
                "v": 1,
                "status": "ok",
                "dataset": app.active_dataset,
            }
        if path == "/datasets" and method == "GET":
            return 200, app.list_datasets().to_wire()
        if path == "/datasets/activate" and method == "POST":
            app.require_admin(request.bearer_token())
            decoded = ActivateRequest.from_wire(request.json())
            return 200, app.activate_dataset(decoded.name).to_wire()
        if path == "/join" and method == "POST":
            decoded_join = JoinRequest.from_wire(request.json())
            return 200, app.join(decoded_join.member_id).to_wire()
        if path == "/query" and method == "POST":
            app.require_admin(request.bearer_token())
            decoded_query = QueryRequest.from_wire(request.json())
            return 200, app.pose_query(decoded_query).to_wire()
        if path == "/next" and method == "GET":
            member = app.authenticate(request.bearer_token())
            return await self._long_poll(member, request)
        if path == "/answer" and method == "POST":
            member = app.authenticate(request.bearer_token())
            decoded_answer = AnswerRequest.from_wire(request.json())
            response = app.submit_answer(
                member,
                decoded_answer.qid,
                decoded_answer.support,
                idempotency_key=decoded_answer.idempotency_key,
            )
            return 200, response.to_wire()
        if path == "/result" and method == "GET":
            app.require_admin(request.bearer_token())
            session_id = request.query.get("session")
            if not session_id:
                raise _BadRequest(400, "missing ?session=<id>")
            return 200, app.result(session_id).to_wire()
        if path == "/mcp" and method == "POST":
            app.require_admin(request.bearer_token())
            return 200, self._mcp.handle(request.json())
        if path in _LATENCY_NAMES:
            raise _BadRequest(405, f"{method} not allowed on {path}")
        raise _BadRequest(404, f"no such endpoint {path}")

    async def _long_poll(
        self, member_id: str, request: _Request
    ) -> Tuple[int, Dict[str, Any]]:
        """``GET /next``: poll until questions appear or ``wait`` elapses."""
        app = self.app
        try:
            wait = float(request.query.get("wait", "0"))
            k_text = request.query.get("k")
            k = int(k_text) if k_text is not None else None
            deadline_text = request.query.get("deadline_s")
            client_deadline = (
                float(deadline_text) if deadline_text is not None else None
            )
        except ValueError:
            raise _BadRequest(400, "wait, k and deadline_s must be numbers")
        if app.at_capacity(member_id):
            raise BackpressureError(
                f"member {member_id} is at the in-flight limit "
                f"({app.config.in_flight_limit}); answer something first"
            )
        wait = max(0.0, min(wait, app.config.long_poll_max_wait))
        if client_deadline is not None:
            # never park a client past its own propagated retry budget
            wait = max(0.0, min(wait, client_deadline))
        loop = asyncio.get_running_loop()
        deadline = loop.time() + wait
        waited = False
        while True:
            batch = app.next_questions(member_id, k)
            if batch.questions:
                return 200, batch.to_wire()
            if not waited:
                waited = True
                _obs_count("gateway.longpoll.waits")
            if loop.time() >= deadline:
                _obs_count("gateway.longpoll.empty")
                empty = batch.to_wire()
                empty["retry_after_s"] = app.config.poll_interval * 10
                return 200, empty
            slept_from = loop.time()
            await asyncio.sleep(app.config.poll_interval)
            request.poll_wait += loop.time() - slept_from

    # -------------------------------------------------------------- response

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        *,
        keep_alive: bool,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        reason = _STATUS_TEXT.get(status, "Unknown")
        connection = "keep-alive" if keep_alive else "close"
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()


class GatewayHandle:
    """A running gateway in a background thread (tests, bench, CLI).

    ``stop()`` shuts the event loop down cleanly and joins the thread;
    the handle is also a context manager.
    """

    def __init__(
        self,
        thread: threading.Thread,
        loop: asyncio.AbstractEventLoop,
        stop_event: asyncio.Event,
        host: str,
        port: int,
    ) -> None:
        self._thread = thread
        self._loop = loop
        self._stop_event = stop_event
        self.host = host
        self.port = port

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self, timeout: float = 10.0) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop_event.set)
            self._thread.join(timeout)

    def __enter__(self) -> "GatewayHandle":
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()


def serve_in_thread(
    app: GatewayApp, host: str = "127.0.0.1", port: int = 0
) -> GatewayHandle:
    """Start a gateway server on a daemon thread; returns its handle.

    The tracer active in the *calling* context is re-enabled inside the
    server thread (context variables do not cross threads), so
    ``gateway.*`` counters and latency histograms land on the caller's
    tracer — the same pattern the service runner uses for its workers.
    """
    tracer = get_tracer()
    started = threading.Event()
    box: Dict[str, Any] = {}

    async def _serve() -> None:
        server = GatewayServer(app, host=host, port=port)
        await server.start()
        stop_event = asyncio.Event()
        box["loop"] = asyncio.get_running_loop()
        box["stop"] = stop_event
        box["port"] = server.port
        started.set()
        try:
            await stop_event.wait()
        finally:
            await server.close()

    def _main() -> None:
        if tracer is not None:
            _obs_enable(tracer)
        try:
            asyncio.run(_serve())
        except Exception as error:
            _obs_count("gateway.errors.server")
            box["error"] = error
            started.set()  # wake the caller, who re-raises from box["error"]

    thread = threading.Thread(target=_main, name="gateway-http", daemon=True)
    thread.start()
    if not started.wait(10.0) or "error" in box:
        raise RuntimeError(f"gateway failed to start: {box.get('error')}")
    return GatewayHandle(
        thread, box["loop"], box["stop"], host, int(box["port"])
    )
