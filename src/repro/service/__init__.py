"""Concurrent crowd-serving sessions over the OASSIS engine.

The paper evaluates one query against one crowd; a deployed crowd miner
serves *many* queries against a *shared, flaky* crowd.  This package is
that serving layer:

* :class:`SessionManager` — hosts concurrent :class:`QuerySession`\\ s
  (each a locked :class:`~repro.engine.queue_manager.QueueManager` plus
  crowd cache) and multiplexes members across them: batched dispatch
  with per-member in-flight limits, question deadlines with
  retry/backoff/reassignment, member departures, and session
  create / snapshot-resume / cancel;
* :class:`ServiceRunner` — N worker threads driving the manager to
  quiescence (the locking story's proof), with :class:`MemberScript`
  behaviours injecting drops and departures;
* :func:`run_simulation` — the multi-session harness shared by
  ``repro serve-sim``, ``benchmarks/bench_service.py`` and the tests,
  whose oracle is MSP-identity with serial execution;
* :func:`restore_session` — crash recovery: rebuild a killed session
  from its WAL journal + checkpoint (``docs/RELIABILITY.md``).

Entry point: ``engine.session_manager(question_timeout=..., ...)``.
Locking contract and failure semantics: ``docs/SERVICE.md``; the emitted
``service.*`` counters: ``docs/OBSERVABILITY.md``.
"""

from .config import ServiceConfig
from .manager import DispatchedQuestion, SessionManager
from .recovery import read_checkpoint, resolve_journal, restore_session
from .runner import DEPART, DROP, MemberScript, ServiceRunner
from .session import CHECKPOINT_VERSION, QuerySession, SessionState
from .simulation import DOMAINS, build_identical_crowd, run_simulation
from .supervisor import ShardSupervisor, SupervisorConfig

__all__ = [
    "CHECKPOINT_VERSION",
    "DEPART",
    "DOMAINS",
    "DROP",
    "DispatchedQuestion",
    "MemberScript",
    "QuerySession",
    "ServiceConfig",
    "ServiceRunner",
    "SessionManager",
    "SessionState",
    "ShardSupervisor",
    "SupervisorConfig",
    "build_identical_crowd",
    "read_checkpoint",
    "resolve_journal",
    "restore_session",
    "run_simulation",
]
