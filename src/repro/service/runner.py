"""ServiceRunner: worker threads driving a SessionManager to quiescence.

The proof of the locking story: N daemon workers pull member ids off a
shared rotation queue, fetch a batch for that member, play the member's
scripted behaviour (answer / drop / depart), submit the results and put
the member back into rotation.  Because a member id is held by exactly
one worker at a time, each stateful :class:`~repro.crowd.member.
CrowdMember` is only ever touched by one thread — concurrency comes from
*different* members being served in parallel, which is also how a real
crowd behaves.

The observability tracer is context-local and does not propagate into
threads, so each worker re-enables the tracer that was active when
:meth:`ServiceRunner.run` was called; the thread-safe
:class:`~repro.observability.Tracer` (locked counters, per-thread span
stacks) then aggregates across workers.
"""

from __future__ import annotations

import queue as queue_module
import threading
import time
from typing import Dict, Iterable, Optional, Union

from ..crowd.member import CrowdMember
from ..crowd.questions import ConcreteQuestion
from ..observability import disable as _obs_disable, enable as _obs_enable, get_tracer
from .manager import DispatchedQuestion, SessionManager

#: sentinel actions a :class:`MemberScript` can take instead of answering
DROP = "drop"
DEPART = "depart"


class MemberScript:
    """Deterministic behaviour of one simulated member under service load.

    Wraps a :class:`~repro.crowd.member.CrowdMember` and injects the
    failure modes the service must absorb:

    * ``drop_every=n`` — every n-th delivered question is silently
      ignored (it will hit its deadline, be reaped and retried);
    * ``depart_after=n`` — after answering n questions the member departs
      (the runner detaches them from the manager).

    Counters, not randomness: behaviour depends only on how many
    questions the member has seen, keeping simulations reproducible.
    """

    def __init__(
        self,
        member: CrowdMember,
        *,
        drop_every: int = 0,
        depart_after: Optional[int] = None,
    ) -> None:
        self.member = member
        self.member_id = member.member_id
        self.drop_every = drop_every
        self.depart_after = depart_after
        self.seen = 0
        self.answered = 0
        self.dropped = 0
        self.departed = False

    def respond(self, question: DispatchedQuestion) -> Union[str, float]:
        """The member's reaction: a support value, ``DROP`` or ``DEPART``."""
        if self.depart_after is not None and self.answered >= self.depart_after:
            self.departed = True
            return DEPART
        self.seen += 1
        if self.drop_every and self.seen % self.drop_every == 0:
            self.dropped += 1
            return DROP
        self.answered += 1
        answer = self.member.answer_concrete(
            ConcreteQuestion(question.assignment, question.fact_set)
        )
        return answer.support


class ServiceRunner:
    """Drives a :class:`SessionManager` with N worker threads."""

    def __init__(
        self,
        manager: SessionManager,
        scripts: Iterable[MemberScript],
        *,
        workers: int = 4,
        batch_size: Optional[int] = None,
        poll_interval: float = 0.002,
        max_runtime: float = 60.0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.manager = manager
        self.scripts: Dict[str, MemberScript] = {
            script.member_id: script for script in scripts
        }
        self.workers = workers
        self.batch_size = batch_size
        self.poll_interval = poll_interval
        self.max_runtime = max_runtime
        self.timed_out = False

    def run(self) -> Dict:
        """Serve until every session settles; returns a summary report.

        Attaches the scripted members (idempotent), spins up the worker
        pool and blocks until :meth:`SessionManager.all_done` or
        ``max_runtime`` elapses (the deadlock guard — ``timed_out`` is set
        in the report instead of hanging forever).
        """
        for member_id in self.scripts:
            self.manager.attach_member(member_id)
        tracer = get_tracer()
        rotation: "queue_module.Queue[str]" = queue_module.Queue()
        for member_id in self.scripts:
            rotation.put(member_id)
        stop = threading.Event()
        started = time.perf_counter()
        deadline = started + self.max_runtime

        def serve() -> None:
            if tracer is not None:
                _obs_enable(tracer)
            try:
                while not stop.is_set():
                    if time.perf_counter() >= deadline:
                        self.timed_out = True
                        stop.set()
                        return
                    try:
                        member_id = rotation.get(timeout=self.poll_interval)
                    except queue_module.Empty:
                        self.manager.reap_expired()
                        if self.manager.all_done():
                            stop.set()
                        continue
                    script = self.scripts[member_id]
                    requeue = True
                    batch = self.manager.next_batch(member_id, k=self.batch_size)
                    for question in batch:
                        action = script.respond(question)
                        if action is DEPART:
                            self.manager.detach_member(member_id)
                            requeue = False
                            break
                        if action is DROP:
                            continue  # never answered: reaped at its deadline
                        self.manager.submit(question, action)
                    self.manager.reap_expired()
                    if self.manager.all_done():
                        stop.set()
                    if requeue and not stop.is_set():
                        rotation.put(member_id)
                    if not batch:
                        # dry or backed off right now; yield before retrying
                        time.sleep(self.poll_interval)
            finally:
                if tracer is not None:
                    _obs_disable()

        threads = [
            threading.Thread(target=serve, name=f"service-worker-{i}", daemon=True)
            for i in range(self.workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=self.max_runtime + 5 * self.poll_interval + 1.0)
        stop.set()
        elapsed = time.perf_counter() - started
        return self._report(elapsed)

    def _report(self, elapsed: float) -> Dict:
        sessions = {}
        total_questions = 0
        for session in self.manager.sessions():
            asked = session.questions_asked()
            total_questions += asked
            sessions[session.session_id] = {
                "state": session.state.value,
                "questions": asked,
                "msps": len(session.msps()),
                "valid_msps": len(session.valid_msps()),
            }
        settled = sum(1 for s in sessions.values() if s["state"] != "open")
        return {
            "workers": self.workers,
            "elapsed_seconds": elapsed,
            "timed_out": self.timed_out,
            "sessions": sessions,
            "questions_answered": total_questions,
            "sessions_per_second": settled / elapsed if elapsed > 0 else 0.0,
            "questions_per_second": (
                total_questions / elapsed if elapsed > 0 else 0.0
            ),
            "members": {
                member_id: {
                    "answered": script.answered,
                    "dropped": script.dropped,
                    "departed": script.departed,
                }
                for member_id, script in self.scripts.items()
            },
        }
