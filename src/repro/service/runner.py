"""ServiceRunner: worker threads driving a SessionManager to quiescence.

The proof of the locking story: N daemon workers pull member ids off a
shared rotation queue, fetch a batch for that member, play the member's
scripted behaviour (answer / drop / depart), submit the results and put
the member back into rotation.  Because a member id is held by exactly
one worker at a time, each stateful :class:`~repro.crowd.member.
CrowdMember` is only ever touched by one thread — concurrency comes from
*different* members being served in parallel, which is also how a real
crowd behaves.

Fault injection (see :mod:`repro.faults`): when the runner carries a
:class:`~repro.faults.plan.FaultPlan`, two sites are consulted —
``member.answer`` once per delivered question (timeouts, departures,
malformed answers, duplicate deliveries override the script's behaviour)
and ``runner.worker`` once per member checkout (an injected
:class:`~repro.faults.plan.InjectedCrash` kills the worker thread while
it holds a member).  A supervisor loop in :meth:`ServiceRunner.run`
detects dead workers, returns the members they held to rotation and
respawns replacements, so the pool heals the way a real serving fleet
would.

The observability tracer is context-local and does not propagate into
threads, so each worker re-enables the tracer that was active when
:meth:`ServiceRunner.run` was called; the thread-safe
:class:`~repro.observability.Tracer` (locked counters, per-thread span
stacks) then aggregates across workers.
"""

from __future__ import annotations

import queue as queue_module
import threading
import time
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..crowd.member import CrowdMember
from ..crowd.questions import ConcreteQuestion
from ..engine.queue_manager import AnswerOutcome
from ..faults.plan import MALFORMED_SUPPORT, FaultKind, FaultPlan, InjectedCrash
from ..observability import (
    count as _obs_count,
    disable as _obs_disable,
    enable as _obs_enable,
    get_tracer,
)
from .manager import DispatchedQuestion, SessionManager

#: sentinel actions a :class:`MemberScript` can take instead of answering
DROP = "drop"
DEPART = "depart"


class MemberScript:
    """Deterministic behaviour of one simulated member under service load.

    Wraps a :class:`~repro.crowd.member.CrowdMember` and injects the
    failure modes the service must absorb:

    * ``drop_every=n`` — every n-th delivered question is silently
      ignored (it will hit its deadline, be reaped and retried);
    * ``depart_after=n`` — after answering n questions the member departs
      (the runner detaches them from the manager).

    Counters, not randomness: behaviour depends only on how many
    questions the member has seen, keeping simulations reproducible.
    """

    def __init__(
        self,
        member: CrowdMember,
        *,
        drop_every: int = 0,
        depart_after: Optional[int] = None,
    ) -> None:
        self.member = member
        self.member_id = member.member_id
        self.drop_every = drop_every
        self.depart_after = depart_after
        self.seen = 0
        self.answered = 0
        self.dropped = 0
        self.departed = False

    def respond(self, question: DispatchedQuestion) -> Union[str, float]:
        """The member's reaction: a support value, ``DROP`` or ``DEPART``."""
        if self.depart_after is not None and self.answered >= self.depart_after:
            self.departed = True
            return DEPART
        self.seen += 1
        if self.drop_every and self.seen % self.drop_every == 0:
            self.dropped += 1
            return DROP
        self.answered += 1
        answer = self.member.answer_concrete(
            ConcreteQuestion(question.assignment, question.fact_set)
        )
        return answer.support


class ServiceRunner:
    """Drives a :class:`SessionManager` with N worker threads."""

    def __init__(
        self,
        manager: SessionManager,
        scripts: Iterable[MemberScript],
        *,
        workers: int = 4,
        batch_size: Optional[int] = None,
        poll_interval: float = 0.002,
        max_runtime: float = 60.0,
        faults: Optional[FaultPlan] = None,
        audit: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.manager = manager
        self.scripts: Dict[str, MemberScript] = {
            script.member_id: script for script in scripts
        }
        self.workers = workers
        self.batch_size = batch_size
        self.poll_interval = poll_interval
        self.max_runtime = max_runtime
        self.faults = faults if faults is not None else manager.faults
        self.timed_out = False
        self.crashed_workers = 0
        #: when ``audit`` is on: one entry per submission attempt, for
        #: durability invariant checks (see repro.faults.chaos).  Guarded
        #: by _audit_lock — deliberately NOT named ``_lock``/``lock`` so
        #: the static lock-nesting rule keeps tracking only the two
        #: contract locks.
        self.audit: Optional[List[Dict[str, object]]] = [] if audit else None
        self._audit_lock = threading.Lock()
        # members held by workers that crashed, awaiting return to rotation
        self._lost_members: List[str] = []

    # ----------------------------------------------------------------- audit

    def _note_submission(
        self,
        question: DispatchedQuestion,
        support: Optional[float],
        outcome: AnswerOutcome,
    ) -> None:
        if self.audit is None:
            return
        entry: Dict[str, object] = {
            "session_id": question.session_id,
            "member_id": question.member_id,
            "assignment": repr(question.assignment),
            "support": support,
            "outcome": outcome.value,
        }
        with self._audit_lock:
            self.audit.append(entry)

    # ------------------------------------------------------------------- run

    def run(self) -> Dict:
        """Serve until every session settles; returns a summary report.

        Attaches the scripted members (idempotent), spins up the worker
        pool and blocks until :meth:`SessionManager.all_done` or
        ``max_runtime`` elapses (the deadlock guard — ``timed_out`` is set
        in the report instead of hanging forever).  Workers killed by an
        injected crash are respawned and the member they held is returned
        to rotation.
        """
        for member_id in self.scripts:
            self.manager.attach_member(member_id)
        tracer = get_tracer()
        rotation: "queue_module.Queue[str]" = queue_module.Queue()
        for member_id in self.scripts:
            rotation.put(member_id)
        stop = threading.Event()
        started = time.perf_counter()
        deadline = started + self.max_runtime

        def serve() -> None:
            if tracer is not None:
                _obs_enable(tracer)
            try:
                while not stop.is_set():
                    if time.perf_counter() >= deadline:
                        self.timed_out = True
                        stop.set()
                        return
                    try:
                        member_id = rotation.get(timeout=self.poll_interval)
                    except queue_module.Empty:
                        self.manager.reap_expired()
                        if self.manager.all_done():
                            stop.set()
                        continue
                    try:
                        self._serve_member(member_id, rotation, stop)
                    except InjectedCrash:
                        # the worker dies holding the member; the
                        # supervisor respawns us and requeues them
                        self.crashed_workers += 1
                        _obs_count("service.workers.crashed")
                        with self._audit_lock:
                            self._lost_members.append(member_id)
                        return
            finally:
                if tracer is not None:
                    _obs_disable()

        def spawn(index: int) -> threading.Thread:
            thread = threading.Thread(
                target=serve, name=f"service-worker-{index}", daemon=True
            )
            thread.start()
            return thread

        threads = [spawn(index) for index in range(self.workers)]
        # Supervisor: watch for crashed workers, heal the pool, and stop
        # the run even if every worker died at once.
        while not stop.is_set():
            if time.perf_counter() >= deadline:
                self.timed_out = True
                stop.set()
                break
            for index, thread in enumerate(threads):
                if not thread.is_alive() and not stop.is_set():
                    with self._audit_lock:
                        lost = self._lost_members
                        self._lost_members = []
                    for member_id in lost:
                        rotation.put(member_id)
                    threads[index] = spawn(index)
            self.manager.reap_expired()
            if self.manager.all_done():
                stop.set()
                break
            time.sleep(self.poll_interval)
        for thread in threads:
            thread.join(timeout=self.max_runtime + 5 * self.poll_interval + 1.0)
        elapsed = time.perf_counter() - started
        return self._report(elapsed)

    def _serve_member(
        self,
        member_id: str,
        rotation: "queue_module.Queue[str]",
        stop: threading.Event,
    ) -> None:
        """One rotation turn: fetch a batch, play the member, submit."""
        if self.faults is not None:
            self.faults.maybe_crash("runner.worker", member_id)
        script = self.scripts[member_id]
        requeue = True
        batch = self.manager.next_batch(member_id, k=self.batch_size)
        for question in batch:
            action = self._respond(script, question)
            if isinstance(action, str):
                if action == DEPART:
                    self.manager.detach_member(member_id)
                    requeue = False
                    break
                continue  # DROP — never answered: reaped at its deadline
            deliveries = 1
            if isinstance(action, tuple):
                support, deliveries = action
            else:
                support = action
            for _ in range(deliveries):
                outcome = self.manager.submit(question, support)
                self._note_submission(question, support, outcome)
        self.manager.reap_expired()
        if self.manager.all_done():
            stop.set()
        if requeue and not stop.is_set():
            rotation.put(member_id)
        if not batch:
            # dry or backed off right now; yield before retrying
            time.sleep(self.poll_interval)

    def _respond(
        self, script: MemberScript, question: DispatchedQuestion
    ) -> Union[str, float, Tuple[float, int]]:
        """The script's answer, possibly overridden by an injected fault."""
        fault = (
            self.faults.decide("member.answer", script.member_id)
            if self.faults is not None
            else None
        )
        if fault is FaultKind.TIMEOUT:
            script.dropped += 1
            return DROP
        if fault is FaultKind.DEPART:
            script.departed = True
            return DEPART
        if fault is FaultKind.MALFORMED:
            return MALFORMED_SUPPORT
        action = script.respond(question)
        if fault is FaultKind.DUPLICATE and isinstance(action, float):
            return (action, 2)  # deliver the same answer twice
        return action

    def _report(self, elapsed: float) -> Dict:
        sessions = {}
        total_questions = 0
        for session in self.manager.sessions():
            asked = session.questions_asked()
            total_questions += asked
            sessions[session.session_id] = {
                "state": session.state.value,
                "questions": asked,
                "msps": len(session.msps()),
                "valid_msps": len(session.valid_msps()),
            }
        settled = sum(1 for s in sessions.values() if s["state"] != "open")
        return {
            "workers": self.workers,
            "elapsed_seconds": elapsed,
            "timed_out": self.timed_out,
            "crashed_workers": self.crashed_workers,
            "faults_injected": (
                self.faults.injected() if self.faults is not None else {}
            ),
            "sessions": sessions,
            "questions_answered": total_questions,
            "sessions_per_second": settled / elapsed if elapsed > 0 else 0.0,
            "questions_per_second": (
                total_questions / elapsed if elapsed > 0 else 0.0
            ),
            "members": {
                member_id: {
                    "answered": script.answered,
                    "dropped": script.dropped,
                    "departed": script.departed,
                }
                for member_id, script in self.scripts.items()
            },
        }
