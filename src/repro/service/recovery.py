"""Crash recovery: rebuild a killed session from journal + checkpoint.

The restore protocol (see ``docs/RELIABILITY.md``):

1. the **checkpoint** (tiny JSON written atomically by
   :meth:`~repro.service.session.QuerySession.enable_checkpoints`) names
   the query text, sample size and session id — everything needed to
   rebuild the assignment space;
2. the **journal** (:mod:`repro.crowd.journal`) holds every acknowledged
   answer as ``(assignment repr, member, support)`` records in arrival
   order;
3. :func:`resolve_journal` maps the string keys back to live
   :class:`~repro.assignments.assignment.Assignment` objects by walking
   the lattice from its roots, expanding successors whenever a replayed
   support reaches the query threshold.  This terminates with every
   record resolved because the :class:`~repro.engine.queue_manager.
   QueueManager` journals a parent's qualifying answer *before* pushing
   its successors — a child record can never precede its parent's in the
   journal;
4. :func:`restore_session` reopens the journal as a preloaded
   :class:`~repro.crowd.journal.DurableCrowdCache` and resumes through
   the ordinary ``create_session(..., resume=True)`` path, so the
   aggregator verdicts, classification state and per-member frontiers
   are reconstructed exactly as a snapshot resume would.

Because the resumed session re-collects only the answers that were never
acknowledged, an interrupted run reaches the same MSP set as an
uninterrupted one (the recovery identity tested in
``tests/test_recovery.py`` and benchmarked in
``benchmarks/bench_faults.py``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..assignments.assignment import Assignment
from ..assignments.generator import QueryAssignmentSpace
from ..crowd.journal import DurableCrowdCache, JournalRecord, replay_journal
from ..observability import count as _obs_count, span as _obs_span
from .manager import SessionManager
from .session import CHECKPOINT_VERSION, QuerySession

PathLike = Union[str, Path]


def read_checkpoint(path: PathLike) -> Dict[str, object]:
    """Load and validate a session checkpoint; raises on wrong schema."""
    with Path(path).open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError(f"checkpoint {path} is not a JSON object")
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"checkpoint {path} has version {version!r}, "
            f"expected {CHECKPOINT_VERSION}"
        )
    if not isinstance(payload.get("query"), str):
        raise ValueError(f"checkpoint {path} lacks the query text")
    return payload


def resolve_journal(
    space: QueryAssignmentSpace,
    threshold: float,
    records: Sequence[JournalRecord],
) -> Tuple[Dict[Assignment, List[Tuple[str, float]]], int]:
    """Map journal keys back to live assignments by walking the lattice.

    Starts from the space's roots and registers each reachable node under
    its deterministic ``repr``; whenever a resolved record's support
    reaches ``threshold`` the node's successors become reachable too —
    mirroring exactly how the traversal that *wrote* the journal explored
    the lattice.  Returns ``(assignment -> [(member, support), ...] in
    arrival order, unresolved record count)``.  Unresolved records (a
    truncated journal whose parent record was lost) are counted, not
    fatal.
    """
    known: Dict[str, Assignment] = {}
    for root in space.roots():
        known[repr(root)] = root
    resolved: Dict[Assignment, List[Tuple[str, float]]] = {}
    consumed = [False] * len(records)
    remaining = len(records)
    progress = True
    while progress and remaining:
        progress = False
        for index, record in enumerate(records):
            if consumed[index]:
                continue
            node = known.get(record.key)
            if node is None:
                continue
            consumed[index] = True
            remaining -= 1
            progress = True
            resolved.setdefault(node, []).append((record.member, record.support))
            if record.support >= threshold:
                for successor in space.successors(node):
                    known.setdefault(repr(successor), successor)
    if len(records) > remaining:
        _obs_count("recovery.answers.resolved", len(records) - remaining)
    return resolved, remaining


def restore_session(
    manager: SessionManager,
    *,
    checkpoint_path: PathLike,
    journal_path: PathLike,
    session_id: Optional[str] = None,
    checkpoint_every: int = 0,
    fsync: bool = False,
) -> QuerySession:
    """Resume a killed session from its checkpoint + WAL journal.

    Rebuilds the assignment space from the checkpointed query, resolves
    the journal's string keys to live assignments, reopens the journal as
    a preloaded :class:`~repro.crowd.journal.DurableCrowdCache` (new
    answers keep appending; replayed identities stay idempotent) and
    resumes through ``create_session(..., resume=True)``.  With
    ``checkpoint_every > 0`` the restored session continues writing
    checkpoints to the same path.
    """
    with _obs_span("recovery.restore"):
        payload = read_checkpoint(checkpoint_path)
        query_text = str(payload["query"])
        raw_sample = payload.get("sample_size")
        sample_size = int(raw_sample) if isinstance(raw_sample, int) else None
        include_invalid = bool(payload.get("include_invalid", False))
        sid = session_id if session_id is not None else str(payload["session_id"])
        parsed = manager.engine._as_query(query_text)
        space = manager.engine.build_space(parsed)
        records, _corrupt = replay_journal(journal_path)
        resolved, unresolved = resolve_journal(space, parsed.threshold, records)
        if unresolved:
            _obs_count("recovery.answers.unresolved", unresolved)
        cache = DurableCrowdCache(journal_path, preload=resolved, fsync=fsync)
        session = manager.create_session(
            query_text,
            session_id=sid,
            cache=cache,
            resume=True,
            sample_size=sample_size,
            include_invalid=include_invalid,
        )
        if checkpoint_every > 0:
            session.enable_checkpoints(checkpoint_path, every=checkpoint_every)
    _obs_count("recovery.sessions.restored")
    return session
