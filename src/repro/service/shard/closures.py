"""Ship compiled taxonomy closures to shards via shared memory.

Compiling the transitive-closure bitsets of a large taxonomy is the one
expensive, redundant piece of shard start-up — every shard would burn
the same CPU recompiling what the coordinator already has.  Instead the
coordinator exports both vocabulary orders once
(:meth:`~repro.vocabulary.orders.PartialOrder.export_closures`) into a
single read-only :class:`multiprocessing.shared_memory.SharedMemory`
segment, and each shard adopts them by name
(:meth:`~repro.vocabulary.orders.PartialOrder.adopt_closures`) — a
structural SHA-1 signature inside each blob guarantees the shard's
locally-built vocabulary matches the coordinator's before any bit is
trusted.

Lifecycle: the coordinator owns the segment (``close()`` + ``unlink()``
via :meth:`SharedClosures.unlink`); shards only ever attach and
``close()``.  Shards must *not* unregister the segment from the
resource tracker — under the ``spawn`` start method children share the
parent's tracker process, and an explicit unregister there would drop
the parent's own registration.
"""

from __future__ import annotations

import struct
from multiprocessing import shared_memory
from typing import Tuple

from ...vocabulary.vocabulary import Vocabulary

#: segment layout: lengths of the element/relation closure blobs
_SEGMENT_HEADER = struct.Struct("!II")


class SharedClosures:
    """Coordinator-side owner of the exported closure segment."""

    def __init__(self, vocabulary: Vocabulary) -> None:
        element_blob = vocabulary.element_order.export_closures()
        relation_blob = vocabulary.relation_order.export_closures()
        size = _SEGMENT_HEADER.size + len(element_blob) + len(relation_blob)
        self._shm = shared_memory.SharedMemory(create=True, size=size)
        view = self._shm.buf
        _SEGMENT_HEADER.pack_into(
            view, 0, len(element_blob), len(relation_blob)
        )
        offset = _SEGMENT_HEADER.size
        view[offset : offset + len(element_blob)] = element_blob
        offset += len(element_blob)
        view[offset : offset + len(relation_blob)] = relation_blob
        self.size = size

    @property
    def name(self) -> str:
        """The segment name shards attach to."""
        return self._shm.name

    def unlink(self) -> None:
        """Release the segment (idempotent); coordinator-side only."""
        try:
            self._shm.close()
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "SharedClosures":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.unlink()


def read_closure_blobs(name: str) -> Tuple[bytes, bytes]:
    """Attach to a closure segment and copy out both blobs (shard side)."""
    shm = shared_memory.SharedMemory(name=name)
    try:
        view = shm.buf
        element_len, relation_len = _SEGMENT_HEADER.unpack_from(view, 0)
        offset = _SEGMENT_HEADER.size
        element_blob = bytes(view[offset : offset + element_len])
        offset += element_len
        relation_blob = bytes(view[offset : offset + relation_len])
        return element_blob, relation_blob
    finally:
        # attach-only: never unlink or unregister from the shard side
        shm.close()


def adopt_shared_closures(name: str, vocabulary: Vocabulary) -> None:
    """Install the coordinator's compiled closures into ``vocabulary``.

    Raises ``ValueError`` when the shard's vocabulary is structurally
    different from the exporter's (the signature check) — the safe
    failure mode is a recompile, so callers should treat this as fatal
    misconfiguration rather than fall back silently.
    """
    element_blob, relation_blob = read_closure_blobs(name)
    vocabulary.element_order.adopt_closures(element_blob)
    vocabulary.relation_order.adopt_closures(relation_blob)
