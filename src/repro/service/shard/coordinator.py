"""ShardCoordinator: query lifecycle over a fleet of shard processes.

The coordinator owns everything per-query — parsing, the lazy assignment
lattice, classification state, aggregator and :class:`~repro.mining.
trace.MspTracker` — by driving one ordinary
:class:`~repro.engine.queue_manager.QueueManager` per session with a
single *virtual member*.  Where a real member would answer a pending
question, the coordinator splits the node's ``sample_size`` answer quota
across shard processes (proportional to their consistent-hash member
partitions), ships asks over the length-prefixed protocol, and feeds the
returned per-member support answers back through
:meth:`~repro.engine.queue_manager.QueueManager.preload` — the exact
entry point snapshot-resume uses.  Every inference, verdict and MSP
confirmation therefore runs the same proven code as the serial and
threaded paths, which is what makes the serial-MSP-identity oracle hold
for every shard count.

Concurrency model: the coordinator is a **single-threaded event loop**
(dispatch → select → merge); it holds no locks at all.  Parallelism
lives in the shard processes, each of which owns its member partition
exclusively.  Backpressure is a per-shard cap on outstanding asks;
batching groups asks into one frame up to ``batch_size``.

Failure story (see ``docs/SHARDING.md`` and ``docs/RELIABILITY.md``):
:meth:`kill_shard` + :meth:`restore_shard` implement the chaos
campaign's kill-one-shard → WAL-restore cycle.  Asks in flight at the
dead shard are re-sent after restore; the stable per-node ``qid`` makes
the restored shard select the *same* members, whose answers its
replayed WAL already holds, so recovery never recomputes and never
diverges.  With a :class:`~repro.service.supervisor.ShardSupervisor`
attached, death detection and restart become *automatic*: a socket EOF,
a torn frame, a dead process or a missed heartbeat routes through
:meth:`_on_shard_failure` to the supervisor instead of raising, and the
supervisor restarts the shard (WAL replay) or — after bounded restart
failures — retires it via :meth:`degrade`, re-hashing its members onto
survivors through the ring's churn path.  :meth:`abort` is the
coordinator-crash fault: hard teardown with no shutdown handshake, so a
rebuilt coordinator over the same ``durable_dir`` proves WAL recovery.
"""

from __future__ import annotations

import multiprocessing
import os
import selectors
import signal
import socket
import time
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

from collections import deque

from ...datasets.base import DomainDataset
from ...engine.engine import OassisEngine
from ...engine.queue_manager import PendingQuestion, QueueManager
from ...observability import count as _obs_count, span as _obs_span
from .closures import SharedClosures
from .hashring import DEFAULT_REPLICAS, HashRing, split_quota
from .protocol import (
    ProtocolError,
    Runs,
    ask_batch_frame,
    ask_entry,
    ping_frame,
    recv_frame,
    reshard_frame,
    runs_total,
    send_frame,
    shutdown_frame,
)
from .worker import STAT_KEYS, member_ids, shard_main

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a runtime cycle
    from ..supervisor import ShardSupervisor

#: the coordinator's single traversal identity inside each QueueManager
VIRTUAL_MEMBER = "shard-coordinator"


class _NodeAsk:
    """One node's fan-out: quota split, per-shard runs, merge state."""

    __slots__ = ("session_id", "node", "key", "qid", "facts", "starts", "waiting", "runs", "fed")

    def __init__(
        self,
        session_id: str,
        node: Any,
        key: str,
        qid: int,
        facts: List[List[str]],
        starts: Dict[int, int],
    ) -> None:
        self.session_id = session_id
        self.node = node
        self.key = key
        self.qid = qid
        self.facts = facts
        self.starts = starts
        self.waiting: Set[int] = set(starts)
        self.runs: Dict[int, Runs] = {}
        self.fed = False


class _ShardHandle:
    """Coordinator-side state of one shard process."""

    __slots__ = (
        "index",
        "spec",
        "process",
        "sock",
        "alive",
        "outstanding",
        "inflight",
        "members",
        "replayed",
        "stats",
        "last_seen",
        "ping_sent",
        "retired",
    )

    def __init__(self, index: int, spec: Dict[str, Any]) -> None:
        self.index = index
        self.spec = spec
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.sock: Optional[socket.socket] = None
        self.alive = False
        self.outstanding = 0
        self.inflight: Set[int] = set()
        self.members = 0
        self.replayed = 0
        self.stats: Dict[str, int] = {}
        #: monotonic time of the last frame received (heartbeat liveness)
        self.last_seen = 0.0
        #: an unanswered ping as ``(seq, sent_at)``; None when quiet
        self.ping_sent: Optional[Tuple[int, float]] = None
        #: True once the supervisor gave up and rehashed this shard away
        self.retired = False


class _Session:
    """One query being mined through the shard fleet."""

    def __init__(self, session_id: str, query_text: str, queue: QueueManager) -> None:
        self.session_id = session_id
        self.query_text = query_text
        self.queue = queue
        self.answers = 0
        self.nodes = 0
        self.complete = False

    @property
    def state(self) -> str:
        return "completed" if self.complete else "open"


class ShardCoordinator:
    """Process-sharded crowd serving behind the engine facade."""

    def __init__(
        self,
        domain_dataset: DomainDataset,
        *,
        shards: int,
        crowd_size: int,
        sample_size: int,
        domain: str,
        seed: int = 0,
        engine: Optional[OassisEngine] = None,
        durable_dir: Optional[Union[str, Path]] = None,
        replicas: int = DEFAULT_REPLICAS,
        batch_size: int = 8,
        max_outstanding: int = 32,
        max_runtime: float = 120.0,
        spawn_timeout: float = 60.0,
        chaos_hook: Optional[Callable[["ShardCoordinator"], None]] = None,
        supervisor: Optional["ShardSupervisor"] = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if sample_size < 1 or sample_size > crowd_size:
            raise ValueError("need 1 <= sample_size <= crowd_size")
        if batch_size < 1 or max_outstanding < 1:
            raise ValueError("batch_size and max_outstanding must be positive")
        self.dataset = domain_dataset
        self.domain = domain
        self.engine = engine if engine is not None else OassisEngine(domain_dataset.ontology)
        self.shards = shards
        self.crowd_size = crowd_size
        self.sample_size = sample_size
        self.seed = seed
        self.replicas = replicas
        self.batch_size = batch_size
        self.max_outstanding = max_outstanding
        self.max_runtime = max_runtime
        self.spawn_timeout = spawn_timeout
        self.durable_dir = Path(durable_dir) if durable_dir is not None else None
        self.ring = HashRing(shards, replicas)
        self.partitions = self.ring.partition(member_ids(crowd_size))
        self.quotas = split_quota(sample_size, [len(p) for p in self.partitions])
        self.chaos_hook = chaos_hook
        #: heartbeat monitor + auto-restart; None = PR 7 manual chaos
        self.supervisor = supervisor
        self.timed_out = False
        self.nodes_classified = 0
        self._ping_seq = 0
        self._started = False
        self._closed = False
        self._elapsed = 0.0
        self._closures: Optional[SharedClosures] = None
        self._ctx = multiprocessing.get_context("spawn")
        self._selector = selectors.DefaultSelector()
        self._handles: List[_ShardHandle] = []
        self._sessions: Dict[str, _Session] = {}
        self._next_qid = 0
        self._qids: Dict[Tuple[str, str], int] = {}
        self._asks: Dict[int, Tuple[_Session, _NodeAsk]] = {}
        self._sendq: List[Deque[int]] = [deque() for _ in range(shards)]

    # ------------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Export closures, spawn every shard and await their ready frames."""
        if self._started:
            return
        with _obs_span("shard.start"):
            self._closures = SharedClosures(self.dataset.ontology.vocabulary)
            for index in range(self.shards):
                self._handles.append(_ShardHandle(index, self._spec(index)))
                self._spawn(self._handles[index])
            for handle in self._handles:
                self._await_ready(handle)
        self._started = True

    def _spec(self, index: int) -> Dict[str, Any]:
        assert self._closures is not None
        wal: Optional[str] = None
        if self.durable_dir is not None:
            wal = str(self.durable_dir / f"shard-{index}.wal")
        return {
            "shard": index,
            "shards": self.shards,
            "replicas": self.replicas,
            "domain": self.domain,
            "seed": self.seed,
            "crowd_size": self.crowd_size,
            "closures": self._closures.name,
            "wal": wal,
        }

    def _spawn(self, handle: _ShardHandle) -> None:
        with _obs_span("shard.spawn"):
            parent_sock, child_sock = socket.socketpair()
            process = self._ctx.Process(
                target=shard_main,
                args=(handle.spec, child_sock),
                name=f"repro-shard-{handle.index}",
                daemon=True,
            )
            process.start()
            child_sock.close()
            handle.process = process
            handle.sock = parent_sock
            handle.alive = True
            handle.outstanding = 0
            handle.inflight = set()
            handle.last_seen = time.monotonic()
            handle.ping_sent = None
            self._selector.register(parent_sock, selectors.EVENT_READ, handle)
        _obs_count("shard.spawns")

    def _await_ready(self, handle: _ShardHandle) -> None:
        assert handle.sock is not None
        handle.sock.settimeout(self.spawn_timeout)
        try:
            frame = recv_frame(handle.sock)
        finally:
            handle.sock.settimeout(None)
        if frame is None or frame.get("t") != "ready":
            raise RuntimeError(f"shard {handle.index} failed to come up: {frame!r}")
        handle.members = int(frame["members"])
        handle.replayed = int(frame["replayed"])
        if handle.members != len(self.partitions[handle.index]):
            raise RuntimeError(
                f"shard {handle.index} computed a partition of "
                f"{handle.members} members; coordinator expected "
                f"{len(self.partitions[handle.index])}"
            )
        _obs_count("shard.wal.replayed", handle.replayed)
        _obs_count("shard.closure.compiles", int(frame["compiles"]))

    # -------------------------------------------------------------- sessions

    def create_session(self, query_text: str, session_id: str) -> _Session:
        """Open a session; the query is parsed and its lattice built here."""
        if session_id in self._sessions:
            raise ValueError(f"duplicate session id {session_id!r}")
        queue = self.engine.queue_manager(query_text, sample_size=self.sample_size)
        queue.register_member(VIRTUAL_MEMBER)
        session = _Session(session_id, query_text, queue)
        self._sessions[session_id] = session
        _obs_count("shard.sessions.created")
        return session

    def sessions(self) -> List[_Session]:
        return list(self._sessions.values())

    # ------------------------------------------------------------------ serve

    def serve(self) -> None:
        """Drive every open session to completion (the event loop)."""
        if not self._started:
            self.start()
        started = time.monotonic()
        deadline = started + self.max_runtime
        with _obs_span("shard.serve"):
            while True:
                if self.chaos_hook is not None:
                    self.chaos_hook(self)
                if self.supervisor is not None:
                    self.supervisor.tick(self)
                progressed = self._dispatch()
                if self._check_complete():
                    break
                drained = self._drain(timeout=0.0 if progressed else 0.05)
                if self._check_complete():
                    break
                if not progressed and not drained and time.monotonic() >= deadline:
                    self.timed_out = True
                    _obs_count("shard.serve.timeouts")
                    break
        self._elapsed += time.monotonic() - started

    def _dispatch(self) -> bool:
        """Pull fresh nodes from sessions and flush per-shard batches."""
        progressed = False
        high_water = self.max_outstanding * max(1, len(self._handles))
        for session in self._sessions.values():
            if session.complete:
                continue
            while self._queued() < high_water:
                batch = session.queue.next_batch(
                    VIRTUAL_MEMBER, self.batch_size, fresh_only=True
                )
                if not batch:
                    break
                for pending in batch:
                    self._enqueue(session, pending)
                    progressed = True
                if len(batch) < self.batch_size:
                    break
        for handle in self._handles:
            progressed = self._flush(handle) or progressed
        return progressed

    def _queued(self) -> int:
        return sum(len(q) for q in self._sendq) + sum(
            h.outstanding for h in self._handles
        )

    def _enqueue(self, session: _Session, pending: PendingQuestion) -> None:
        key = repr(pending.assignment)
        qid = self._qids.get((session.session_id, key))
        if qid is None:
            qid = self._next_qid
            self._next_qid += 1
            self._qids[(session.session_id, key)] = qid
        assert pending.fact_set is not None
        facts = [
            [fact.subject.name, fact.relation.name, fact.obj.name]
            for fact in sorted(pending.fact_set)
        ]
        starts = {
            shard: qid % len(self.partitions[shard])
            for shard, quota in enumerate(self.quotas)
            if quota > 0
        }
        ask = _NodeAsk(session.session_id, pending.assignment, key, qid, facts, starts)
        self._asks[qid] = (session, ask)
        session.nodes += 1
        for shard in ask.waiting:
            self._sendq[shard].append(qid)
        _obs_count("shard.nodes.asked")

    def _flush(self, handle: _ShardHandle) -> bool:
        """Send queued asks to one shard, respecting the outstanding cap."""
        if not handle.alive or handle.sock is None:
            return False
        queue = self._sendq[handle.index]
        sent = False
        while queue and handle.outstanding < self.max_outstanding:
            entries: List[Dict[str, Any]] = []
            while (
                queue
                and handle.outstanding + len(entries) < self.max_outstanding
                and len(entries) < self.batch_size
            ):
                qid = queue.popleft()
                record = self._asks.get(qid)
                if record is None:
                    continue
                _, ask = record
                entries.append(
                    ask_entry(
                        ask.qid,
                        ask.key,
                        ask.facts,
                        ask.starts[handle.index],
                        self.quotas[handle.index],
                    )
                )
                handle.inflight.add(qid)
            if not entries:
                break
            try:
                send_frame(handle.sock, ask_batch_frame(entries))
            except OSError as error:
                # the shard died under us mid-write; its inflight set
                # already holds these qids, so a restore re-sends them
                self._on_shard_failure(handle, f"ask write failed: {error}")
                return sent
            handle.outstanding += len(entries)
            sent = True
            _obs_count("shard.batches.sent")
            _obs_count("shard.asks.sent", len(entries))
        if queue and handle.outstanding >= self.max_outstanding:
            _obs_count("shard.backpressure.deferred", len(queue))
        return sent

    def _drain(self, timeout: float) -> bool:
        """Receive and merge every ready delta; True when any arrived."""
        drained = False
        events = self._selector.select(timeout)
        for selector_key, _ in events:
            handle = selector_key.data
            if not isinstance(handle, _ShardHandle) or not handle.alive:
                continue
            assert handle.sock is not None
            try:
                frame = recv_frame(handle.sock)
            except ProtocolError as error:
                self._on_shard_failure(handle, f"torn frame: {error}")
                continue
            if frame is None:
                self._on_shard_failure(handle, "connection closed")
                continue
            handle.last_seen = time.monotonic()
            kind = frame["t"]
            if kind == "delta":
                self._on_delta(handle, frame)
                drained = True
            elif kind == "pong":
                handle.ping_sent = None
            elif kind == "resharded":
                handle.members = int(frame["members"])
            else:
                raise ProtocolError(
                    f"unexpected {kind!r} frame from shard {handle.index}"
                )
        return drained

    def _on_shard_failure(self, handle: _ShardHandle, reason: str) -> None:
        """A shard's socket or process failed mid-serve.

        Without a supervisor this is fatal, exactly the PR 7 behavior.
        With one, the handle is torn down and the death is reported; the
        supervisor's next tick restarts the shard or degrades around it.
        """
        if self.supervisor is None:
            raise RuntimeError(
                f"shard {handle.index} exited unexpectedly ({reason})"
            )
        self._mark_dead(handle)
        self.supervisor.record_death(handle.index, reason)

    def _mark_dead(self, handle: _ShardHandle) -> None:
        """Tear one shard's handle down (idempotent; kills a live process)."""
        if handle.sock is not None:
            try:
                self._selector.unregister(handle.sock)
            except (KeyError, ValueError):
                pass  # selector already forgot it (double teardown)
            handle.sock.close()
            handle.sock = None
        if handle.process is not None and handle.process.is_alive():
            handle.process.kill()
            handle.process.join(timeout=self.spawn_timeout)
        handle.alive = False
        handle.ping_sent = None

    def _on_delta(self, handle: _ShardHandle, frame: Dict[str, Any]) -> None:
        qid = int(frame["qid"])
        handle.outstanding = max(0, handle.outstanding - 1)
        handle.inflight.discard(qid)
        _obs_count("shard.deltas.received")
        record = self._asks.get(qid)
        if record is None:
            _obs_count("shard.deltas.stale")
            return
        session, ask = record
        shard = int(frame["shard"])
        if shard not in ask.waiting:
            _obs_count("shard.deltas.stale")
            return
        runs: Runs = [[float(s), int(c)] for s, c in frame["runs"]]
        if runs_total(runs) != self.quotas[shard]:
            raise ProtocolError(
                f"shard {shard} returned {runs_total(runs)} answers for "
                f"qid {qid}; quota is {self.quotas[shard]}"
            )
        ask.runs[shard] = runs
        ask.waiting.discard(shard)
        if not ask.waiting and not ask.fed:
            self._feed(session, ask)

    def _feed(self, session: _Session, ask: _NodeAsk) -> None:
        """Merge a completed node's answers into the session's queue.

        Answers are replayed through ``preload`` (aggregator + verdict +
        tracker), then the virtual member's traversal is advanced by
        marking the node answered with the aggregator's decision average
        and returning it to the stack — the next ``next_batch`` consumes
        it as answered and expands its successors iff significant.
        """
        queue = session.queue
        merged = 0
        for shard in sorted(ask.runs):
            partition = self.partitions[shard]
            start = ask.starts[shard]
            offset = 0
            for support, count in ask.runs[shard]:
                for _ in range(int(count)):
                    member = partition[(start + offset) % len(partition)]
                    queue.preload(ask.node, member, float(support))
                    offset += 1
                    merged += 1
        average = queue.aggregator.average_support(ask.node)
        queue.mark_answered(VIRTUAL_MEMBER, ask.node, average)
        queue.expire_pending(VIRTUAL_MEMBER, ask.node)
        ask.fed = True
        session.answers += merged
        self.nodes_classified += 1
        self._asks.pop(ask.qid, None)
        _obs_count("shard.answers.merged", merged)
        _obs_count("shard.nodes.classified")

    def _check_complete(self) -> bool:
        all_complete = True
        for session in self._sessions.values():
            if session.complete:
                continue
            queue = session.queue
            if queue.has_pending() or queue.has_fresh_work(VIRTUAL_MEMBER):
                all_complete = False
                continue
            session.complete = True
            _obs_count("shard.sessions.completed")
        return all_complete

    # --------------------------------------------------------- chaos surface

    def kill_shard(self, index: int) -> None:
        """Hard-kill one shard process (the chaos campaign's fault)."""
        handle = self._handles[index]
        if not handle.alive:
            return
        self._mark_dead(handle)
        _obs_count("shard.kills")

    def hang_shard(self, index: int) -> None:
        """SIGSTOP one shard: alive process, dead protocol (the hang fault).

        Only the heartbeat can catch this — the socket stays open and
        the process stays "alive", but pings go unanswered until the
        supervisor declares it unresponsive and kills it for real.
        """
        handle = self._handles[index]
        if not handle.alive or handle.process is None or handle.process.pid is None:
            return
        os.kill(handle.process.pid, signal.SIGSTOP)

    def restore_shard(self, index: int) -> int:
        """Respawn a killed shard on its WAL; re-send its lost asks.

        Returns the number of asks re-sent.  The restored worker replays
        its journal before its ready frame, so the re-asks are served
        from memory — the WAL-restore path of ``docs/SHARDING.md``.
        """
        handle = self._handles[index]
        if handle.alive or handle.retired:
            return 0
        lost = sorted(handle.inflight)
        with _obs_span("shard.restore"):
            self._spawn(handle)
            self._await_ready(handle)
        reasks = 0
        for qid in lost:
            record = self._asks.get(qid)
            if record is None:
                continue
            _, ask = record
            if not ask.fed and index in ask.waiting:
                self._sendq[index].append(qid)
                reasks += 1
        _obs_count("shard.restores")
        _obs_count("shard.asks.resent", reasks)
        return reasks

    def ping_shard(self, index: int) -> bool:
        """Send a heartbeat probe; False when the write itself failed."""
        handle = self._handles[index]
        if not handle.alive or handle.sock is None:
            return False
        self._ping_seq += 1
        try:
            send_frame(handle.sock, ping_frame(self._ping_seq))
        except OSError as error:
            self._on_shard_failure(handle, f"ping write failed: {error}")
            return False
        handle.ping_sent = (self._ping_seq, time.monotonic())
        return True

    def degrade(self, index: int) -> int:
        """Retire a dead shard and re-hash its members onto survivors.

        The alive-aware ring recomputes partitions (only the retired
        shard's members move — the churn property), quotas are re-split,
        survivors get a ``reshard`` frame, and every not-yet-fed ask is
        re-planned under a *fresh* qid so any delta still in flight for
        the old plan drops on the existing stale path instead of
        tripping the quota check.  Returns the member count re-hashed.
        """
        handle = self._handles[index]
        if handle.retired:
            return 0
        if handle.alive:
            self._mark_dead(handle)
        handle.retired = True
        alive = {
            h.index for h in self._handles if h.alive and not h.retired
        }
        if not alive:
            raise RuntimeError("no living shards left to degrade onto")
        moved = len(self.partitions[index])
        self.partitions = self.ring.partition(
            member_ids(self.crowd_size), alive
        )
        self.quotas = split_quota(
            self.sample_size, [len(p) for p in self.partitions]
        )
        for survivor in self._handles:
            if survivor.alive and survivor.sock is not None:
                try:
                    send_frame(
                        survivor.sock,
                        reshard_frame(
                            sorted(alive), self.quotas[survivor.index]
                        ),
                    )
                except OSError as error:
                    self._on_shard_failure(
                        survivor, f"reshard write failed: {error}"
                    )
        replan = [
            (session, ask)
            for session, ask in self._asks.values()
            if not ask.fed
        ]
        self._asks.clear()
        for queue in self._sendq:
            queue.clear()
        for h in self._handles:
            h.inflight.clear()
            h.outstanding = 0
        for session, ask in replan:
            qid = self._next_qid
            self._next_qid += 1
            self._qids[(session.session_id, ask.key)] = qid
            starts = {
                shard: qid % len(self.partitions[shard])
                for shard, quota in enumerate(self.quotas)
                if quota > 0
            }
            fresh = _NodeAsk(
                session.session_id, ask.node, ask.key, qid, ask.facts, starts
            )
            self._asks[qid] = (session, fresh)
            for shard in fresh.waiting:
                self._sendq[shard].append(qid)
        return moved

    def alive_shards(self) -> List[int]:
        return [h.index for h in self._handles if h.alive]

    def retired_shards(self) -> List[int]:
        return [h.index for h in self._handles if h.retired]

    def abort(self) -> None:
        """Simulate a coordinator crash: hard teardown, no handshakes.

        Kills every shard outright (no shutdown frame, no stats
        collection) and releases OS resources — the shard WALs under
        ``durable_dir`` are the only thing that survives, which is the
        point: a fresh coordinator built over the same directory must
        recover from them alone.
        """
        if self._closed:
            return
        self._closed = True
        for handle in self._handles:
            self._mark_dead(handle)
        self._selector.close()
        if self._closures is not None:
            self._closures.unlink()
            self._closures = None

    # ------------------------------------------------------------------ close

    def close(self) -> None:
        """Shut every shard down cleanly and release shared memory."""
        if self._closed:
            return
        self._closed = True
        for handle in self._handles:
            if not handle.alive or handle.sock is None:
                continue
            try:
                send_frame(handle.sock, shutdown_frame())
                handle.sock.settimeout(self.spawn_timeout)
                while True:
                    frame = recv_frame(handle.sock)
                    if frame is None:
                        break
                    if frame["t"] == "stats":
                        handle.stats = {
                            name: int(frame["counters"].get(name, 0))
                            for name in STAT_KEYS
                        }
                        break
                    if frame["t"] == "delta":
                        self._on_delta(handle, frame)
            except (OSError, ProtocolError):
                _obs_count("shard.shutdown.errors")
            finally:
                self._selector.unregister(handle.sock)
                handle.sock.close()
                handle.sock = None
                handle.alive = False
            if handle.process is not None:
                handle.process.join(timeout=self.spawn_timeout)
        for name in STAT_KEYS:
            total = sum(h.stats.get(name, 0) for h in self._handles)
            _obs_count(f"shard.fleet.{name}", total)
        self._selector.close()
        if self._closures is not None:
            self._closures.unlink()
            self._closures = None

    def __enter__(self) -> "ShardCoordinator":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ----------------------------------------------------------------- report

    def report(self) -> Dict[str, Any]:
        """A summary dict shaped like :meth:`ServiceRunner.run`'s report."""
        sessions: Dict[str, Dict[str, Any]] = {}
        total_answers = 0
        for session in self._sessions.values():
            total_answers += session.answers
            sessions[session.session_id] = {
                "state": session.state,
                "questions": session.answers,
                "msps": len(session.queue.current_msps()),
                "valid_msps": len(session.queue.current_valid_msps()),
            }
        settled = sum(1 for s in sessions.values() if s["state"] != "open")
        elapsed = self._elapsed
        return {
            "workers": self.shards,
            "shards": self.shards,
            "elapsed_seconds": elapsed,
            "timed_out": self.timed_out,
            "sessions": sessions,
            "questions_answered": total_answers,
            "sessions_per_second": settled / elapsed if elapsed > 0 else 0.0,
            "questions_per_second": (
                total_answers / elapsed if elapsed > 0 else 0.0
            ),
            "partition_sizes": [len(p) for p in self.partitions],
            "quotas": list(self.quotas),
            "shard_stats": {
                str(handle.index): dict(handle.stats) for handle in self._handles
            },
            "wal_replayed": sum(h.replayed for h in self._handles),
            "retired_shards": self.retired_shards(),
            "supervisor": (
                self.supervisor.report() if self.supervisor is not None else None
            ),
        }
