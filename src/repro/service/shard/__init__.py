"""Process-sharded crowd serving (see ``docs/SHARDING.md``).

Partitions simulated members across worker *processes* on a
consistent-hash ring, with per-shard WAL journals, shared-memory closure
bitsets, and a single-threaded coordinator that owns query lifecycle and
merges per-shard support deltas — the layer that takes question
throughput past the GIL ceiling of the threaded runner.
"""

from .chaos import run_shard_chaos_campaign, run_shard_chaos_once
from .coordinator import VIRTUAL_MEMBER, ShardCoordinator
from .hashring import DEFAULT_REPLICAS, HashRing, split_quota
from .simulation import run_sharded_simulation

__all__ = [
    "DEFAULT_REPLICAS",
    "HashRing",
    "ShardCoordinator",
    "VIRTUAL_MEMBER",
    "run_shard_chaos_campaign",
    "run_shard_chaos_once",
    "run_sharded_simulation",
    "split_quota",
]
